//! Differential-testing support: seed-driven random Tower programs plus
//! helpers for compiling and executing them on any simulation backend.
//!
//! The equivalence property tests (`tests/equivalence_props.rs`) and the
//! differential harness (`tests/differential.rs`) share this module. A
//! program is generated from a stream of seed bytes, so any byte-vector
//! strategy (or a plain counter) drives it deterministically; every
//! generated program is well-formed by construction — each variable is
//! assigned exactly once and either stays live or is uncomputed by an
//! enclosing with-block.
//!
//! The [`GenConfig::wide`] configuration produces programs whose layouts
//! land in the 24–64 qubit range: beyond the dense simulator's reach
//! (2²⁶ amplitudes ≈ 1 GiB is its hard cap) but inside the sparse
//! simulator's 64-bit basis-index key space.

use qcirc::sim::Simulator;
use spire::{compile_unit, CompileOptions, Compiled, Machine, OptConfig};
use tower::{
    CompilationUnit, CoreBinOp, CoreExpr, CoreStmt, CoreValue, NameGen, Strictness, Symbol, Type,
    WordConfig,
};

/// Shape parameters for the random-program generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of boolean inputs (`b0`, `b1`, …).
    pub bools: u32,
    /// Number of uint inputs (`u0`, `u1`, …).
    pub uints: u32,
    /// Register widths.
    pub word: WordConfig,
    /// Maximum `if`/`with` nesting depth.
    pub depth: u32,
    /// Statements per top-level block.
    pub block_len: usize,
    /// Budget of Hadamard statements to weave in (0 keeps the program
    /// classical, so every backend — including [`qcirc::sim::BasisState`] —
    /// can run it).
    pub hadamards: u32,
}

impl GenConfig {
    /// The configuration of the original equivalence property tests: tiny
    /// registers, so the classical simulator covers the whole input space
    /// quickly.
    pub fn small() -> Self {
        GenConfig {
            bools: 3,
            uints: 2,
            word: WordConfig {
                uint_bits: 3,
                ptr_bits: 2,
            },
            depth: 3,
            block_len: 4,
            hadamards: 0,
        }
    }

    /// Paper-sized programs: 8-bit words over several inputs, for layouts
    /// of ≥ 24 qubits that only the sparse backend can simulate.
    pub fn wide() -> Self {
        GenConfig {
            bools: 3,
            uints: 3,
            word: WordConfig {
                uint_bits: 8,
                ptr_bits: 2,
            },
            depth: 2,
            block_len: 3,
            hadamards: 0,
        }
    }

    /// Like [`GenConfig::wide`], with a budget of Hadamard statements so
    /// compiled circuits exercise superposition and controlled-H gates.
    /// Slightly narrower words keep the decomposed circuits (ancillas
    /// included) inside the sparse backend's 64-qubit key space.
    pub fn wide_quantum() -> Self {
        GenConfig {
            uints: 2,
            word: WordConfig {
                uint_bits: 6,
                ptr_bits: 2,
            },
            hadamards: 4,
            ..GenConfig::wide()
        }
    }

    /// Past the 64-qubit key ceiling: 16-bit words over four uint inputs,
    /// for layouts in the 100–256 qubit range that only the wide-key
    /// sparse backends (and, Hadamard-free as these programs are, the
    /// classical backend) can hold.
    pub fn huge() -> Self {
        GenConfig {
            uints: 4,
            word: WordConfig {
                uint_bits: 16,
                ptr_bits: 2,
            },
            ..GenConfig::wide()
        }
    }

    /// Like [`GenConfig::huge`], with a Hadamard budget: superposed
    /// programs beyond 64 qubits, runnable only on wide-key sparse states.
    pub fn huge_quantum() -> Self {
        GenConfig {
            hadamards: 3,
            ..GenConfig::huge()
        }
    }

    fn inputs(&self) -> Vec<(Symbol, Type)> {
        let mut inputs = Vec::new();
        for i in 0..self.bools {
            inputs.push((Symbol::new(format!("b{i}")), Type::Bool));
        }
        for i in 0..self.uints {
            inputs.push((Symbol::new(format!("u{i}")), Type::UInt));
        }
        inputs
    }
}

/// A generated program together with everything needed to compile and run
/// it.
#[derive(Debug, Clone)]
pub struct TestProgram {
    /// The program body.
    pub stmt: CoreStmt,
    /// Entry parameters (`b0…`, `u0…`).
    pub inputs: Vec<(Symbol, Type)>,
    /// Register widths.
    pub word: WordConfig,
}

/// State threaded through the generator: live variables by type, plus a
/// counter for fresh names and the remaining Hadamard budget.
#[derive(Debug, Clone)]
struct GenCtx {
    bools: Vec<Symbol>,
    uints: Vec<Symbol>,
    counter: u64,
    hadamards: u32,
}

fn pick(seed: &mut impl Iterator<Item = u8>, pool: &[Symbol]) -> Symbol {
    let i = seed.next().unwrap_or(0) as usize % pool.len();
    pool[i].clone()
}

impl GenCtx {
    fn fresh(&mut self, prefix: &str) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{prefix}_{}", self.counter))
    }
}

/// Generate a statement from a seed stream. Every generated variable is
/// assigned exactly once and either stays live (tracked in `ctx`) or is
/// uncomputed automatically by an enclosing with-block, so the program is
/// well-formed by construction.
fn gen_stmt(seed: &mut impl Iterator<Item = u8>, ctx: &mut GenCtx, depth: u32) -> CoreStmt {
    let mut choice = seed.next().unwrap_or(0) % if depth == 0 { 4 } else { 7 };
    // Nested ifs remove their condition from the visible pool; fall back
    // to a plain temporary when too few booleans remain.
    if matches!(choice, 4 | 6) && ctx.bools.len() < 2 {
        choice = 0;
    }
    // Spend the Hadamard budget eagerly on a fraction of the draws.
    if ctx.hadamards > 0 && seed.next().unwrap_or(0).is_multiple_of(4) {
        ctx.hadamards -= 1;
        let var = pick(seed, &ctx.bools);
        return CoreStmt::Hadamard(var);
    }
    match choice {
        // Boolean temporary.
        0 | 3 => {
            let a = pick(seed, &ctx.bools);
            let b = pick(seed, &ctx.bools);
            let var = ctx.fresh("t");
            let op = if seed.next().unwrap_or(0).is_multiple_of(2) {
                CoreBinOp::And
            } else {
                CoreBinOp::Or
            };
            let stmt = CoreStmt::Assign {
                var: var.clone(),
                expr: CoreExpr::Bin(op, a, b),
            };
            ctx.bools.push(var);
            stmt
        }
        // Arithmetic temporary.
        1 => {
            let a = pick(seed, &ctx.uints);
            let b = pick(seed, &ctx.uints);
            let var = ctx.fresh("u");
            let op = match seed.next().unwrap_or(0) % 3 {
                0 => CoreBinOp::Add,
                1 => CoreBinOp::Sub,
                _ => CoreBinOp::Mul,
            };
            let stmt = CoreStmt::Assign {
                var: var.clone(),
                expr: CoreExpr::Bin(op, a, b),
            };
            ctx.uints.push(var);
            stmt
        }
        // Constant or copy or negation.
        2 => {
            let var = ctx.fresh("k");
            match seed.next().unwrap_or(0) % 3 {
                0 => {
                    let v = seed.next().unwrap_or(0) as u64;
                    ctx.uints.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Value(CoreValue::UInt(v)),
                    }
                }
                1 => {
                    let src = pick(seed, &ctx.uints);
                    ctx.uints.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Var(src),
                    }
                }
                _ => {
                    let src = pick(seed, &ctx.bools);
                    ctx.bools.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Not(src),
                    }
                }
            }
        }
        // Quantum if: the body must not modify the condition, so the body
        // is generated in a child context that cannot see the condition.
        4 | 6 => {
            let cond = pick(seed, &ctx.bools);
            let mut inner = ctx.clone();
            inner.bools.retain(|v| v != &cond);
            inner.counter += 1000; // disjoint names for the branch
            let body = gen_block(seed, &mut inner, depth - 1, 2);
            ctx.counter = inner.counter;
            ctx.hadamards = inner.hadamards;
            // Branch-local variables stay declared (sequential typing);
            // track them so the final comparison sees every register.
            for v in inner.bools {
                if !ctx.bools.contains(&v) {
                    ctx.bools.push(v);
                }
            }
            for v in inner.uints {
                if !ctx.uints.contains(&v) {
                    ctx.uints.push(v);
                }
            }
            CoreStmt::If {
                cond,
                body: Box::new(body),
            }
        }
        // With-do: temporaries of the setup are uncomputed automatically.
        _ => {
            let mut inner = ctx.clone();
            inner.counter += 2000;
            let setup = gen_block(seed, &mut inner, 0, 2);
            let body = gen_block(seed, &mut inner, depth - 1, 2);
            ctx.counter = inner.counter;
            ctx.hadamards = inner.hadamards;
            // Variables born in the body survive the with; setup ones die.
            CoreStmt::With {
                setup: Box::new(setup),
                body: Box::new(body),
            }
        }
    }
}

fn gen_block(
    seed: &mut impl Iterator<Item = u8>,
    ctx: &mut GenCtx,
    depth: u32,
    len: usize,
) -> CoreStmt {
    let stmts: Vec<CoreStmt> = (0..len).map(|_| gen_stmt(seed, ctx, depth)).collect();
    CoreStmt::seq(stmts)
}

/// Generate a well-formed program from seed bytes under the given shape.
pub fn generate(seed: &[u8], config: &GenConfig) -> TestProgram {
    let inputs = config.inputs();
    let mut ctx = GenCtx {
        bools: inputs
            .iter()
            .filter(|(_, t)| *t == Type::Bool)
            .map(|(v, _)| v.clone())
            .collect(),
        uints: inputs
            .iter()
            .filter(|(_, t)| *t == Type::UInt)
            .map(|(v, _)| v.clone())
            .collect(),
        counter: 0,
        hadamards: config.hadamards,
    };
    let mut stream = seed.iter().copied();
    let stmt = gen_block(&mut stream, &mut ctx, config.depth, config.block_len);
    TestProgram {
        stmt,
        inputs,
        word: config.word,
    }
}

impl TestProgram {
    /// Compile this program with the given optimization configuration.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to type-check or compile — generated
    /// programs are well-formed by construction, so either is a bug.
    pub fn compile(&self, opt: OptConfig) -> Compiled {
        let table = tower::TypeTable::new(self.word);
        let types = tower::typecheck_with(&self.stmt, &self.inputs, &table, Strictness::Relaxed)
            .expect("generated programs are well-formed");
        let unit = CompilationUnit {
            core: self.stmt.clone(),
            inputs: self.inputs.clone(),
            ret_var: self.inputs[0].0.clone(),
            table,
            types,
            names: NameGen::new(),
        };
        compile_unit(&unit, &CompileOptions::with_opt(opt)).expect("compiles")
    }

    /// Run a compiled form of this program on backend `S`, distributing the
    /// bits of `input_bits` across the inputs (one bit per bool,
    /// `uint_bits` per uint, low bits first).
    ///
    /// # Panics
    ///
    /// Panics on simulator failure (e.g. a Hadamard gate on the classical
    /// backend).
    pub fn run<S: Simulator>(&self, compiled: &Compiled, input_bits: u64) -> Machine<S> {
        let mut machine: Machine<S> = Machine::with_backend(&compiled.layout);
        let mut cursor = 0u32;
        for (var, ty) in &self.inputs {
            let width = match ty {
                Type::Bool => 1,
                Type::UInt => self.word.uint_bits,
                other => panic!("unsupported input type {other}"),
            };
            let value = (input_bits >> (cursor % 64)) & ((1u64 << width) - 1);
            machine.set_var(var.as_str(), value).expect("input exists");
            cursor += width;
        }
        machine.run(&compiled.emit()).expect("circuit runs");
        machine
    }

    /// The live (end-of-program) user variables of a compiled form, the
    /// ones Definition 6.2 compares. Optimizer temporaries (`z%k`) are
    /// excluded (they exist only on the optimized side), and re-declared
    /// names — which share one register — appear once.
    pub fn live_vars(compiled: &Compiled) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (var, _) in &compiled.types.final_context {
            let name = var.as_str();
            if !name.contains('%') && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        }
        out
    }
}

/// Deterministic seed stream for non-proptest drivers: splitmix64-style
/// expansion of a `u64` into bytes.
pub fn seed_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::sim::{BasisState, SparseState};

    #[test]
    fn generated_programs_compile_under_all_configs() {
        for s in 0..8u64 {
            let program = generate(&seed_bytes(s, 64), &GenConfig::small());
            for opt in [
                OptConfig::none(),
                OptConfig::narrowing_only(),
                OptConfig::flattening_only(),
                OptConfig::spire(),
            ] {
                let compiled = program.compile(opt);
                assert!(compiled.layout.total_qubits > 0);
            }
        }
    }

    #[test]
    fn wide_programs_reach_differential_sizes() {
        let program = generate(&seed_bytes(3, 64), &GenConfig::wide());
        let compiled = program.compile(OptConfig::none());
        assert!(
            compiled.layout.total_qubits >= 24,
            "wide config must produce ≥24-qubit layouts, got {}",
            compiled.layout.total_qubits
        );
    }

    #[test]
    fn classical_and_sparse_backends_agree() {
        let program = generate(&seed_bytes(7, 64), &GenConfig::small());
        let compiled = program.compile(OptConfig::spire());
        let a = program.run::<BasisState>(&compiled, 0b1011_0110);
        let b = program.run::<SparseState>(&compiled, 0b1011_0110);
        for name in TestProgram::live_vars(&compiled) {
            assert_eq!(a.var(&name).unwrap(), b.var(&name).unwrap(), "{name}");
        }
    }

    #[test]
    fn quantum_config_emits_hadamards() {
        let program = generate(&seed_bytes(1, 96), &GenConfig::wide_quantum());
        let compiled = program.compile(OptConfig::spire());
        let has_h = compiled
            .emit()
            .iter()
            .any(|v| v.kind == qcirc::GateKind::Mch);
        assert!(has_h, "expected Hadamard gates in the circuit");
    }
}
