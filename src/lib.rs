//! # spire-repro
//!
//! A from-scratch Rust reproduction of *The T-Complexity Costs of Error
//! Correction for Control Flow in Quantum Computation* (Yuan & Carbin,
//! PLDI 2024). This facade crate re-exports the workspace's layers:
//!
//! * [`tower`] — the Tower quantum programming language front end.
//! * [`spire`] — the Spire compiler: cost model, conditional
//!   flattening/narrowing, register allocation, MCX code generation.
//! * [`qcirc`] — the circuit substrate: gates, Clifford+T decomposition,
//!   `.qc` format, simulators.
//! * [`qopt`] — baseline circuit optimizer analogues.
//! * [`spire_verify`] — the static verifier: gate-stream well-formedness,
//!   ancilla-discipline dataflow, T-complexity interval bounds, and
//!   optimizer pass certification (see `docs/ANALYSIS.md`).
//! * [`bench_suite`] — the paper's benchmarks and experiment regenerators.
//! * [`spire_serve`] — the always-on compile-and-estimate HTTP service
//!   with single-flight caching and the load-test harness.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub mod difftest;

pub use bench_suite;
pub use qcirc;
pub use qopt;
pub use spire;
pub use spire_serve;
pub use spire_verify;
pub use tower;
