//! Property-based test for the compile cache: over a random slice of the
//! compilation input space (program × depth × register widths ×
//! optimization configuration), a cached compilation is indistinguishable
//! from a fresh one — identical exact-cost histograms and identical
//! emitted circuits — and repeated lookups keep returning it.

use proptest::prelude::*;
use spire::cache::CompileCache;
use spire::{compile_source, CompileOptions, OptConfig};
use tower::WordConfig;

fn opt_configs() -> [OptConfig; 4] {
    [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_and_fresh_compilations_agree(
        bench_index in 0usize..12,
        depth in 0i64..5,
        uint_bits in 2u32..10,
        ptr_bits in 2u32..6,
        opt_index in 0usize..4,
    ) {
        let benchmarks = bench_suite::programs::all_benchmarks();
        let bench = &benchmarks[bench_index];
        let depth = if bench.constant { 0 } else { depth };
        let config = WordConfig { uint_bits, ptr_bits };
        let options = CompileOptions::with_opt(opt_configs()[opt_index]);

        let fresh = compile_source(&bench.source, bench.entry, depth, config, &options)
            .expect("benchmarks compile at any sampled configuration");

        let cache = CompileCache::new();
        let miss = cache
            .get_or_compile(&bench.source, bench.entry, depth, config, &options)
            .expect("cached compile succeeds when fresh compile does");
        let hit = cache
            .get_or_compile(&bench.source, bench.entry, depth, config, &options)
            .expect("hit path succeeds");

        prop_assert!(std::sync::Arc::ptr_eq(&miss, &hit));
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);

        // The cost model's histogram (and therefore both complexity
        // measures) and the emitted circuit agree exactly.
        prop_assert_eq!(fresh.histogram(), hit.histogram());
        prop_assert_eq!(fresh.t_complexity(), hit.t_complexity());
        prop_assert_eq!(fresh.mcx_complexity(), hit.mcx_complexity());
        prop_assert_eq!(fresh.emit(), hit.emit());
    }
}
