//! End-to-end semantic tests: every benchmark program is compiled to an
//! MCX circuit and executed on the classical reversible simulator against
//! real data structures laid out in the qRAM. Each test also checks
//! Definition 6.2's cleanliness condition (non-live registers return to
//! zero) and, where it matters, allocator state.

use bench_suite::programs;
use spire::{compile_source, CompileOptions, Compiled, Machine};
use tower::WordConfig;

fn compile(source: &str, entry: &str, depth: i64, options: &CompileOptions) -> Compiled {
    compile_source(source, entry, depth, WordConfig::paper_default(), options)
        .unwrap_or_else(|e| panic!("compiling {entry}: {e}"))
}

/// Run a compiled list program on the given list, with extra inputs set by
/// the callback, and return the machine afterwards.
fn run_on_list(compiled: &Compiled, list: &[u64], setup: impl FnOnce(&mut Machine)) -> Machine {
    let mut machine = Machine::new(&compiled.layout);
    let head = machine.build_list(list);
    machine.set_var("xs", head).unwrap();
    setup(&mut machine);
    machine.run(&compiled.emit()).unwrap();
    machine
}

#[test]
fn length_counts_nodes() {
    for options in [CompileOptions::baseline(), CompileOptions::spire()] {
        let compiled = compile(programs::LENGTH, "length", 6, &options);
        for list in [vec![], vec![9], vec![1, 2, 3], vec![4, 4, 4, 4, 4]] {
            let machine = run_on_list(&compiled, &list, |_| {});
            assert_eq!(
                machine.var("out").unwrap(),
                list.len() as u64,
                "length of {list:?} ({})",
                options.opt.label()
            );
        }
    }
}

#[test]
fn length_baseline_and_spire_agree_everywhere() {
    // Theorems 6.3/6.5 (Definition 6.2): the optimized program computes the
    // same function and leaves non-live registers clean.
    let baseline = compile(programs::LENGTH, "length", 5, &CompileOptions::baseline());
    let optimized = compile(programs::LENGTH, "length", 5, &CompileOptions::spire());
    for list in [vec![], vec![7], vec![3, 1], vec![2, 2, 2, 2]] {
        let base = run_on_list(&baseline, &list, |_| {});
        let opt = run_on_list(&optimized, &list, |_| {});
        assert_eq!(base.var("out").unwrap(), opt.var("out").unwrap());
        // Inputs are preserved; everything else except out/inputs is zero.
        assert!(
            base.clean_except(&["xs", "acc", "out"]),
            "baseline dirty on {list:?}"
        );
        assert!(
            opt.clean_except(&["xs", "acc", "out"]),
            "optimized dirty on {list:?}"
        );
    }
}

#[test]
fn sum_adds_values() {
    let compiled = compile(programs::SUM, "sum", 5, &CompileOptions::spire());
    let machine = run_on_list(&compiled, &[5, 7, 9], |_| {});
    assert_eq!(machine.var("out").unwrap(), 21);
}

#[test]
fn find_pos_returns_one_based_position() {
    let compiled = compile(programs::FIND_POS, "find_pos", 5, &CompileOptions::spire());
    let machine = run_on_list(&compiled, &[5, 7, 9], |m| {
        m.set_var("target", 7).unwrap();
    });
    assert_eq!(machine.var("out").unwrap(), 2);

    let machine = run_on_list(&compiled, &[5, 7, 9], |m| {
        m.set_var("target", 8).unwrap();
    });
    assert_eq!(machine.var("out").unwrap(), 0, "absent element gives 0");
}

#[test]
fn pop_front_removes_head_and_frees_cell() {
    let compiled = compile(
        programs::POP_FRONT,
        "pop_front",
        0,
        &CompileOptions::spire(),
    );
    let mut machine = Machine::new(&compiled.layout);
    machine.build_list(&[4, 5]);
    machine.set_var("xs", 1).unwrap();
    let sp_before = machine.sp();
    machine.run(&compiled.emit()).unwrap();
    let out = machine.var("out").unwrap();
    let value = out & 0xFF;
    let rest = out >> 8;
    assert_eq!(value, 4);
    assert_eq!(rest, 2);
    assert_eq!(machine.cell(1), 0, "head cell zeroed");
    assert_eq!(
        machine.sp(),
        sp_before + 1,
        "cell returned to the free stack"
    );
}

#[test]
fn push_back_appends_at_end() {
    for options in [CompileOptions::baseline(), CompileOptions::spire()] {
        let compiled = compile(programs::PUSH_BACK, "push_back", 6, &options);
        let mut machine = Machine::new(&compiled.layout);
        machine.build_list(&[1, 2]);
        machine.set_var("xs", 1).unwrap();
        machine.set_var("val", 9).unwrap();
        let sp_before = machine.sp();
        machine.run(&compiled.emit()).unwrap();
        let out = machine.var("out").unwrap();
        let head = out & 0xF;
        let flag = out >> 4;
        assert_eq!(head, 1, "head unchanged ({})", options.opt.label());
        assert_eq!(flag, 0, "no allocation at the top level");
        assert_eq!(machine.sp(), sp_before - 1, "one cell allocated");
        // Follow the chain: 1 -> 2 -> fresh, fresh holds (9, null).
        let node1 = machine.cell(1);
        assert_eq!(node1 & 0xFF, 1);
        let node2_addr = (node1 >> 8) as u32;
        assert_eq!(node2_addr, 2);
        let node2 = machine.cell(2);
        let node3_addr = (node2 >> 8) as u32;
        assert_ne!(node3_addr, 0, "second node now links to the new node");
        let node3 = machine.cell(node3_addr);
        assert_eq!(node3 & 0xFF, 9, "appended value");
        assert_eq!(node3 >> 8, 0, "appended node is the tail");
    }
}

#[test]
fn push_back_on_empty_list_allocates_head() {
    let compiled = compile(
        programs::PUSH_BACK,
        "push_back",
        3,
        &CompileOptions::spire(),
    );
    let mut machine = Machine::new(&compiled.layout);
    machine.build_list(&[]);
    machine.set_var("xs", 0).unwrap();
    machine.set_var("val", 6).unwrap();
    machine.run(&compiled.emit()).unwrap();
    let out = machine.var("out").unwrap();
    let head = (out & 0xF) as u32;
    let flag = out >> 4;
    assert_ne!(head, 0);
    assert_eq!(flag, 1, "allocation happened at the top level");
    assert_eq!(machine.cell(head) & 0xFF, 6);
}

#[test]
fn remove_detaches_last_node_and_frees_it() {
    for options in [CompileOptions::baseline(), CompileOptions::spire()] {
        let compiled = compile(programs::REMOVE, "remove", 6, &options);
        let mut machine = Machine::new(&compiled.layout);
        machine.build_list(&[3, 8, 6]);
        machine.set_var("xs", 1).unwrap();
        let sp_before = machine.sp();
        machine.run(&compiled.emit()).unwrap();
        let out = machine.var("out").unwrap();
        let value = out & 0xFF;
        let top_flag = out >> 8;
        assert_eq!(value, 6, "last value removed ({})", options.opt.label());
        assert_eq!(top_flag, 0, "the head itself was not the last node");
        assert_eq!(machine.sp(), sp_before + 1, "cell deallocated");
        assert_eq!(machine.cell(3), 0, "removed cell zeroed");
        assert_eq!(machine.cell(2) >> 8, 0, "second node is the new tail");
        assert_eq!(machine.cell(1) & 0xFF, 3, "head value untouched");
    }
}

fn build_string(machine: &mut Machine, start: u32, chars: &[u64]) -> u64 {
    // Strings use the same (uint, ptr) node shape as lists, laid out
    // starting at `start`.
    for (i, &c) in chars.iter().enumerate() {
        let addr = start + i as u32;
        let next = if i + 1 < chars.len() {
            (addr + 1) as u64
        } else {
            0
        };
        machine.write_cell(addr, c | (next << 8));
    }
    if chars.is_empty() {
        0
    } else {
        start as u64
    }
}

#[test]
fn compare_detects_equality() {
    let compiled = compile(programs::COMPARE, "compare", 5, &CompileOptions::spire());
    let cases: Vec<(Vec<u64>, Vec<u64>, u64)> = vec![
        (vec![1, 2], vec![1, 2], 1),
        (vec![1, 2], vec![1, 3], 0),
        (vec![1], vec![1, 2], 0),
        (vec![], vec![], 1),
    ];
    for (a, b, expected) in cases {
        let mut machine = Machine::new(&compiled.layout);
        let pa = build_string(&mut machine, 1, &a);
        let pb = build_string(&mut machine, 6, &b);
        machine.set_var("a", pa).unwrap();
        machine.set_var("b", pb).unwrap();
        machine.run(&compiled.emit()).unwrap();
        assert_eq!(machine.var("out").unwrap(), expected, "compare {a:?} {b:?}");
    }
}

#[test]
fn is_prefix_detects_prefixes() {
    let compiled = compile(
        programs::IS_PREFIX,
        "is_prefix",
        5,
        &CompileOptions::spire(),
    );
    let cases: Vec<(Vec<u64>, Vec<u64>, u64)> = vec![
        (vec![1], vec![1, 2], 1),
        (vec![1, 2], vec![1, 2], 1),
        (vec![2], vec![1, 2], 0),
        (vec![], vec![1], 1),
        (vec![1, 2, 3], vec![1, 2], 0),
    ];
    for (p, s, expected) in cases {
        let mut machine = Machine::new(&compiled.layout);
        let pp = build_string(&mut machine, 1, &p);
        let ps = build_string(&mut machine, 6, &s);
        machine.set_var("p", pp).unwrap();
        machine.set_var("s", ps).unwrap();
        machine.run(&compiled.emit()).unwrap();
        assert_eq!(
            machine.var("out").unwrap(),
            expected,
            "is_prefix {p:?} {s:?}"
        );
    }
}

#[test]
fn num_matching_counts_occurrences() {
    let compiled = compile(
        programs::NUM_MATCHING,
        "num_matching",
        5,
        &CompileOptions::spire(),
    );
    let mut machine = Machine::new(&compiled.layout);
    let p = build_string(&mut machine, 1, &[2, 5, 2]);
    machine.set_var("xs", p).unwrap();
    machine.set_var("target", 2).unwrap();
    machine.set_var("acc", 0).unwrap();
    machine.run(&compiled.emit()).unwrap();
    assert_eq!(machine.var("out").unwrap(), 2);
}

/// Tree cells are (stored: ptr<str>, (left: ptr<tree>, right: ptr<tree>)),
/// 4+4+4 bits in the paper-default configuration.
fn tree_cell(stored: u64, left: u64, right: u64) -> u64 {
    stored | (left << 4) | (right << 8)
}

#[test]
fn contains_finds_stored_keys() {
    let source = programs::contains_source();
    let compiled = compile(&source, "contains", 4, &CompileOptions::spire());
    let mut machine = Machine::new(&compiled.layout);
    // Strings: key "1" at cell 1; stored copy "1" at cell 2; a second key
    // "2" at cell 3. Root node at cell 4 stores "1" with no children.
    machine.write_cell(1, 1);
    machine.write_cell(2, 1);
    machine.write_cell(3, 2);
    machine.write_cell(4, tree_cell(2, 0, 0));

    machine.set_var("t", 4).unwrap();
    machine.set_var("key", 1).unwrap();
    machine.run(&compiled.emit()).unwrap();
    assert_eq!(machine.var("out").unwrap(), 1, "key \"1\" is stored");

    let mut machine = Machine::new(&compiled.layout);
    machine.write_cell(1, 1);
    machine.write_cell(2, 1);
    machine.write_cell(3, 2);
    machine.write_cell(4, tree_cell(2, 0, 0));
    machine.set_var("t", 4).unwrap();
    machine.set_var("key", 3).unwrap();
    machine.run(&compiled.emit()).unwrap();
    assert_eq!(machine.var("out").unwrap(), 0, "key \"2\" is absent");
}

#[test]
fn insert_allocates_into_empty_tree() {
    let source = programs::insert_source();
    let compiled = compile(&source, "insert", 3, &CompileOptions::spire());
    let mut machine = Machine::new(&compiled.layout);
    machine.write_cell(1, 1); // key "1"
    machine.init_free_stack(&[5, 6, 7]);
    machine.set_var("t", 0).unwrap();
    machine.set_var("key", 1).unwrap();
    let sp_before = machine.sp();
    machine.run(&compiled.emit()).unwrap();
    let out = machine.var("out").unwrap();
    let node = out & 0xF;
    let flag = out >> 4;
    assert_eq!(flag, 1, "allocated at the root");
    assert_ne!(node, 0);
    assert_eq!(machine.sp(), sp_before - 1);
    assert_eq!(
        machine.cell(node as u32),
        tree_cell(1, 0, 0),
        "fresh node stores the key"
    );
}

#[test]
fn insert_descends_and_links_a_leaf() {
    let source = programs::insert_source();
    let compiled = compile(&source, "insert", 4, &CompileOptions::spire());
    let mut machine = Machine::new(&compiled.layout);
    // Root at cell 4 stores "2" (cell 3). Insert key "1" (cell 1): the
    // head char 1 sends it left; the new leaf stores the key's tail (null).
    machine.write_cell(1, 1);
    machine.write_cell(3, 2);
    machine.write_cell(4, tree_cell(3, 0, 0));
    machine.init_free_stack(&[5, 6, 7]);
    machine.set_var("t", 4).unwrap();
    machine.set_var("key", 1).unwrap();
    machine.run(&compiled.emit()).unwrap();
    let out = machine.var("out").unwrap();
    assert_eq!(out & 0xF, 4, "root unchanged");
    assert_eq!(out >> 4, 0, "no allocation at the root level");
    let root = machine.cell(4);
    let left = (root >> 4) & 0xF;
    assert_ne!(left, 0, "a left child was linked");
}

#[test]
fn all_optimization_configs_agree_on_length() {
    use spire::OptConfig;
    let configs = [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ];
    let list = vec![6, 6, 6];
    let mut reference = None;
    for config in configs {
        let compiled = compile(
            programs::LENGTH,
            "length",
            5,
            &CompileOptions::with_opt(config),
        );
        let machine = run_on_list(&compiled, &list, |_| {});
        let out = machine.var("out").unwrap();
        match reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(out, r, "{} disagrees", config.label()),
        }
    }
    assert_eq!(reference, Some(3));
}
