//! Property-based soundness tests for the program-level optimizations
//! (paper Theorems 6.3 and 6.5, Definition 6.2): on randomly generated
//! well-formed programs, the circuits compiled from the original and the
//! optimized program compute the same function on every tested basis
//! state, and non-live registers return to zero.
//!
//! Program generation lives in [`spire_repro::difftest`], shared with the
//! large-register differential harness (`tests/differential.rs`); this
//! file drives it through proptest so failures shrink toward minimal
//! seeds.

use proptest::prelude::*;
use qcirc::sim::BasisState;
use spire::OptConfig;
use spire_repro::difftest::{generate, GenConfig, TestProgram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorems 6.3/6.5: all four optimization configurations compute the
    /// same function on random programs and random inputs.
    #[test]
    fn optimizations_preserve_semantics(
        seed in proptest::collection::vec(any::<u8>(), 64),
        input_bits in any::<u16>(),
    ) {
        let program = generate(&seed, &GenConfig::small());
        let reference = program.compile(OptConfig::none());
        let reference_machine = program.run::<BasisState>(&reference, input_bits as u64);

        for opt in [
            OptConfig::narrowing_only(),
            OptConfig::flattening_only(),
            OptConfig::spire(),
        ] {
            let optimized = program.compile(opt);
            let machine = program.run::<BasisState>(&optimized, input_bits as u64);
            // Definition 6.2 compares the variables of dom Γ′ — the ones
            // live at the end. (Dead variables' registers are legitimately
            // recycled, differently per layout.) Optimizer temporaries
            // (z%k) exist only on the optimized side and are skipped by
            // `live_vars`.
            for name in TestProgram::live_vars(&reference) {
                let expected = reference_machine.var(&name).unwrap();
                let actual = machine.var(&name).unwrap_or_else(|_| {
                    panic!("{}: variable {name} missing after {}", input_bits, opt.label())
                });
                prop_assert_eq!(
                    expected, actual,
                    "variable {} differs under {} (input {:b})",
                    name, opt.label(), input_bits
                );
            }
        }
    }

    /// Theorem 5.1/5.2 on random programs: the exact cost model equals the
    /// emitted circuit's histogram.
    #[test]
    fn cost_model_matches_emission(
        seed in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let program = generate(&seed, &GenConfig::small());
        for opt in [OptConfig::none(), OptConfig::spire()] {
            let compiled = program.compile(opt);
            prop_assert_eq!(
                compiled.histogram(),
                compiled.counted_histogram(),
                "config {}", opt.label()
            );
        }
    }

    /// Optimization never increases T-complexity on random programs.
    #[test]
    fn optimization_never_regresses_t(
        seed in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let program = generate(&seed, &GenConfig::small());
        let baseline = program.compile(OptConfig::none()).t_complexity();
        let optimized = program.compile(OptConfig::spire()).t_complexity();
        prop_assert!(
            optimized <= baseline,
            "spire regressed T: {baseline} -> {optimized}"
        );
    }
}
