//! Property-based soundness tests for the program-level optimizations
//! (paper Theorems 6.3 and 6.5, Definition 6.2): on randomly generated
//! well-formed programs, the circuits compiled from the original and the
//! optimized program compute the same function on every tested basis
//! state, and non-live registers return to zero.

use proptest::prelude::*;
use spire::{compile_unit, CompileOptions, Machine, OptConfig};
use tower::{
    typecheck_with, CompilationUnit, CoreBinOp, CoreExpr, CoreStmt, CoreValue, NameGen, Strictness,
    Symbol, Type, TypeTable, WordConfig,
};

/// A pool of input variables available to generated programs.
fn inputs() -> Vec<(Symbol, Type)> {
    vec![
        (Symbol::new("b0"), Type::Bool),
        (Symbol::new("b1"), Type::Bool),
        (Symbol::new("b2"), Type::Bool),
        (Symbol::new("u0"), Type::UInt),
        (Symbol::new("u1"), Type::UInt),
    ]
}

/// State threaded through the generator: live variables by type, plus a
/// counter for fresh names.
#[derive(Debug, Clone)]
struct GenCtx {
    bools: Vec<Symbol>,
    uints: Vec<Symbol>,
    counter: u64,
}

impl GenCtx {
    fn initial() -> Self {
        GenCtx {
            bools: vec![Symbol::new("b0"), Symbol::new("b1"), Symbol::new("b2")],
            uints: vec![Symbol::new("u0"), Symbol::new("u1")],
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> Symbol {
        self.counter += 1;
        Symbol::new(format!("{prefix}_{}", self.counter))
    }
}

/// Generate a statement from a seed stream. Every generated variable is
/// assigned exactly once and either stays live (tracked in `ctx`) or is
/// uncomputed automatically by an enclosing with-block, so the program is
/// well-formed by construction.
fn gen_stmt(seed: &mut impl Iterator<Item = u8>, ctx: &mut GenCtx, depth: u32) -> CoreStmt {
    let mut choice = seed.next().unwrap_or(0) % if depth == 0 { 4 } else { 7 };
    // Nested ifs remove their condition from the visible pool; fall back
    // to a plain temporary when too few booleans remain.
    if matches!(choice, 4 | 6) && ctx.bools.len() < 2 {
        choice = 0;
    }
    match choice {
        // Boolean temporary.
        0 | 3 => {
            let a = pick(seed, &ctx.bools);
            let b = pick(seed, &ctx.bools);
            let var = ctx.fresh("t");
            let op = if seed.next().unwrap_or(0).is_multiple_of(2) {
                CoreBinOp::And
            } else {
                CoreBinOp::Or
            };
            let stmt = CoreStmt::Assign {
                var: var.clone(),
                expr: CoreExpr::Bin(op, a, b),
            };
            ctx.bools.push(var);
            stmt
        }
        // Arithmetic temporary.
        1 => {
            let a = pick(seed, &ctx.uints);
            let b = pick(seed, &ctx.uints);
            let var = ctx.fresh("u");
            let op = match seed.next().unwrap_or(0) % 3 {
                0 => CoreBinOp::Add,
                1 => CoreBinOp::Sub,
                _ => CoreBinOp::Mul,
            };
            let stmt = CoreStmt::Assign {
                var: var.clone(),
                expr: CoreExpr::Bin(op, a, b),
            };
            ctx.uints.push(var);
            stmt
        }
        // Constant or copy or negation.
        2 => {
            let var = ctx.fresh("k");
            match seed.next().unwrap_or(0) % 3 {
                0 => {
                    let v = seed.next().unwrap_or(0) as u64;
                    ctx.uints.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Value(CoreValue::UInt(v)),
                    }
                }
                1 => {
                    let src = pick(seed, &ctx.uints);
                    ctx.uints.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Var(src),
                    }
                }
                _ => {
                    let src = pick(seed, &ctx.bools);
                    ctx.bools.push(var.clone());
                    CoreStmt::Assign {
                        var,
                        expr: CoreExpr::Not(src),
                    }
                }
            }
        }
        // Quantum if: the body must not modify the condition, so the body
        // is generated in a child context that cannot see the condition.
        4 | 6 => {
            let cond = pick(seed, &ctx.bools);
            let mut inner = ctx.clone();
            inner.bools.retain(|v| v != &cond);
            inner.counter += 1000; // disjoint names for the branch
            let body = gen_block(seed, &mut inner, depth - 1, 2);
            ctx.counter = inner.counter;
            // Branch-local variables stay declared (sequential typing);
            // track them so the final comparison sees every register.
            for v in inner.bools {
                if !ctx.bools.contains(&v) {
                    ctx.bools.push(v);
                }
            }
            for v in inner.uints {
                if !ctx.uints.contains(&v) {
                    ctx.uints.push(v);
                }
            }
            CoreStmt::If {
                cond,
                body: Box::new(body),
            }
        }
        // With-do: temporaries of the setup are uncomputed automatically.
        _ => {
            let mut inner = ctx.clone();
            inner.counter += 2000;
            let setup = gen_block(seed, &mut inner, 0, 2);
            let body = gen_block(seed, &mut inner, depth - 1, 2);
            ctx.counter = inner.counter;
            // Variables born in the body survive the with; setup ones die.
            CoreStmt::With {
                setup: Box::new(setup),
                body: Box::new(body),
            }
        }
    }
}

fn gen_block(
    seed: &mut impl Iterator<Item = u8>,
    ctx: &mut GenCtx,
    depth: u32,
    len: usize,
) -> CoreStmt {
    let stmts: Vec<CoreStmt> = (0..len).map(|_| gen_stmt(seed, ctx, depth)).collect();
    CoreStmt::seq(stmts)
}

fn pick(seed: &mut impl Iterator<Item = u8>, pool: &[Symbol]) -> Symbol {
    let i = seed.next().unwrap_or(0) as usize % pool.len();
    pool[i].clone()
}

/// Compile a generated statement with the given optimization config.
fn compile(stmt: &CoreStmt, opt: OptConfig) -> spire::Compiled {
    let table = TypeTable::new(WordConfig {
        uint_bits: 3,
        ptr_bits: 2,
    });
    let types = typecheck_with(stmt, &inputs(), &table, Strictness::Relaxed)
        .expect("generated programs are well-formed");
    let unit = CompilationUnit {
        core: stmt.clone(),
        inputs: inputs(),
        ret_var: Symbol::new("b0"),
        table,
        types,
        names: NameGen::new(),
    };
    compile_unit(&unit, &CompileOptions::with_opt(opt)).expect("compiles")
}

fn run(compiled: &spire::Compiled, input_bits: u16) -> Machine {
    let mut machine = Machine::new(&compiled.layout);
    machine.set_var("b0", (input_bits & 1) as u64).unwrap();
    machine
        .set_var("b1", ((input_bits >> 1) & 1) as u64)
        .unwrap();
    machine
        .set_var("b2", ((input_bits >> 2) & 1) as u64)
        .unwrap();
    machine
        .set_var("u0", ((input_bits >> 3) & 0x7) as u64)
        .unwrap();
    machine
        .set_var("u1", ((input_bits >> 6) & 0x7) as u64)
        .unwrap();
    machine.run(&compiled.emit()).unwrap();
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorems 6.3/6.5: all four optimization configurations compute the
    /// same function on random programs and random inputs.
    #[test]
    fn optimizations_preserve_semantics(
        seed in proptest::collection::vec(any::<u8>(), 64),
        input_bits in any::<u16>(),
    ) {
        let mut stream = seed.into_iter();
        let mut ctx = GenCtx::initial();
        let program = gen_block(&mut stream, &mut ctx, 3, 4);

        let reference = compile(&program, OptConfig::none());
        let reference_machine = run(&reference, input_bits);

        for opt in [
            OptConfig::narrowing_only(),
            OptConfig::flattening_only(),
            OptConfig::spire(),
        ] {
            let optimized = compile(&program, opt);
            let machine = run(&optimized, input_bits);
            // Definition 6.2 compares the variables of dom Γ′ — the ones
            // live at the end. (Dead variables' registers are legitimately
            // recycled, differently per layout.) Optimizer temporaries
            // (z%k) exist only on the optimized side and are skipped.
            for (var, _) in &reference.types.final_context {
                let name = var.as_str();
                if name.contains('%') {
                    continue;
                }
                let expected = reference_machine.var(name).unwrap();
                let actual = machine.var(name).unwrap_or_else(|_| {
                    panic!("{}: variable {name} missing after {}", input_bits, opt.label())
                });
                prop_assert_eq!(
                    expected, actual,
                    "variable {} differs under {} (input {:b})",
                    name, opt.label(), input_bits
                );
            }
        }
    }

    /// Theorem 5.1/5.2 on random programs: the exact cost model equals the
    /// emitted circuit's histogram.
    #[test]
    fn cost_model_matches_emission(
        seed in proptest::collection::vec(any::<u8>(), 48),
    ) {
        let mut stream = seed.into_iter();
        let mut ctx = GenCtx::initial();
        let program = gen_block(&mut stream, &mut ctx, 3, 3);
        for opt in [OptConfig::none(), OptConfig::spire()] {
            let compiled = compile(&program, opt);
            prop_assert_eq!(
                compiled.histogram(),
                compiled.counted_histogram(),
                "config {}", opt.label()
            );
        }
    }

    /// Optimization never increases T-complexity on random programs.
    #[test]
    fn optimization_never_regresses_t(
        seed in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let mut stream = seed.into_iter();
        let mut ctx = GenCtx::initial();
        let program = gen_block(&mut stream, &mut ctx, 3, 4);
        let baseline = compile(&program, OptConfig::none()).t_complexity();
        let optimized = compile(&program, OptConfig::spire()).t_complexity();
        prop_assert!(
            optimized <= baseline,
            "spire regressed T: {baseline} -> {optimized}"
        );
    }
}
