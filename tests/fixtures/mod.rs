//! The negative-fixture corpus for `spire-verify`.
//!
//! Each fixture is a deliberately defective circuit (or, for the T-bound
//! class, a defective bounds row) paired with the stable `verify/…` code
//! the analyses must report for it. `tests/verify_fixtures.rs` asserts
//! the static catch; `tests/verify_props.rs` additionally shows the
//! semantic fixtures are *observably wrong dynamically* — the defect has
//! simulator-visible consequences, not just an unhappy analyzer.

// Each test binary compiles this module independently and uses its own
// subset of the corpus.
#![allow(dead_code)]

use spire_repro::qcirc::{Circuit, Gate, GateKind};
use spire_repro::spire_verify::{AncillaSpec, FunctionBounds};

/// One defective circuit and the diagnostic it must provoke.
pub struct Fixture {
    /// Short name, used in assertion messages.
    pub name: &'static str,
    /// The stable `verify/…` code the analyses must emit.
    pub code: &'static str,
    /// The defective gate stream.
    pub circuit: Circuit,
    /// Ancillae the discipline analysis should track (empty for purely
    /// structural fixtures).
    pub ancillas: AncillaSpec,
    /// Allocated layout width handed to the well-formedness sweep.
    pub width: Option<u32>,
}

/// A gate whose control set contains its own target, injected past the
/// constructor's normalization.
pub fn control_target_overlap() -> Fixture {
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::cnot(0, 1));
    circuit.push_raw_for_test(GateKind::Mcx, &[2], 2);
    Fixture {
        name: "control-target-overlap",
        code: "verify/control-target-overlap",
        circuit,
        ancillas: AncillaSpec::default(),
        width: None,
    }
}

/// A gate addressing a qubit the layout never allocated.
pub fn qubit_out_of_range() -> Fixture {
    let mut circuit = Circuit::new(8);
    circuit.push(Gate::cnot(0, 7));
    Fixture {
        name: "qubit-out-of-range",
        code: "verify/qubit-out-of-range",
        circuit,
        ancillas: AncillaSpec::default(),
        width: Some(4),
    }
}

/// A gate whose precomputed footprint mask disagrees with its operands —
/// the invariant every footprint-indexed optimizer pass trusts.
pub fn corrupted_footprint() -> Fixture {
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::toffoli(0, 1, 2));
    circuit.corrupt_footprint_for_test(0, 0b1000);
    Fixture {
        name: "corrupted-footprint",
        code: "verify/footprint-mismatch",
        circuit,
        ancillas: AncillaSpec::default(),
        width: None,
    }
}

/// An MCX whose operand-arena offset points past the arena's end.
pub fn corrupted_arena() -> Fixture {
    let mut circuit = Circuit::new(5);
    circuit.push(Gate::mcx(vec![0, 1, 2], 3));
    circuit.corrupt_arena_offset_for_test(0, u32::MAX);
    Fixture {
        name: "corrupted-arena",
        code: "verify/arena-out-of-bounds",
        circuit,
        ancillas: AncillaSpec::default(),
        width: None,
    }
}

/// An ancilla computed into and never uncomputed: qubit 2 still carries
/// `q0 ∧ q1` when the circuit ends. The leading X gates make the leak
/// dynamically visible from the all-zeros input.
pub fn leaked_ancilla() -> Fixture {
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::x(0));
    circuit.push(Gate::x(1));
    circuit.push(Gate::toffoli(0, 1, 2));
    circuit.push(Gate::cnot(2, 3));
    let mut ancillas = AncillaSpec::default();
    ancillas.push(2, "fixture ancilla".to_string());
    Fixture {
        name: "leaked-ancilla",
        code: "verify/leaked-ancilla",
        circuit,
        ancillas,
        width: None,
    }
}

/// An ancilla read *after its final uncompute*: the last CNOT controls on
/// qubit 2, which the preceding pair restored to |0⟩ and which nothing
/// ever recomputes — so the gate can never fire, which is exactly the
/// stale-read Bennett-discipline bug the analysis reports as an error.
pub fn use_after_uncompute() -> Fixture {
    let mut circuit = Circuit::new(4);
    circuit.push(Gate::x(0));
    circuit.push(Gate::x(1));
    circuit.push(Gate::toffoli(0, 1, 2));
    circuit.push(Gate::toffoli(0, 1, 2));
    circuit.push(Gate::cnot(2, 3));
    let mut ancillas = AncillaSpec::default();
    ancillas.push(2, "fixture ancilla".to_string());
    Fixture {
        name: "use-after-uncompute",
        code: "verify/use-after-uncompute",
        circuit,
        ancillas,
        width: None,
    }
}

/// Every circuit-level fixture, one per defect class.
pub fn circuit_fixtures() -> Vec<Fixture> {
    vec![
        control_target_overlap(),
        qubit_out_of_range(),
        corrupted_footprint(),
        corrupted_arena(),
        leaked_ancilla(),
        use_after_uncompute(),
    ]
}

/// The T-bound defect class: a function whose compiled T-count falls
/// outside its static interval (`verify/t-bound-violation`).
pub fn bound_violation_row() -> FunctionBounds {
    FunctionBounds {
        name: "fixture".to_string(),
        min: 10,
        max: 20,
        actual: 100,
    }
}
