//! The paper's headline result (Table 1), asserted for every benchmark:
//! the unoptimized T-complexity is one polynomial degree above the
//! MCX-complexity, and Spire's optimizations recover a T-complexity of the
//! same degree as the MCX-complexity — asymptotic efficiency.

use bench_suite::polyfit::fit_exact;
use bench_suite::programs::all_benchmarks;
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

/// Fit the degree of a sequence, tolerating up to two boundary points.
fn degree(points: &[(i64, u64)]) -> usize {
    for skip in 0..=2 {
        let tail = &points[skip..];
        if tail.len() < 3 {
            break;
        }
        let xs: Vec<i128> = tail.iter().map(|&(x, _)| x as i128).collect();
        let ys: Vec<u64> = tail.iter().map(|&(_, y)| y).collect();
        if let Some(poly) = fit_exact(&xs, &ys) {
            return poly.degree();
        }
    }
    panic!("no polynomial fit for {points:?}");
}

#[test]
fn every_benchmark_is_asymptotically_efficient_after_spire() {
    let depths: Vec<i64> = (2..=8).collect();
    for bench in all_benchmarks() {
        let mut mcx = Vec::new();
        let mut t_before = Vec::new();
        let mut t_after = Vec::new();
        for &n in &depths {
            let depth = if bench.constant { 0 } else { n };
            let baseline = compile_source(
                &bench.source,
                bench.entry,
                depth,
                WordConfig::paper_default(),
                &CompileOptions::baseline(),
            )
            .unwrap();
            let optimized = compile_source(
                &bench.source,
                bench.entry,
                depth,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
            .unwrap();
            let hist = baseline.histogram();
            mcx.push((n, hist.mcx_complexity()));
            t_before.push((n, hist.t_complexity()));
            t_after.push((n, optimized.t_complexity()));
        }
        let mcx_deg = degree(&mcx);
        let before_deg = degree(&t_before);
        let after_deg = degree(&t_after);
        if bench.constant {
            assert_eq!(mcx_deg, 0, "{}: expected O(1) MCX", bench.name);
            assert_eq!(before_deg, 0, "{}: expected O(1) T", bench.name);
        } else {
            assert_eq!(
                before_deg,
                mcx_deg + 1,
                "{}: unoptimized T must be one degree above MCX (MCX {mcx:?}, T {t_before:?})",
                bench.name
            );
        }
        assert_eq!(
            after_deg, mcx_deg,
            "{}: Spire must recover the MCX degree (T after: {t_after:?})",
            bench.name
        );
    }
}

#[test]
fn set_benchmarks_have_the_paper_degrees() {
    // Table 1: insert and contains are O(d²) MCX / O(d³) T before /
    // O(d²) T after.
    for bench in all_benchmarks().into_iter().filter(|b| b.group == "Set") {
        let mut mcx = Vec::new();
        let mut t_before = Vec::new();
        let mut t_after = Vec::new();
        for d in 2..=8 {
            let baseline = compile_source(
                &bench.source,
                bench.entry,
                d,
                WordConfig::paper_default(),
                &CompileOptions::baseline(),
            )
            .unwrap();
            let optimized = compile_source(
                &bench.source,
                bench.entry,
                d,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
            .unwrap();
            mcx.push((d, baseline.mcx_complexity()));
            t_before.push((d, baseline.t_complexity()));
            t_after.push((d, optimized.t_complexity()));
        }
        assert_eq!(degree(&mcx), 2, "{} MCX should be quadratic", bench.name);
        assert_eq!(degree(&t_before), 3, "{} T should be cubic", bench.name);
        assert_eq!(
            degree(&t_after),
            2,
            "{} optimized T should be quadratic",
            bench.name
        );
    }
}

#[test]
fn cost_model_equals_compilation_at_scale() {
    // Theorem 5.1/5.2 at a depth large enough to exercise deep control
    // stacks, for the most structurally complex benchmarks.
    for bench in all_benchmarks() {
        if !matches!(bench.name, "insert" | "remove" | "push_back") {
            continue;
        }
        let compiled = compile_source(
            &bench.source,
            bench.entry,
            5,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        )
        .unwrap();
        assert_eq!(
            compiled.histogram(),
            compiled.counted_histogram(),
            "{}",
            bench.name
        );
    }
}
