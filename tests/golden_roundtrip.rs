//! Golden-file round-trip tests for the `.qc` serialization of every
//! benchmark program.
//!
//! Each `bench_suite::programs` benchmark is compiled at a small fixed
//! depth, serialized through the `.qc` writer, and compared against a
//! pinned file under `tests/golden/`. A mismatch prints a line-level diff
//! — either the compiler's output drifted (a real regression: code
//! generation is deterministic) or the change is intentional, in which
//! case regenerate the pins with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_roundtrip
//! ```
//!
//! The parse half of the round trip is checked too: reading a pin back
//! must reproduce the exact gate list.

use std::fs;
use std::path::PathBuf;

use bench_suite::programs::all_benchmarks;
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

/// Depth for size-scaling benchmarks; constant-size ones use 0. Small
/// enough to keep the pinned files reviewable, deep enough to include one
/// recursive unfolding.
const GOLDEN_DEPTH: i64 = 2;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  pinned: {e}\n  actual: {a}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: pinned {} vs actual {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn benchmarks_match_their_golden_qc_files() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for bench in all_benchmarks() {
        let depth = if bench.constant { 0 } else { GOLDEN_DEPTH };
        let compiled = compile_source(
            &bench.source,
            bench.entry,
            depth,
            WordConfig::tiny(),
            &CompileOptions::spire(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let circuit = compiled.emit();
        let qc = qcirc::qcformat::write(&circuit);

        // Round trip through the parser must be exact regardless of pins.
        let parsed = qcirc::qcformat::parse(&qc).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(parsed, circuit, "{}: .qc round trip lost gates", bench.name);

        let path = dir.join(format!("{}.qc", bench.name));
        if update {
            fs::write(&path, &qc).expect("write golden file");
            continue;
        }
        match fs::read_to_string(&path) {
            Ok(pinned) if pinned == qc => {}
            Ok(pinned) => failures.push(format!(
                "{}: output drifted from {} — {}",
                bench.name,
                path.display(),
                first_diff(&pinned, &qc)
            )),
            Err(e) => failures.push(format!(
                "{}: missing golden file {} ({e}); run UPDATE_GOLDEN=1 to create it",
                bench.name,
                path.display()
            )),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn golden_files_parse_back_to_valid_circuits() {
    // The pins themselves are valid .qc: parseable, nonempty, and their
    // qubit counts match the declared headers.
    for bench in all_benchmarks() {
        let path = golden_dir().join(format!("{}.qc", bench.name));
        let Ok(text) = fs::read_to_string(&path) else {
            continue; // reported by the pinning test
        };
        let circuit = qcirc::qcformat::parse(&text)
            .unwrap_or_else(|e| panic!("{}: pinned file does not parse: {e}", bench.name));
        assert!(
            !circuit.is_empty(),
            "{}: pinned circuit is empty",
            bench.name
        );
    }
}
