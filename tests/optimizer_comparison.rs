//! The paper's optimizer-comparison results (Section 8.3, Figure 15b,
//! Table 2) as shape assertions: which optimizer analogues recover linear
//! T-complexity on compiled control-flow circuits, and how Spire's
//! program-level approach compares in output quality and compile time.

use std::time::Instant;

use bench_suite::polyfit::fit_exact;
use bench_suite::programs::LENGTH_SIMPLE;
use qopt::{registry, AdjacentCancel, CircuitOptimizer, GlobalResynth, Peephole, ToffoliCancel};
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

fn compiled_length_simple(n: i64, options: &CompileOptions) -> spire::Compiled {
    compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        n,
        WordConfig::paper_default(),
        options,
    )
    .unwrap()
}

/// Degree of growth: exact polynomial fit when one exists (tolerating
/// boundary points), otherwise a log–log slope estimate over the upper
/// half of the range (some optimizers produce parity-dependent outputs
/// that are linear without being an exact polynomial).
fn degree(points: &[(i64, u64)]) -> usize {
    for skip in 0..=2 {
        let tail = &points[skip..];
        if tail.len() < 3 {
            break;
        }
        let xs: Vec<i128> = tail.iter().map(|&(x, _)| x as i128).collect();
        let ys: Vec<u64> = tail.iter().map(|&(_, y)| y).collect();
        if let Some(poly) = fit_exact(&xs, &ys) {
            return poly.degree();
        }
    }
    let (x0, y0) = points[points.len() / 2];
    let (x1, y1) = *points.last().expect("nonempty");
    let slope = ((y1 as f64 / y0 as f64).ln() / (x1 as f64 / x0 as f64).ln()).round();
    slope as usize
}

#[test]
fn only_toffoli_level_optimizers_recover_linearity() {
    // Paper: "only 2 of 8 tested quantum circuit optimizers recover
    // circuits with asymptotically efficient T-complexity" — the two that
    // work at the Toffoli level.
    let depths: Vec<i64> = (2..=8).collect();
    let mut results: Vec<(String, Vec<(i64, u64)>)> = registry()
        .iter()
        .map(|o| (o.name().to_string(), Vec::new()))
        .collect();
    for &n in &depths {
        let circuit = compiled_length_simple(n, &CompileOptions::baseline()).emit();
        for (i, optimizer) in registry().iter().enumerate() {
            let t = optimizer.optimize(&circuit).clifford_t_counts().t_count();
            results[i].1.push((n, t));
        }
    }
    for (name, points) in &results {
        let deg = degree(points);
        let expected = match name.as_str() {
            "feynman-mctexpand" | "global-resynth" => 1,
            _ => 2,
        };
        assert_eq!(
            deg, expected,
            "{name} should be degree {expected}: {points:?}"
        );
    }
}

#[test]
fn spire_beats_circuit_optimizers_on_compile_time() {
    // Paper Table 2: Spire emits an efficient circuit orders of magnitude
    // faster than circuit optimizers reach comparable quality, because the
    // large circuit is never created.
    let n = 10;
    let start = Instant::now();
    let spire_compiled = compiled_length_simple(n, &CompileOptions::spire());
    let spire_t = spire_compiled.t_complexity();
    let spire_time = start.elapsed();

    let baseline = compiled_length_simple(n, &CompileOptions::baseline());
    let circuit = baseline.emit();
    let start = Instant::now();
    let optimized = GlobalResynth.optimize(&circuit);
    let resynth_time = start.elapsed();
    let resynth_t = optimized.clifford_t_counts().t_count();

    assert!(
        spire_time < resynth_time,
        "spire {spire_time:?} should be faster than resynthesis {resynth_time:?}"
    );
    // Both are asymptotically efficient; Spire's output is at least
    // comparable (within 2x) at this depth.
    assert!(
        spire_t <= resynth_t * 2,
        "spire T {spire_t} should be comparable to resynthesis T {resynth_t}"
    );
}

#[test]
fn spire_plus_circuit_optimizer_beats_either_alone() {
    // Paper Section 8.3: "Spire's program-level optimizations also
    // synergize with existing quantum circuit optimizers to achieve better
    // results than either alone."
    let n = 8;
    let baseline_circuit = compiled_length_simple(n, &CompileOptions::baseline()).emit();
    let spire_compiled = compiled_length_simple(n, &CompileOptions::spire());
    let spire_circuit = spire_compiled.emit();

    let feynman_alone = ToffoliCancel
        .optimize(&baseline_circuit)
        .clifford_t_counts()
        .t_count();
    let spire_alone = spire_compiled.t_complexity();
    let combined = ToffoliCancel
        .optimize(&spire_circuit)
        .clifford_t_counts()
        .t_count();
    assert!(combined < feynman_alone, "{combined} !< {feynman_alone}");
    assert!(combined < spire_alone, "{combined} !< {spire_alone}");
}

#[test]
fn peephole_windows_rank_as_expected() {
    // Wider windows can only help.
    let circuit = compiled_length_simple(6, &CompileOptions::baseline()).emit();
    let narrow = AdjacentCancel
        .optimize(&circuit)
        .clifford_t_counts()
        .total();
    let wide = Peephole.optimize(&circuit).clifford_t_counts().total();
    assert!(
        wide <= narrow,
        "wider peephole should cancel at least as much"
    );
}

#[test]
fn all_optimizers_preserve_length_simple_semantics() {
    // Every analogue must preserve the circuit's action on the registers.
    // length-simple at tiny width keeps the state space simulable.
    let compiled = compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        2,
        WordConfig {
            uint_bits: 2,
            ptr_bits: 2,
        },
        &CompileOptions::baseline(),
    )
    .unwrap();
    let circuit = compiled.emit();
    for optimizer in registry() {
        let optimized = optimizer.optimize(&circuit);
        let qubits = optimized.num_qubits().max(circuit.num_qubits());
        if qubits > 22 {
            continue;
        }
        // Check a sample of basis states (the registers are small).
        for sample in [0u64, 1, 5, 17, 42] {
            let basis = sample % (1 << qubits.min(20));
            let mut a = qcirc::sim::StateVec::basis(qubits, basis).unwrap();
            a.run(&circuit).unwrap();
            let mut b = qcirc::sim::StateVec::basis(qubits, basis).unwrap();
            b.run(&optimized).unwrap();
            assert!(
                (a.fidelity(&b) - 1.0).abs() < 1e-9,
                "{} changed semantics on basis {basis}",
                optimizer.name()
            );
        }
    }
}
