//! Differential properties for the wide-key sparse simulator.
//!
//! Three independent cross-checks pin the generalized engine to trusted
//! references:
//!
//! 1. **Key-width transparency**: on ≤ 64-qubit circuits, a 128-bit-keyed
//!    state must be indistinguishable from the historical `u64`-keyed one.
//!    With branching fusion disabled every amplitude is a sum of at most
//!    two terms accumulated in the same order, so the comparison is
//!    *bit-for-bit*; under the default config (where multi-branch batches
//!    may reassociate floating-point sums) the key sets must still match
//!    exactly and amplitudes to 1e-12.
//! 2. **Wide permutation ground truth**: Hadamard-free programs compile to
//!    basis-state permutations, so [`BasisState`] is an oracle at *any*
//!    width. Generated programs with ≥ 100-qubit layouts must compute the
//!    same live variables on [`SparseState256`].
//! 3. **Parallel/sequential equivalence**: the sharded multi-threaded
//!    batch path must prepare the same state as the single-threaded one,
//!    on both generated quantum programs and a crafted H-heavy circuit
//!    whose support is guaranteed to cross the parallel threshold.

use proptest::prelude::*;
use qcirc::sim::{BasisKey, BasisState, ExecConfig, SparseState, SparseState128, SparseState256};
use qcirc::{Circuit, Gate};
use spire::OptConfig;
use spire_repro::difftest::{generate, seed_bytes, GenConfig, TestProgram};

/// An exec config with branching fusion disabled: every interference sum
/// has at most two terms, added commutatively, so narrow- and wide-key
/// runs are bitwise identical.
fn no_fusion() -> ExecConfig {
    ExecConfig {
        max_branching: 1,
        ..ExecConfig::default()
    }
}

/// Collect a state's amplitude map keyed by the low key word, as raw f64
/// bit patterns (the keys here are all ≤ 64 bits wide).
fn bit_snapshot<K: BasisKey>(
    state: &qcirc::sim::KeyedSparseState<K>,
) -> std::collections::BTreeMap<u64, (u64, u64)> {
    state
        .iter()
        .map(|(k, a)| (k.low_u64(), (a.re.to_bits(), a.im.to_bits())))
        .collect()
}

/// A quantum circuit from the generated corpus whose compiled layout fits
/// the given window, or `None` if the seed's program lands elsewhere.
fn quantum_circuit_in_window(seed: u64, lo: u32, hi: u32) -> Option<(Circuit, u64)> {
    let program = generate(&seed_bytes(seed, 96), &GenConfig::wide_quantum());
    let compiled = program.compile(OptConfig::spire());
    let circuit = compiled.emit();
    let width = circuit.num_qubits();
    if !(lo..=hi).contains(&width) {
        return None;
    }
    if !circuit.iter().any(|v| v.kind == qcirc::GateKind::Mch) {
        return None;
    }
    // A fixed nonzero pattern across the input registers so conditionals
    // actually fire.
    let mut index = 0u64;
    let mut pattern = 0xB5F3_9D17_2C6A_E481u64;
    for (var, _) in &program.inputs {
        let reg = compiled.layout.reg(var).expect("input register exists");
        let value = pattern & ((1u64 << reg.width) - 1);
        pattern = pattern.rotate_right(reg.width);
        index |= value << reg.offset;
    }
    Some((circuit, index))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wide keys are invisible at ≤ 64 qubits: the `Key128` engine
    /// reproduces the `u64` engine bit-for-bit when fusion cannot
    /// reassociate sums, and to exact key sets + 1e-12 amplitudes under
    /// the default config.
    #[test]
    fn key128_matches_u64_below_64_qubits(seed in any::<u64>()) {
        let Some((circuit, initial)) = quantum_circuit_in_window(seed % 400, 8, 64) else {
            return;
        };
        let width = circuit.num_qubits();

        // Bitwise comparison under the reassociation-free config.
        let mut narrow = SparseState::basis(width, initial)
            .expect("fits u64 keys")
            .with_exec(no_fusion());
        let mut wide = SparseState128::basis(width, initial)
            .expect("fits 128-bit keys")
            .with_exec(no_fusion());
        narrow.run(&circuit).expect("narrow run");
        wide.run(&circuit).expect("wide run");
        prop_assert_eq!(
            bit_snapshot(&narrow),
            bit_snapshot(&wide),
            "key width changed bits at {} qubits (seed {})", width, seed
        );

        // Default config: fused multi-branch batches may reassociate
        // floating-point sums, so allow 1e-12 on amplitudes — but the
        // support (which keys exist) must still agree exactly.
        let mut narrow = SparseState::basis(width, initial).expect("fits u64 keys");
        let mut wide = SparseState128::basis(width, initial).expect("fits 128-bit keys");
        narrow.run(&circuit).expect("narrow run");
        wide.run(&circuit).expect("wide run");
        let narrow_keys: std::collections::BTreeSet<u64> =
            narrow.iter().map(|(k, _)| k).collect();
        let wide_keys: std::collections::BTreeSet<u64> =
            wide.iter().map(|(k, _)| k.low_u64()).collect();
        prop_assert_eq!(narrow_keys, wide_keys, "support differs (seed {})", seed);
        for (k, a) in narrow.iter() {
            let b = wide.amplitude_key(qcirc::sim::Key128::from_index(k));
            prop_assert!(
                a.approx_eq(b, 1e-12),
                "amplitude at key {:#x} differs (seed {})", k, seed
            );
        }
    }
}

/// Hadamard-free generated programs at ≥ 100 qubits: [`BasisState`] (an
/// oracle at any width) and [`SparseState256`] must agree on every live
/// variable. This is `sparse_reaches_sizes_dense_cannot` lifted past the
/// 64-bit key space.
#[test]
fn wide_sparse_matches_classical_oracle_at_100_plus_qubits() {
    let mut tested = 0;
    let mut widths = Vec::new();
    for seed in 0..400u64 {
        if tested == 4 {
            break;
        }
        let program = generate(&seed_bytes(seed, 96), &GenConfig::huge());
        let compiled = program.compile(OptConfig::spire());
        let total = compiled.layout.total_qubits;
        if !(100..=256).contains(&total) {
            continue;
        }
        tested += 1;
        widths.push(total);
        for bits in [0u64, 0xACE1_1234_5678_9ABC] {
            let classical = program.run::<BasisState>(&compiled, bits);
            let sparse = program.run::<SparseState256>(&compiled, bits);
            for name in TestProgram::live_vars(&compiled) {
                assert_eq!(
                    classical.var(&name).unwrap(),
                    sparse.var(&name).unwrap(),
                    "variable {name} differs between backends (seed {seed}, \
                     {total} qubits, inputs {bits:#x})"
                );
            }
        }
    }
    assert_eq!(
        tested, 4,
        "seed budget found only {tested}/4 programs with 100–256-qubit \
         layouts (widths seen: {widths:?})"
    );
    assert!(
        widths.iter().any(|&w| w > 64),
        "window check is vacuous: {widths:?}"
    );
}

/// The sharded parallel batch path prepares the same state as the
/// single-threaded path, on generated quantum programs forced through it
/// with a tiny threshold.
#[test]
fn parallel_run_matches_sequential_on_generated_programs() {
    let parallel = ExecConfig {
        threads: 4,
        parallel_threshold: 2,
        ..ExecConfig::default()
    };
    let sequential = ExecConfig {
        threads: 1,
        ..ExecConfig::default()
    };
    let mut tested = 0;
    for seed in 0..400u64 {
        if tested == 3 {
            break;
        }
        let Some((circuit, initial)) = quantum_circuit_in_window(seed, 24, 64) else {
            continue;
        };
        let width = circuit.num_qubits();
        let mut par = SparseState::basis(width, initial)
            .expect("fits")
            .with_exec(parallel);
        let mut seq = SparseState::basis(width, initial)
            .expect("fits")
            .with_exec(sequential);
        par.run(&circuit).expect("parallel run");
        seq.run(&circuit).expect("sequential run");
        if seq.support() < 2 {
            continue; // the Hadamards cancelled; nothing parallel to check
        }
        tested += 1;
        assert!(
            par.approx_eq(&seq, 1e-7),
            "parallel and sequential runs diverge (seed {seed}, support {} vs {})",
            par.support(),
            seq.support(),
        );
    }
    assert_eq!(
        tested, 3,
        "seed budget found only {tested}/3 quantum programs"
    );
}

/// A crafted H-heavy wide circuit whose support is guaranteed to cross
/// the parallel threshold: 14 Hadamards spread across a 200-qubit
/// register (support 2¹⁴ = 16384), entangled by a CNOT ladder, then
/// partially interfered. Parallel and sequential runs must agree and the
/// norm must survive the shard merge.
#[test]
fn parallel_run_matches_sequential_on_wide_support_heavy_circuit() {
    let width = 200u32;
    let mut circuit = Circuit::new(width);
    for i in 0..14u32 {
        circuit.push(Gate::h(i * 14)); // qubits 0, 14, …, 182
    }
    for i in 0..13u32 {
        circuit.push(Gate::cnot(i * 14, i * 14 + 7));
    }
    for i in 0..7u32 {
        circuit.push(Gate::T(i * 14));
        circuit.push(Gate::h(i * 14)); // interfere half the branches
    }
    let parallel = ExecConfig {
        threads: 3,
        parallel_threshold: 64,
        ..ExecConfig::default()
    };
    let sequential = ExecConfig {
        threads: 1,
        ..ExecConfig::default()
    };
    let mut par = SparseState256::basis(width, 0)
        .expect("fits 256-bit keys")
        .with_exec(parallel);
    let mut seq = SparseState256::basis(width, 0)
        .expect("fits 256-bit keys")
        .with_exec(sequential);
    par.run(&circuit).expect("parallel run");
    seq.run(&circuit).expect("sequential run");
    assert!(
        par.support() >= 64,
        "support {} too small to shard",
        par.support()
    );
    assert!(
        (par.norm() - 1.0).abs() < 1e-9,
        "norm drifted: {}",
        par.norm()
    );
    assert!(
        par.approx_eq_exact(&seq, 1e-10),
        "parallel and sequential runs diverge at width {width} \
         (support {} vs {})",
        par.support(),
        seq.support(),
    );
}

/// The generator's `huge` configs actually reach the advertised window —
/// guards the corpus the two tests above depend on.
#[test]
fn huge_config_reaches_wide_layouts() {
    let mut max_seen = 0;
    for seed in 0..60u64 {
        let program = generate(&seed_bytes(seed, 96), &GenConfig::huge());
        let compiled = program.compile(OptConfig::none());
        max_seen = max_seen.max(compiled.layout.total_qubits);
    }
    assert!(
        max_seen > 100,
        "GenConfig::huge never exceeded 100 qubits (max {max_seen})"
    );
}
