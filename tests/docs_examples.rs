//! The documentation cannot drift from the implementation:
//!
//! * every fenced `tower` code block in `docs/TOWER.md` is a complete
//!   program and must compile (baseline and Spire-optimized);
//! * `docs/EXPERIMENTS.md` must index every artifact the pipeline
//!   produces, by id and by generator function;
//! * the README quick-tour transcript's gate counts are recomputed from
//!   the same program the `quickstart` example compiles, and its
//!   simulated result is re-executed.

use bench_suite::runner::artifact_specs;
use spire::{compile_source, CompileOptions, Machine};
use tower::WordConfig;

const TOWER_MD: &str = include_str!("../docs/TOWER.md");
const EXPERIMENTS_MD: &str = include_str!("../docs/EXPERIMENTS.md");
const README_MD: &str = include_str!("../README.md");

/// Extract fenced code blocks with the given info string.
fn fenced_blocks(markdown: &str, language: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            Some(block) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().expect("block in progress"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
            None => {
                if line.trim_end() == format!("```{language}") {
                    current = Some(String::new());
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```{language} block");
    blocks
}

/// The entry point of a doc example: its first declared function.
fn first_fun(source: &str) -> &str {
    let rest = source
        .split("fun ")
        .nth(1)
        .expect("doc example declares a function");
    rest.split(|c: char| c == '[' || c == '(' || c.is_whitespace())
        .next()
        .expect("function has a name")
}

#[test]
fn every_tower_block_in_the_language_reference_compiles() {
    let blocks = fenced_blocks(TOWER_MD, "tower");
    assert!(
        blocks.len() >= 8,
        "TOWER.md should be example-rich, found {} blocks",
        blocks.len()
    );
    for (index, source) in blocks.iter().enumerate() {
        let entry = first_fun(source);
        // Depth 3 exercises the unrolling for recursive examples; a
        // depth argument on a function without a depth parameter is
        // simply unused.
        for options in [CompileOptions::baseline(), CompileOptions::spire()] {
            let compiled = compile_source(source, entry, 3, WordConfig::paper_default(), &options)
                .unwrap_or_else(|e| {
                    panic!("TOWER.md block #{index} (`{entry}`) failed to compile: {e}\n{source}")
                });
            assert!(
                compiled.mcx_complexity() > 0,
                "TOWER.md block #{index} (`{entry}`) compiled to an empty circuit"
            );
        }
    }
}

#[test]
fn experiment_index_covers_every_artifact() {
    for spec in artifact_specs() {
        assert!(
            EXPERIMENTS_MD.contains(&format!("reports/{}.md", spec.id)),
            "docs/EXPERIMENTS.md does not link the report file for {}",
            spec.id
        );
        let function = spec
            .function
            .strip_prefix("experiments::")
            .unwrap_or(spec.function);
        assert!(
            EXPERIMENTS_MD.contains(function),
            "docs/EXPERIMENTS.md does not name the generator for {}",
            spec.id
        );
        assert!(
            EXPERIMENTS_MD.contains(spec.paper_ref),
            "docs/EXPERIMENTS.md does not mention {} ({})",
            spec.paper_ref,
            spec.id
        );
    }
}

/// The `length` program of the README quick tour / `examples/quickstart.rs`.
const QUICKSTART_LENGTH: &str = r#"
type list = (uint, ptr<list>);

fun length[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let next <- temp.2;
        let r <- acc + 1;
    } do {
        let out <- length[n-1](next, r);
    }
    return out;
}
"#;

/// Parse the integers out of a quick-tour transcript line.
fn numbers(line: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in line.chars() {
        if ch.is_ascii_digit() {
            current.push(ch);
        } else if !current.is_empty() {
            out.push(current.parse().expect("digits parse"));
            current.clear();
        }
    }
    if !current.is_empty() {
        out.push(current.parse().expect("digits parse"));
    }
    out
}

#[test]
fn readme_quick_tour_numbers_are_not_hand_pinned_drift() {
    let config = WordConfig::paper_default();
    let baseline = compile_source(
        QUICKSTART_LENGTH,
        "length",
        8,
        config,
        &CompileOptions::baseline(),
    )
    .expect("quickstart program compiles");
    let optimized = compile_source(
        QUICKSTART_LENGTH,
        "length",
        8,
        config,
        &CompileOptions::spire(),
    )
    .expect("quickstart program compiles");

    let line = |needle: &str| {
        README_MD
            .lines()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("README quick tour lost its `{needle}` line"))
    };

    // `unoptimized:    11536 MCX gates,   257880 T gates`
    let unopt = numbers(line("unoptimized:"));
    assert_eq!(
        unopt,
        vec![baseline.mcx_complexity(), baseline.t_complexity()],
        "README unoptimized gate counts drifted; regenerate with \
         `cargo run --release --example quickstart`"
    );

    // `spire:          11564 MCX gates,    42980 T gates  (83% fewer T)`
    let spire_line = numbers(line("spire:"));
    let percent =
        100 * (baseline.t_complexity() - optimized.t_complexity()) / baseline.t_complexity();
    assert_eq!(
        spire_line,
        vec![
            optimized.mcx_complexity(),
            optimized.t_complexity(),
            percent
        ],
        "README spire gate counts drifted; regenerate with \
         `cargo run --release --example quickstart`"
    );

    // `length([10, 20, 30]) = 3` — re-run the simulation.
    let mut machine = Machine::new(&optimized.layout);
    let head = machine.build_list(&[10, 20, 30]);
    machine.set_var("xs", head).expect("xs exists");
    machine.run(&optimized.emit()).expect("circuit runs");
    assert_eq!(machine.var("out").expect("out exists"), 3);
    assert_eq!(
        numbers(line("length([10, 20, 30])")),
        vec![10, 20, 30, 3],
        "README simulated result drifted"
    );
}
