//! Round-trips through the `.qc` circuit format (the Tower compiler's
//! output format, Mosca 2016) at both gate levels.

use bench_suite::programs::LENGTH;
use qcirc::qcformat;
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

#[test]
fn mcx_circuit_roundtrips() {
    let compiled = compile_source(
        LENGTH,
        "length",
        3,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let circuit = compiled.emit();
    let text = qcformat::write(&circuit);
    let parsed = qcformat::parse(&text).unwrap();
    assert_eq!(parsed, circuit);
    assert_eq!(parsed.histogram().t_complexity(), compiled.t_complexity());
}

#[test]
fn clifford_t_circuit_roundtrips() {
    let compiled = compile_source(
        LENGTH,
        "length",
        2,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let lowered = qcirc::decompose::to_clifford_t(&compiled.emit()).unwrap();
    let text = qcformat::write(&lowered);
    let parsed = qcformat::parse(&text).unwrap();
    assert_eq!(parsed, lowered);
    assert_eq!(
        parsed.clifford_t_counts().t_count(),
        compiled.t_complexity()
    );
}

#[test]
fn header_declares_every_qubit() {
    let compiled = compile_source(
        LENGTH,
        "length",
        2,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let circuit = compiled.emit();
    let text = qcformat::write(&circuit);
    let v_line = text.lines().find(|l| l.starts_with(".v")).unwrap();
    assert_eq!(
        v_line.split_whitespace().count() - 1,
        circuit.num_qubits() as usize
    );
}
