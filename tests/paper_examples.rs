//! The paper's worked examples (Sections 3 and 6) as executable tests:
//! Figure 3's nested conditionals, the Figure 7 optimization, the cost
//! arithmetic of Section 3.3, and Theorems 6.1/6.4's scaling claims.

use qcirc::sim::BasisState;
use qcirc::{t_of_mcx, Circuit, Gate};
use spire::{compile_source, CompileOptions, Compiled, Machine, OptConfig};
use tower::WordConfig;

/// Paper Figure 3, wrapped in a function (outputs packed into a pair).
const FIGURE_3: &str = r#"
fun figure3(x: bool, y: bool, z: bool) -> (bool, bool) {
    let a <- default<bool>;
    let b <- default<bool>;
    if x {
        if y {
            with {
                let t <- z;
            } do {
                if z {
                    let a <- not t;
                    let b <- true;
                }
            }
        }
    }
    let out <- (a, b);
    let a -> out.1;
    let b -> out.2;
    return out;
}
"#;

fn compile_fig3(options: &CompileOptions) -> Compiled {
    compile_source(FIGURE_3, "figure3", 0, WordConfig::paper_default(), options)
        .expect("figure 3 compiles")
}

fn run_fig3(compiled: &Compiled, x: bool, y: bool, z: bool) -> (bool, bool) {
    let mut machine = Machine::new(&compiled.layout);
    machine.set_var("x", x as u64).unwrap();
    machine.set_var("y", y as u64).unwrap();
    machine.set_var("z", z as u64).unwrap();
    machine.run(&compiled.emit()).unwrap();
    let out = machine.var("out").unwrap();
    (out & 1 == 1, out >> 1 == 1)
}

#[test]
fn figure_3_semantics() {
    // a = ¬z ∧ (x∧y∧z) = false whenever the branch runs — the paper's
    // program sets a to the negation of z under the condition that z is
    // true, i.e. a stays false, and b = x∧y∧z.
    let compiled = compile_fig3(&CompileOptions::baseline());
    for bits in 0..8u32 {
        let (x, y, z) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
        let (a, b) = run_fig3(&compiled, x, y, z);
        assert!(!a, "a is ¬t under z, i.e. never set");
        assert_eq!(b, x && y && z, "b is set exactly when all of x,y,z");
    }
}

#[test]
fn figure_7_optimization_preserves_semantics_and_flattens() {
    let baseline = compile_fig3(&CompileOptions::baseline());
    let optimized = compile_fig3(&CompileOptions::spire());
    for bits in 0..8u32 {
        let (x, y, z) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
        assert_eq!(
            run_fig3(&baseline, x, y, z),
            run_fig3(&optimized, x, y, z),
            "optimization changed Figure 3's meaning at {bits:03b}"
        );
    }
    // Figure 8 vs Figure 4: the optimized circuit has strictly lower
    // T-complexity, and its largest control arity is smaller.
    assert!(optimized.t_complexity() < baseline.t_complexity());
    assert!(
        optimized.histogram().max_controls() < baseline.histogram().max_controls(),
        "flattening must reduce the deepest control arity"
    );
}

#[test]
fn section_3_3_control_bit_arithmetic() {
    // "In addition to the 6 MCX gates, the 13 orange controls cost at
    // least 7 × 2 × 13 = 182 T gates": every control beyond the second
    // costs exactly 14 T in the Figure 5/6 decomposition.
    for c in 2..12 {
        assert_eq!(t_of_mcx(c + 1) - t_of_mcx(c), 14);
    }
    // A Toffoli costs 7 T (Figure 6), an MCX with 3 controls 21 (Figure 5).
    assert_eq!(t_of_mcx(2), 7);
    assert_eq!(t_of_mcx(3), 21);
}

#[test]
fn theorem_6_1_flattening_asymptotics() {
    // C J s K with k gates under n nested ifs: flattening takes T from
    // O(k·n) to O(k + n). Measure both scalings directly.
    fn nested_program(levels: usize, body_gates: usize) -> String {
        let conds: Vec<String> = (0..levels).map(|i| format!("c{i}: bool")).collect();
        let mut body = String::new();
        for g in 0..body_gates {
            body.push_str(&format!("let t{g} <- v0 && v1;\n"));
        }
        for g in (0..body_gates).rev() {
            body.push_str(&format!("let t{g} -> v0 && v1;\n"));
        }
        let mut nest = body;
        for i in (0..levels).rev() {
            nest = format!("if c{i} {{\n{nest}}}\n");
        }
        format!(
            "fun nest({}, v0: bool, v1: bool) -> bool {{\n{nest}let out <- v0;\nreturn out;\n}}",
            conds.join(", ")
        )
    }
    let t = |levels: usize, gates: usize, options: &CompileOptions| {
        compile_source(
            &nested_program(levels, gates),
            "nest",
            0,
            WordConfig::paper_default(),
            options,
        )
        .expect("nested program compiles")
        .t_complexity()
    };
    // Unoptimized: linear in n for fixed k with slope ~ 14·k-ish
    // (each level adds a control to every body gate).
    let k = 8;
    let unopt_slope_a =
        t(6, k, &CompileOptions::baseline()) as i64 - t(5, k, &CompileOptions::baseline()) as i64;
    assert!(
        unopt_slope_a >= 14 * k as i64,
        "each extra level costs >= 14 T per body gate, got {unopt_slope_a}"
    );
    // Flattened: adding a level costs O(1) — one Toffoli pair for the new
    // conjunction — independent of k.
    let opt_slope_small =
        t(6, 4, &CompileOptions::spire()) as i64 - t(5, 4, &CompileOptions::spire()) as i64;
    let opt_slope_large =
        t(6, 32, &CompileOptions::spire()) as i64 - t(5, 32, &CompileOptions::spire()) as i64;
    assert_eq!(
        opt_slope_small, opt_slope_large,
        "flattened per-level cost must not depend on the body size"
    );
}

#[test]
fn theorem_6_4_narrowing_removes_setup_controls() {
    // if x { with { s1 } do { s2 } }: narrowing removes the controls on
    // CJs1K and its reverse — a 2k-gate additive saving.
    let src = r#"
fun narrowed(x: bool, v: uint) -> uint {
    if x {
        with {
            let t <- v + v;
        } do {
            let out <- t + v;
        }
    }
    let r <- out;
    return r;
}
"#;
    let base = compile_source(
        src,
        "narrowed",
        0,
        WordConfig::paper_default(),
        &CompileOptions::with_opt(OptConfig::none()),
    )
    .unwrap();
    let narrowed = compile_source(
        src,
        "narrowed",
        0,
        WordConfig::paper_default(),
        &CompileOptions::with_opt(OptConfig::narrowing_only()),
    )
    .unwrap();
    assert!(narrowed.t_complexity() < base.t_complexity());
    // And the meaning is unchanged.
    for v in [0u64, 3, 9] {
        for x in [0u64, 1] {
            let mut m1 = Machine::new(&base.layout);
            m1.set_var("x", x).unwrap();
            m1.set_var("v", v).unwrap();
            m1.run(&base.emit()).unwrap();
            let mut m2 = Machine::new(&narrowed.layout);
            m2.set_var("x", x).unwrap();
            m2.set_var("v", v).unwrap();
            m2.run(&narrowed.emit()).unwrap();
            assert_eq!(m1.var("r").unwrap(), m2.var("r").unwrap(), "x={x} v={v}");
        }
    }
}

#[test]
fn figure_16_redundant_toffolis_cancel_at_toffoli_level() {
    // Direct compilation of nested conditionals (Figure 16): consecutive
    // body gates under the same 3 controls produce redundant V-chains that
    // Toffoli-level cancellation removes and Clifford+T-level peepholes
    // cannot (Figure 17).
    let mut circuit = Circuit::new(8);
    circuit.push(Gate::mcx(vec![0, 1, 2], 5));
    circuit.push(Gate::mcx(vec![0, 1, 2], 6));
    circuit.push(Gate::mcx(vec![0, 1, 2], 7));
    use qopt::CircuitOptimizer;
    let toffoli_aware = qopt::ToffoliCancel.optimize(&circuit);
    let peephole = qopt::AdjacentCancel.optimize(&circuit);
    let naive_t = circuit.histogram().t_complexity();
    let aware_t = toffoli_aware.clifford_t_counts().t_count();
    let peep_t = peephole.clifford_t_counts().t_count();
    assert_eq!(naive_t, 3 * 21);
    assert!(
        aware_t <= 21 + 14,
        "one shared chain plus payload Toffolis, got {aware_t}"
    );
    assert!(peep_t > aware_t, "peephole leaves the Figure 17 structure");
}

#[test]
fn hadamard_statement_creates_superposition() {
    // A Tower program with `had` compiles to a circuit with Hadamard
    // gates; the state-vector simulator confirms the superposition.
    let src = r#"
fun coin(q: bool, v: uint) -> uint {
    had q;
    if q {
        let r <- v + 1;
    } else {
        let r <- v;
    }
    return r;
}
"#;
    let compiled = compile_source(
        src,
        "coin",
        0,
        WordConfig {
            uint_bits: 3,
            ptr_bits: 2,
        },
        &CompileOptions::spire(),
    )
    .unwrap();
    let circuit = compiled.emit();
    let qubits = circuit.num_qubits();
    assert!(qubits <= 24, "state-vector simulable");
    let mut state = qcirc::sim::StateVec::basis(qubits, 0).unwrap();
    // v = 2: write into the input register by flipping amplitude index.
    let v_reg = compiled.layout.reg(&tower::Symbol::new("v")).unwrap();
    let r_reg = compiled.layout.reg(&tower::Symbol::new("r")).unwrap();
    let q_reg = compiled.layout.reg(&tower::Symbol::new("q")).unwrap();
    let basis = 2u64 << v_reg.offset;
    let mut state2 = qcirc::sim::StateVec::basis(qubits, basis).unwrap();
    state2.run(&circuit).unwrap();
    state.run(&circuit).unwrap();
    // Outcomes r = v and r = v + 1 each occur with probability 1/2.
    let prob_of = |state: &qcirc::sim::StateVec, v: u64, q: u64, r: u64| {
        let index = (v << v_reg.offset) | (q << q_reg.bit(0)) | (r << r_reg.offset);
        state.probability(index)
    };
    assert!((prob_of(&state2, 2, 0, 2) - 0.5).abs() < 1e-9);
    assert!((prob_of(&state2, 2, 1, 3) - 0.5).abs() < 1e-9);
    let _ = BasisState::new(1);
}
