//! The differential-testing harness: equivalence checks at paper-sized
//! qubit counts that the dense simulator cannot touch.
//!
//! Three layers of the toolchain are cross-checked against each other on
//! randomly generated Tower programs (from `spire_repro::difftest`):
//!
//! 1. **Program-level optimizations** (Theorems 6.3/6.5): every
//!    [`OptConfig`] combination compiles to a circuit computing the same
//!    function, checked variable-by-variable (Definition 6.2) on the
//!    sparse backend at layouts of ≥ 24 qubits.
//! 2. **Gate-level decomposition** (Figures 5/6): the emitted MCX circuit
//!    and its Clifford+T decomposition prepare the same state, phases
//!    included, on Hadamard-bearing programs.
//! 3. **Every circuit optimizer** in [`qopt::registry`]: each analogue's
//!    output prepares the same state as its input circuit (up to global
//!    phase — several decompositions differ from the identity by one).

use qcirc::decompose;
use qcirc::sim::{BasisState, SparseState, SparseState256, StateVec};
use qcirc::Circuit;
use spire::OptConfig;
use spire_repro::difftest::{generate, seed_bytes, GenConfig, TestProgram};

/// Qubit range the harness targets: beyond the dense simulator's 26-qubit
/// cap (modulo its margin: we insist on ≥ 24 and prove ≥ 28 below), inside
/// the sparse simulator's 64-bit key space.
const MIN_QUBITS: u32 = 24;
const MAX_QUBITS: u32 = 64;

/// Find `count` seeds whose generated program compiles (under every listed
/// config) into the harness's qubit window, and hand each program plus its
/// reference compilation to `check`.
fn for_programs_in_window(
    config: &GenConfig,
    count: usize,
    mut check: impl FnMut(u64, &TestProgram, &spire::Compiled),
) {
    let mut tested = 0;
    for seed in 0..400u64 {
        if tested == count {
            return;
        }
        let program = generate(&seed_bytes(seed, 96), config);
        let reference = program.compile(OptConfig::none());
        let total = reference.layout.total_qubits;
        if !(MIN_QUBITS..=MAX_QUBITS).contains(&total) {
            continue;
        }
        tested += 1;
        check(seed, &program, &reference);
    }
    assert_eq!(
        tested, count,
        "seed budget found only {tested}/{count} programs in the \
         {MIN_QUBITS}–{MAX_QUBITS} qubit window"
    );
}

#[test]
fn optconfigs_agree_at_paper_sizes() {
    // One entry per non-reference config: how many programs actually
    // exercised it (a config whose layout overflows the sparse key space
    // is skipped for that program, and must not end up untested overall).
    let mut coverage = [0usize; 3];
    for_programs_in_window(&GenConfig::wide(), 6, |seed, program, reference| {
        let optimized: Vec<(OptConfig, spire::Compiled)> = [
            OptConfig::narrowing_only(),
            OptConfig::flattening_only(),
            OptConfig::spire(),
        ]
        .into_iter()
        .map(|opt| (opt, program.compile(opt)))
        .collect();
        for bits in [0u64, 0xACE1_1234_5678_9ABC, u64::MAX] {
            let reference_machine = program.run::<SparseState>(reference, bits);
            for (i, (opt, compiled)) in optimized.iter().enumerate() {
                if compiled.layout.total_qubits > MAX_QUBITS {
                    continue; // flattening temporaries pushed it past u64 keys
                }
                coverage[i] += 1;
                let machine = program.run::<SparseState>(compiled, bits);
                for name in TestProgram::live_vars(reference) {
                    assert_eq!(
                        reference_machine.var(&name).unwrap(),
                        machine.var(&name).unwrap(),
                        "variable {name} differs under {} (seed {seed}, inputs {bits:#x})",
                        opt.label(),
                    );
                }
            }
        }
    });
    assert!(
        coverage.iter().all(|&c| c > 0),
        "a config was never exercised (runs per config: {coverage:?})"
    );
}

/// The optimization-soundness check of `optconfigs_agree_at_paper_sizes`,
/// lifted past the 64-bit key space: every [`OptConfig`] combination
/// computes the same function on generated programs whose layouts land in
/// the 100–256-qubit window, checked on the wide-keyed sparse backend.
#[test]
fn optconfigs_agree_at_100_plus_qubits() {
    let mut tested = 0;
    for seed in 0..400u64 {
        if tested == 3 {
            break;
        }
        let program = generate(&seed_bytes(seed, 96), &GenConfig::huge());
        let reference = program.compile(OptConfig::none());
        let total = reference.layout.total_qubits;
        if !(100..=256).contains(&total) {
            continue;
        }
        tested += 1;
        let optimized: Vec<(OptConfig, spire::Compiled)> = [
            OptConfig::narrowing_only(),
            OptConfig::flattening_only(),
            OptConfig::spire(),
        ]
        .into_iter()
        .map(|opt| (opt, program.compile(opt)))
        .collect();
        for bits in [0u64, 0xACE1_1234_5678_9ABC] {
            let reference_machine = program.run::<SparseState256>(&reference, bits);
            for (opt, compiled) in &optimized {
                if compiled.layout.total_qubits > 256 {
                    continue; // flattening temporaries overflowed even 256-bit keys
                }
                let machine = program.run::<SparseState256>(compiled, bits);
                for name in TestProgram::live_vars(&reference) {
                    assert_eq!(
                        reference_machine.var(&name).unwrap(),
                        machine.var(&name).unwrap(),
                        "variable {name} differs under {} (seed {seed}, \
                         {total} qubits, inputs {bits:#x})",
                        opt.label(),
                    );
                }
            }
        }
    }
    assert_eq!(
        tested, 3,
        "seed budget found only {tested}/3 programs in the 100–256 qubit window"
    );
}

#[test]
fn sparse_reaches_sizes_dense_cannot() {
    let mut proved = false;
    for seed in 0..400u64 {
        let program = generate(&seed_bytes(seed, 96), &GenConfig::wide());
        let compiled = program.compile(OptConfig::spire());
        let total = compiled.layout.total_qubits;
        if !(28..=MAX_QUBITS).contains(&total) {
            continue;
        }
        // The dense simulator cannot even allocate this register.
        assert!(
            StateVec::basis(total, 0).is_err(),
            "dense simulator unexpectedly allocated {total} qubits"
        );
        // The sparse backend runs it — and agrees with the classical
        // simulator on every live variable (the program is Hadamard-free).
        let classical = program.run::<BasisState>(&compiled, 0x5A5A_5A5A);
        let sparse = program.run::<SparseState>(&compiled, 0x5A5A_5A5A);
        for name in TestProgram::live_vars(&compiled) {
            assert_eq!(
                classical.var(&name).unwrap(),
                sparse.var(&name).unwrap(),
                "variable {name} differs between backends (seed {seed})"
            );
        }
        proved = true;
        break;
    }
    assert!(proved, "no ≥28-qubit program found in the seed budget");
}

/// Run a circuit on the sparse backend at an explicit width from the given
/// basis state.
fn sparse_state_after(circuit: &Circuit, width: u32, initial: u64) -> SparseState {
    let mut state = SparseState::basis(width, initial).expect("width fits sparse keys");
    state.run(circuit).expect("circuit runs");
    state
}

/// A basis index whose input registers hold a fixed nonzero bit pattern,
/// so the compiled circuit's conditionals and arithmetic actually fire.
fn input_pattern(program: &TestProgram, compiled: &spire::Compiled) -> u64 {
    let mut index = 0u64;
    let mut pattern = 0xB5F3_9D17_2C6A_E481u64;
    for (var, _) in &program.inputs {
        let reg = compiled.layout.reg(var).expect("input register exists");
        let value = pattern & ((1u64 << reg.width) - 1);
        pattern = pattern.rotate_right(reg.width);
        index |= value << reg.offset;
    }
    index
}

#[test]
fn decomposition_and_optimizers_preserve_states_at_paper_sizes() {
    let mut tested = 0;
    for seed in 0..400u64 {
        if tested == 3 {
            break;
        }
        let program = generate(&seed_bytes(seed, 96), &GenConfig::wide_quantum());
        let compiled = program.compile(OptConfig::spire());
        let circuit = compiled.emit();
        if !(MIN_QUBITS..=48).contains(&circuit.num_qubits()) {
            continue;
        }
        // Only Hadamard-bearing circuits make this interesting: they put
        // the state into superposition and their decompositions use the
        // full Clifford+T gate set.
        if !circuit.iter().any(|v| v.kind == qcirc::GateKind::Mch) {
            continue;
        }
        let decomposed = decompose::to_clifford_t(&circuit).expect("decomposes");
        // The decomposition is exact (phases included, Figures 5/6), so it
        // is compared phase-sensitively; the optimizer analogues are only
        // promised up to global phase.
        let candidates: Vec<(String, bool, Circuit)> =
            std::iter::once(("clifford+t".to_string(), true, decomposed))
                .chain(
                    // The certified registry re-verifies every pass output
                    // (structural audit + T-count non-increase) in debug
                    // builds, so the difftest corpus doubles as the
                    // certification corpus.
                    qopt::registry_certified()
                        .iter()
                        .map(|opt| (opt.name().to_string(), false, opt.optimize(&circuit))),
                )
                .collect();
        // All states are compared at one common width (ancilla qubits
        // return to zero, so widening is benign).
        let width = candidates
            .iter()
            .map(|(_, _, c)| c.num_qubits())
            .chain(std::iter::once(circuit.num_qubits()))
            .max()
            .expect("nonempty");
        if width > MAX_QUBITS {
            continue;
        }
        let initial = input_pattern(&program, &compiled);
        let reference = sparse_state_after(&circuit, width, initial);
        if reference.support() < 2 {
            // The Hadamards cancelled out on this input; not interesting.
            continue;
        }
        tested += 1;
        for (name, exact, candidate) in &candidates {
            let state = sparse_state_after(candidate, width, initial);
            let equal = if *exact {
                reference.approx_eq_exact(&state, 1e-7)
            } else {
                reference.approx_eq(&state, 1e-7)
            };
            assert!(
                equal,
                "{name} changed the prepared state (seed {seed}, support {} vs {})",
                reference.support(),
                state.support(),
            );
        }
    }
    assert_eq!(
        tested, 3,
        "seed budget found only {tested}/3 quantum programs"
    );
}
