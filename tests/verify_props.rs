//! Ties the analyzer's verdicts to simulator ground truth.
//!
//! Two directions:
//!
//! * **Soundness on clean programs** (property test): for randomly
//!   generated Tower programs that the verifier passes clean, every
//!   scratch ancilla the layout allocated measures 0 on the sparse
//!   backend at the end of the circuit — the discipline the static
//!   analysis claims to have proven actually holds dynamically.
//! * **The negative fixtures are real bugs**: each runnable fixture from
//!   `tests/fixtures/` is not just rejected statically but *observably
//!   wrong* under simulation — a leaked ancilla measures nonzero, a
//!   stale read computes the wrong output, an out-of-range qubit cannot
//!   execute at the declared width. (The footprint/arena fixtures
//!   corrupt internal metadata with no independent runtime semantics;
//!   their defect is that the *optimizer* would act on lies, which is
//!   what `verify/footprint-mismatch` and `verify/arena-out-of-bounds`
//!   exist to catch before any pass runs.)

mod fixtures;

use proptest::prelude::*;
use spire_repro::difftest::{generate, seed_bytes, GenConfig};
use spire_repro::qcirc::sim::{BasisKey, KeyedSparseState, SparseState, SparseState256};
use spire_repro::spire::{check_compiled, OptConfig};

/// Every nonzero-amplitude basis state has zeros across `reg`. Generic
/// over the key width: the extraction goes through [`BasisKey::extract`],
/// so the same check serves the `u64`-keyed and 256-bit-keyed backends.
fn region_measures_zero<K: BasisKey>(state: &KeyedSparseState<K>, offset: u32, width: u32) -> bool {
    let mut at = offset;
    let end = offset + width;
    while at < end {
        let chunk = (end - at).min(64);
        if state.iter().any(|(key, _)| key.extract(at, chunk) != 0) {
            return false;
        }
        at += chunk;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// clean verdict ⇒ ancillae measure 0: the analyzer's "every scratch
    /// qubit returns to |0⟩" claim, checked against the sparse backend on
    /// generated programs under both the baseline and full Spire
    /// configurations.
    #[test]
    fn clean_programs_return_their_ancillae_to_zero(seed in any::<u64>(), bits in any::<u64>()) {
        let program = generate(&seed_bytes(seed, 96), &GenConfig::small());
        for opt in [OptConfig::none(), OptConfig::spire()] {
            let compiled = program.compile(opt);
            if compiled.layout.total_qubits > 64 {
                continue; // beyond the sparse key space; nothing to compare
            }
            // Clean = no error-severity findings. Warnings are allowed:
            // at small word widths the compiler's conjugation templates
            // legitimately emit provably-dead reads of transiently-zero
            // ancillae, which the analyzer reports as warnings.
            let report = check_compiled(&compiled, "generated");
            prop_assert!(
                report.is_clean(),
                "generated program (seed {seed}) not clean under {}: {:?}",
                opt.label(),
                report.diagnostics
            );
            let machine = program.run::<SparseState>(&compiled, bits);
            let scratch = compiled.layout.scratch;
            prop_assert!(
                region_measures_zero(machine.state(), scratch.offset, scratch.width),
                "scratch region nonzero after a clean-verified run (seed {seed}, {})",
                opt.label()
            );
        }
    }
}

/// The wide-key lift of the soundness property: clean-verified programs
/// whose layouts land past the 64-bit key space still return every
/// scratch ancilla to zero, checked on the 256-bit-keyed sparse backend.
#[test]
fn clean_wide_programs_return_their_ancillae_to_zero() {
    let mut tested = 0;
    for seed in 0..400u64 {
        if tested == 3 {
            break;
        }
        let program = generate(&seed_bytes(seed, 96), &GenConfig::huge());
        let compiled = program.compile(OptConfig::spire());
        let total = compiled.layout.total_qubits;
        if !(100..=256).contains(&total) {
            continue;
        }
        let report = check_compiled(&compiled, "generated");
        assert!(
            report.is_clean(),
            "generated wide program (seed {seed}) not clean: {:?}",
            report.diagnostics
        );
        tested += 1;
        let machine = program.run::<SparseState256>(&compiled, 0xACE1_1234_5678_9ABC);
        let scratch = compiled.layout.scratch;
        assert!(
            region_measures_zero(machine.state(), scratch.offset, scratch.width),
            "scratch region nonzero after a clean-verified wide run \
             (seed {seed}, {total} qubits)"
        );
    }
    assert_eq!(
        tested, 3,
        "seed budget found only {tested}/3 wide programs to verify"
    );
}

/// The leaked-ancilla fixture really leaks: from the all-zeros input the
/// ancilla measures 1 at the end of the circuit.
#[test]
fn leaked_ancilla_measures_nonzero() {
    let fixture = fixtures::leaked_ancilla();
    let mut state = SparseState::basis(fixture.circuit.num_qubits(), 0).unwrap();
    state.run(&fixture.circuit).unwrap();
    let (ancilla, _) = fixture.ancillas.ancillas[0];
    assert!(
        !region_measures_zero(&state, ancilla, 1),
        "the fixture's ancilla should measure 1"
    );
}

/// The use-after-uncompute fixture computes the wrong answer: the stale
/// control is |0⟩, so the dependent CNOT never fires — while the intended
/// circuit (same gates, read *before* the uncompute) sets the output.
#[test]
fn use_after_uncompute_computes_the_wrong_output() {
    use spire_repro::qcirc::{Circuit, Gate};

    let fixture = fixtures::use_after_uncompute();
    let mut buggy = SparseState::basis(fixture.circuit.num_qubits(), 0).unwrap();
    buggy.run(&fixture.circuit).unwrap();

    let mut intended = Circuit::new(4);
    intended.push(Gate::x(0));
    intended.push(Gate::x(1));
    intended.push(Gate::toffoli(0, 1, 2));
    intended.push(Gate::cnot(2, 3)); // read while the ancilla is live
    intended.push(Gate::toffoli(0, 1, 2));
    let mut correct = SparseState::basis(4, 0).unwrap();
    correct.run(&intended).unwrap();

    // Both runs are classical; compare the single basis state each holds.
    let buggy_key = buggy.iter().next().unwrap().0;
    let correct_key = correct.iter().next().unwrap().0;
    assert_eq!((correct_key >> 3) & 1, 1, "the intended output fires");
    assert_eq!((buggy_key >> 3) & 1, 0, "the stale read never fires");
    // And in both, the ancilla itself was restored — the *output* is what
    // the discipline bug silently corrupted.
    assert_eq!((buggy_key >> 2) & 1, 0);
    assert_eq!((correct_key >> 2) & 1, 0);
}

/// The out-of-range fixture cannot even execute at the width the layout
/// declared: the simulator rejects the gate the static sweep flags.
#[test]
fn out_of_range_qubit_cannot_execute_at_declared_width() {
    let fixture = fixtures::qubit_out_of_range();
    let width = fixture.width.expect("fixture declares a layout width");
    let mut state = SparseState::basis(width, 0).unwrap();
    assert!(
        state.run(&fixture.circuit).is_err(),
        "running past the declared width must fail"
    );
}
