//! Every negative fixture is caught statically, with its stable code.
//!
//! The corpus lives in `tests/fixtures/` — one fixture per defect class
//! (control/target overlap, out-of-range qubit, corrupted footprint
//! mask, corrupted operand arena, leaked ancilla, use-after-uncompute,
//! T-bound violation). A fixture slipping past the analyses, or being
//! reported under a different code, is a regression in the verifier's
//! contract: the codes are API.

mod fixtures;

use spire_repro::spire_verify::{
    bound_violations, check_ancillas, check_circuit, codes, Diagnostic, Severity,
};

/// Run the circuit-level analyses the way `spire check` does.
fn diagnose(fixture: &fixtures::Fixture) -> Vec<Diagnostic> {
    let mut diagnostics = check_circuit(&fixture.circuit, fixture.width);
    diagnostics.extend(check_ancillas(&fixture.circuit, &fixture.ancillas));
    diagnostics
}

#[test]
fn every_circuit_fixture_is_caught_under_its_code() {
    for fixture in fixtures::circuit_fixtures() {
        let diagnostics = diagnose(&fixture);
        let caught = diagnostics
            .iter()
            .find(|d| d.code == fixture.code)
            .unwrap_or_else(|| {
                panic!(
                    "fixture `{}` not caught: expected {}, got {:?}",
                    fixture.name, fixture.code, diagnostics
                )
            });
        assert_eq!(
            caught.severity,
            Severity::Error,
            "fixture `{}` must be an error, not a warning",
            fixture.name
        );
        assert!(
            codes::ALL.contains(&fixture.code),
            "fixture `{}` expects a code outside the stable namespace",
            fixture.name
        );
    }
}

#[test]
fn fixture_codes_cover_distinct_defect_classes() {
    let fixture_codes: Vec<&str> = fixtures::circuit_fixtures()
        .iter()
        .map(|f| f.code)
        .collect();
    let distinct: std::collections::BTreeSet<&str> = fixture_codes.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        fixture_codes.len(),
        "each fixture must exercise its own defect class"
    );
    assert!(distinct.len() >= 6, "the corpus must cover >= 6 classes");
}

#[test]
fn bound_violation_fixture_is_caught() {
    let row = fixtures::bound_violation_row();
    assert!(!row.holds());
    let diagnostics = bound_violations(&[row]);
    assert_eq!(diagnostics.len(), 1);
    assert_eq!(diagnostics[0].code, codes::T_BOUND_VIOLATION);
    assert_eq!(diagnostics[0].severity, Severity::Error);
}

#[test]
fn fixtures_fail_only_for_their_own_reason() {
    // The semantic fixtures must be structurally well-formed (their only
    // defect is the discipline bug), and the structural fixtures must
    // carry no ancilla findings — each fixture isolates one class.
    for fixture in fixtures::circuit_fixtures() {
        let structural = check_circuit(&fixture.circuit, fixture.width);
        let semantic = check_ancillas(&fixture.circuit, &fixture.ancillas);
        match fixture.name {
            "leaked-ancilla" | "use-after-uncompute" => {
                assert!(
                    structural.is_empty(),
                    "`{}` should be structurally clean: {structural:?}",
                    fixture.name
                );
                assert!(!semantic.is_empty());
            }
            _ => {
                assert!(
                    semantic.is_empty(),
                    "`{}` should have no ancilla findings: {semantic:?}",
                    fixture.name
                );
                assert!(!structural.is_empty());
            }
        }
    }
}
