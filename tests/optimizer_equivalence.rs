//! Differential tests pinning the footprint-indexed optimizer rewrite to
//! the pre-refactor behavior, gate for gate.
//!
//! Two obligations from the refactor:
//!
//! 1. the footprint-mask commutation kernel ([`qopt::commutes_views`])
//!    decides exactly the syntactic relation of [`qopt::commutes`] on
//!    arbitrary gate pairs — including registers wider than 64 qubits,
//!    where the mask folds and must fall back to exact operand checks;
//! 2. every rewritten pass (windowed cancellation, its fixpoint, phase
//!    folding, and the seven fixed-strategy optimizer compositions)
//!    produces a circuit identical to the pre-refactor reference
//!    implementation, which is kept here verbatim as test-only code,
//!    running on materialized `Vec<Gate>` lists exactly as the old
//!    `qopt` did.
//!
//! Random programs come from the shared [`spire_repro::difftest`]
//! generator, so the circuits exercised are real compiler output
//! (conjugation structure, deep control sets, Hadamard statements), not
//! just synthetic gate soup.

use proptest::prelude::*;
use qcirc::decompose::{mcx_to_toffoli, toffoli_to_clifford_t};
use qcirc::{Circuit, Footprint, Gate, Qubit};
use qopt::{commutes, commutes_views};
use spire_repro::difftest::{generate, seed_bytes, GenConfig};
use spire_repro::{qcirc, qopt};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Reference implementations (pre-refactor `qopt`, kept test-only).
// ---------------------------------------------------------------------

fn reference_cancel_with_window(circuit: &Circuit, window: usize) -> Circuit {
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());
    for gate in circuit.to_gates() {
        let mut cancelled = false;
        let mut steps = 0usize;
        // Walk back over commuting gates looking for the adjoint.
        let mut i = out.len();
        while i > 0 && steps <= window {
            let candidate = &out[i - 1];
            if *candidate == gate.adjoint() {
                out.remove(i - 1);
                cancelled = true;
                break;
            }
            if !commutes(candidate, &gate) {
                break;
            }
            i -= 1;
            steps += 1;
        }
        if !cancelled {
            out.push(gate);
        }
    }
    let mut result = Circuit::new(circuit.num_qubits());
    result.extend(out);
    result
}

fn reference_cancel_fixpoint(circuit: &Circuit, window: usize) -> Circuit {
    let mut current = reference_cancel_with_window(circuit, window);
    loop {
        let next = reference_cancel_with_window(&current, window);
        if next.len() == current.len() {
            return next;
        }
        current = next;
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RefParity {
    labels: Vec<u32>,
    constant: bool,
}

impl RefParity {
    fn fresh(label: u32) -> Self {
        RefParity {
            labels: vec![label],
            constant: false,
        }
    }

    fn xor_with(&mut self, other: &RefParity) {
        let mut merged = Vec::with_capacity(self.labels.len() + other.labels.len());
        let (mut i, mut j) = (0, 0);
        while i < self.labels.len() && j < other.labels.len() {
            match self.labels[i].cmp(&other.labels[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.labels[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.labels[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.labels[i..]);
        merged.extend_from_slice(&other.labels[j..]);
        self.labels = merged;
        self.constant ^= other.constant;
    }
}

#[derive(Debug)]
enum RefSlot {
    Gate(Gate),
    Anchor(Vec<u32>),
}

#[derive(Debug)]
struct RefTerm {
    amount: i32,
    qubit: Qubit,
    anchor_constant: bool,
}

fn reference_phase_fold(circuit: &Circuit) -> Circuit {
    let mut parities: HashMap<Qubit, RefParity> = HashMap::new();
    let mut next_label = 0u32;
    let fresh = |parities: &mut HashMap<Qubit, RefParity>, q: Qubit, next_label: &mut u32| {
        let label = *next_label;
        *next_label += 1;
        parities.insert(q, RefParity::fresh(label));
    };
    for q in 0..circuit.num_qubits() {
        fresh(&mut parities, q, &mut next_label);
    }

    let mut slots: Vec<RefSlot> = Vec::with_capacity(circuit.len());
    let mut terms: HashMap<Vec<u32>, RefTerm> = HashMap::new();

    for gate in circuit.to_gates() {
        match &gate {
            Gate::Mcx { controls, target } if controls.is_empty() => {
                parities.get_mut(target).expect("initialized").constant ^= true;
                slots.push(RefSlot::Gate(gate.clone()));
            }
            Gate::Mcx { controls, target } if controls.len() == 1 => {
                let source = parities[&controls[0]].clone();
                parities
                    .get_mut(target)
                    .expect("initialized")
                    .xor_with(&source);
                slots.push(RefSlot::Gate(gate.clone()));
            }
            Gate::Mcx { target, .. } => {
                fresh(&mut parities, *target, &mut next_label);
                slots.push(RefSlot::Gate(gate.clone()));
            }
            Gate::Mch { target, .. } => {
                fresh(&mut parities, *target, &mut next_label);
                slots.push(RefSlot::Gate(gate.clone()));
            }
            Gate::T(q) | Gate::Tdg(q) | Gate::S(q) | Gate::Sdg(q) | Gate::Z(q) => {
                let amount: i32 = match gate {
                    Gate::T(_) => 1,
                    Gate::S(_) => 2,
                    Gate::Z(_) => 4,
                    Gate::Sdg(_) => 6,
                    Gate::Tdg(_) => 7,
                    _ => unreachable!(),
                };
                let parity = parities[q].clone();
                let signed = if parity.constant { -amount } else { amount };
                let term = terms.entry(parity.labels.clone()).or_insert_with(|| {
                    slots.push(RefSlot::Anchor(parity.labels.clone()));
                    RefTerm {
                        amount: 0,
                        qubit: *q,
                        anchor_constant: parity.constant,
                    }
                });
                term.amount = (term.amount + signed).rem_euclid(8);
            }
        }
    }

    let mut out = Circuit::new(circuit.num_qubits());
    for slot in slots {
        match slot {
            RefSlot::Gate(g) => out.push(g),
            RefSlot::Anchor(key) => {
                let term = &terms[&key];
                let physical = if term.anchor_constant {
                    (-term.amount).rem_euclid(8)
                } else {
                    term.amount.rem_euclid(8)
                };
                emit_rotation(physical as u8, term.qubit, &mut out);
            }
        }
    }
    out
}

fn emit_rotation(amount: u8, q: Qubit, out: &mut Circuit) {
    match amount % 8 {
        0 => {}
        1 => out.push(Gate::T(q)),
        2 => out.push(Gate::S(q)),
        3 => {
            out.push(Gate::S(q));
            out.push(Gate::T(q));
        }
        4 => out.push(Gate::Z(q)),
        5 => {
            out.push(Gate::Z(q));
            out.push(Gate::T(q));
        }
        6 => out.push(Gate::Sdg(q)),
        7 => out.push(Gate::Tdg(q)),
        _ => unreachable!(),
    }
}

fn reference_decompose(circuit: &Circuit) -> Circuit {
    toffoli_to_clifford_t(&mcx_to_toffoli(circuit)).expect("arity <= 2 after mcx_to_toffoli")
}

/// The pre-refactor fixed-strategy optimizer compositions, by name (the
/// exact pass orders of `qopt::registry`).
fn reference_optimize(name: &str, circuit: &Circuit) -> Circuit {
    match name {
        "adjacent-cancel" => reference_cancel_fixpoint(&reference_decompose(circuit), 1),
        "peephole" => reference_cancel_fixpoint(&reference_decompose(circuit), 4),
        "phase-fold" => {
            reference_cancel_fixpoint(&reference_phase_fold(&reference_decompose(circuit)), 2)
        }
        "zx-graphlike" => {
            let c = reference_cancel_fixpoint(&reference_decompose(circuit), 2);
            reference_cancel_fixpoint(&reference_phase_fold(&c), 2)
        }
        "feynman-tocliffordt" => {
            let mut current = reference_decompose(circuit);
            loop {
                let next = reference_cancel_fixpoint(&reference_phase_fold(&current), 16);
                if next.len() >= current.len() {
                    return current;
                }
                current = next;
            }
        }
        "feynman-mctexpand" => {
            let toffoli_level = reference_cancel_fixpoint(&mcx_to_toffoli(circuit), 64);
            let clifford_t = toffoli_to_clifford_t(&toffoli_level).expect("arity <= 2");
            reference_cancel_fixpoint(&reference_phase_fold(&clifford_t), 16)
        }
        "global-resynth" => {
            let toffoli_level = reference_cancel_fixpoint(&mcx_to_toffoli(circuit), usize::MAX);
            let mut current = toffoli_to_clifford_t(&toffoli_level).expect("arity <= 2");
            loop {
                let next = reference_cancel_fixpoint(&reference_phase_fold(&current), usize::MAX);
                if next.len() >= current.len() {
                    return current;
                }
                current = next;
            }
        }
        other => panic!("unknown optimizer {other}"),
    }
}

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

/// A random gate over a register wide enough to exercise mask folding
/// (qubits up to 200 → footprints collide mod 64).
fn arb_gate() -> impl Strategy<Value = Gate> {
    let qubit = 0u32..200;
    prop_oneof![
        qubit.clone().prop_map(Gate::x),
        qubit.clone().prop_map(Gate::h),
        qubit.clone().prop_map(Gate::T),
        qubit.clone().prop_map(Gate::Tdg),
        qubit.clone().prop_map(Gate::S),
        qubit.clone().prop_map(Gate::Sdg),
        qubit.clone().prop_map(Gate::Z),
        (qubit.clone(), qubit.clone())
            .prop_filter("distinct", |(c, t)| c != t)
            .prop_map(|(c, t)| Gate::cnot(c, t)),
        (qubit.clone(), qubit.clone(), qubit.clone())
            .prop_filter("distinct", |(a, b, t)| a != b && a != t && b != t)
            .prop_map(|(a, b, t)| Gate::toffoli(a, b, t)),
        proptest::collection::vec(qubit.clone(), 3..=5)
            .prop_filter("distinct operands", |qs| {
                let mut sorted = qs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() == qs.len()
            })
            .prop_map(|mut qs| {
                let target = qs.pop().expect("nonempty");
                Gate::mcx(qs, target)
            }),
        (qubit.clone(), qubit)
            .prop_filter("distinct", |(c, t)| c != t)
            .prop_map(|(c, t)| Gate::ch(c, t)),
    ]
}

fn compiled_circuit(seed: u64) -> Circuit {
    let program = generate(&seed_bytes(seed, 96), &GenConfig::wide_quantum());
    program
        .compile(spire_repro::spire::OptConfig::none())
        .emit()
}

/// Deterministic pseudo-random gate soup (no external RNG): denser
/// overlap patterns than compiled programs produce, over registers both
/// below and above the 64-qubit mask-folding boundary.
fn pseudo_random_circuit(seed: u64, len: usize, qubits: u32) -> Circuit {
    let mut state = seed | 1;
    let mut next = |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    let mut gates = Vec::with_capacity(len);
    for _ in 0..len {
        let q = qubits as u64;
        let gate = match next(8) {
            0 => Gate::x(next(q) as u32),
            1 => Gate::h(next(q) as u32),
            2 => Gate::T(next(q) as u32),
            3 => Gate::Tdg(next(q) as u32),
            4 | 5 => {
                let c = next(q) as u32;
                let t = next(q) as u32;
                if c == t {
                    Gate::x(t)
                } else {
                    Gate::cnot(c, t)
                }
            }
            _ => {
                let a = next(q) as u32;
                let b = next(q) as u32;
                let t = next(q) as u32;
                if a == b || a == t || b == t {
                    Gate::S(t)
                } else {
                    Gate::toffoli(a, b, t)
                }
            }
        };
        gates.push(gate);
    }
    Circuit::from_gates(gates)
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The footprint-mask kernel agrees with the syntactic rules on
    /// random gate pairs (both orders — the relation is symmetric but
    /// the implementations branch asymmetrically).
    #[test]
    fn mask_commutes_agrees_with_syntactic(a in arb_gate(), b in arb_gate()) {
        let (va, vb) = (a.as_view(), b.as_view());
        let (fa, fb) = (Footprint::of_view(&va), Footprint::of_view(&vb));
        prop_assert_eq!(
            commutes_views(&va, fa, &vb, fb),
            commutes(&a, &b),
            "kernel diverges on {} vs {}", a, b
        );
        prop_assert_eq!(
            commutes_views(&vb, fb, &va, fa),
            commutes(&b, &a),
            "kernel diverges on {} vs {}", b, a
        );
    }

    /// Windowed cancellation and its fixpoint are gate-for-gate identical
    /// to the pre-refactor implementation on real compiled circuits.
    #[test]
    fn cancel_matches_reference_on_compiled_programs(
        seed in 0u64..5000,
        window in prop_oneof![Just(0usize), Just(1), Just(4), Just(16), Just(64), Just(usize::MAX)],
    ) {
        let circuit = mcx_to_toffoli(&compiled_circuit(seed));
        let pass = qopt::cancel_with_window(&circuit, window);
        prop_assert_eq!(&pass, &reference_cancel_with_window(&circuit, window));
        let fixpoint = qopt::cancel_fixpoint(&circuit, window);
        prop_assert_eq!(&fixpoint, &reference_cancel_fixpoint(&circuit, window));
    }

    /// Phase folding is gate-for-gate identical to the pre-refactor
    /// implementation on decomposed compiled circuits.
    #[test]
    fn phase_fold_matches_reference_on_compiled_programs(seed in 0u64..5000) {
        let circuit = reference_decompose(&compiled_circuit(seed));
        prop_assert_eq!(&qopt::phase_fold(&circuit), &reference_phase_fold(&circuit));
    }

    /// Same obligations on dense gate soup (heavier qubit overlap than
    /// compiled circuits, and registers straddling the mask fold).
    #[test]
    fn passes_match_reference_on_gate_soup(
        seed in any::<u64>(),
        qubits in prop_oneof![Just(3u32), Just(6), Just(80)],
        window in prop_oneof![Just(0usize), Just(1), Just(4), Just(16), Just(64), Just(usize::MAX)],
    ) {
        let c = pseudo_random_circuit(seed, 120, qubits);
        prop_assert_eq!(
            &qopt::cancel_with_window(&c, window),
            &reference_cancel_with_window(&c, window)
        );
        prop_assert_eq!(
            &qopt::cancel_fixpoint(&c, window),
            &reference_cancel_fixpoint(&c, window)
        );
        prop_assert_eq!(&qopt::phase_fold(&c), &reference_phase_fold(&c));
    }
}

proptest! {
    // Full pipelines run every pass to fixpoints; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every fixed-strategy optimizer composition produces a circuit
    /// identical to the pre-refactor pipeline on compiled programs.
    #[test]
    fn registry_matches_reference_on_compiled_programs(seed in 0u64..5000) {
        let circuit = compiled_circuit(seed);
        for optimizer in qopt::registry() {
            let fast = optimizer.optimize(&circuit);
            let reference = reference_optimize(optimizer.name(), &circuit);
            prop_assert_eq!(
                &fast, &reference,
                "{} diverges from the pre-refactor pipeline", optimizer.name()
            );
        }
    }
}
