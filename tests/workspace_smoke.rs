//! Workspace smoke test: the facade re-exports resolve, and the paper's
//! running example (Figure 2's conditional counter) compiles end-to-end
//! through every layer at a small recursion depth.

use spire_repro::spire::{compile_source, CompileOptions};
use spire_repro::tower::WordConfig;

/// The paper's running example: a recursive counter under a quantum
/// conditional, the shape whose naive compilation is asymptotically
/// inefficient (Section 2).
const RUNNING_EXAMPLE: &str = r#"
    fun count[n](acc: uint, flag: bool) -> uint {
        if flag {
            let r <- acc + 1;
            let out <- count[n-1](r, flag);
        } else {
            let out <- acc;
        }
        return out;
    }
"#;

/// Every facade re-export is reachable under its documented path.
#[test]
fn facade_reexports_resolve() {
    // tower: front end types and entry points.
    let program = spire_repro::tower::parse(RUNNING_EXAMPLE).expect("parses");
    assert_eq!(program.funs.len(), 1);
    let _ = spire_repro::tower::WordConfig::paper_default();
    let _ = spire_repro::tower::Symbol::new("x");
    let _ = spire_repro::tower::NameGen::new();

    // spire: compiler options and cost model entry points.
    let _ = spire_repro::spire::CompileOptions::baseline();
    let _ = spire_repro::spire::CompileOptions::spire();
    let _ = spire_repro::spire::OptConfig::spire();

    // qcirc: circuit substrate.
    let mut circuit = spire_repro::qcirc::Circuit::new(2);
    circuit.push(spire_repro::qcirc::Gate::cnot(0, 1));
    assert_eq!(circuit.len(), 1);

    // qopt: baseline optimizer analogues implement the shared trait.
    use spire_repro::qopt::CircuitOptimizer;
    let opt = spire_repro::qopt::AdjacentCancel;
    assert!(!opt.name().is_empty());

    // bench_suite: the paper's benchmark programs are present.
    assert!(!spire_repro::bench_suite::programs::all_benchmarks().is_empty());
}

/// The running example compiles under both strategies at depth 3, and
/// Spire's optimizations do not regress T-complexity.
#[test]
fn running_example_compiles_end_to_end() {
    let config = WordConfig::paper_default();
    let baseline = compile_source(
        RUNNING_EXAMPLE,
        "count",
        3,
        config,
        &CompileOptions::baseline(),
    )
    .expect("baseline compiles");
    let spire = compile_source(
        RUNNING_EXAMPLE,
        "count",
        3,
        config,
        &CompileOptions::spire(),
    )
    .expect("spire compiles");

    assert!(baseline.t_complexity() > 0, "counter costs T gates");
    assert!(
        spire.t_complexity() <= baseline.t_complexity(),
        "optimization regressed T: {} -> {}",
        baseline.t_complexity(),
        spire.t_complexity()
    );

    // The emitted circuit is real: it has gates and a consistent exact
    // cost model (Theorem 5.1: histogram == counted emission).
    assert!(!spire.emit().is_empty());
    assert_eq!(spire.histogram(), spire.counted_histogram());
}

/// The front end alone runs parse → inline → lower → typecheck and the
/// core IR pretty-printer produces non-trivial output.
#[test]
fn front_end_and_pretty_smoke() {
    let unit =
        spire_repro::tower::front_end(RUNNING_EXAMPLE, "count", 2, WordConfig::paper_default())
            .expect("front end succeeds");
    assert_eq!(unit.inputs.len(), 2);
    let printed = spire_repro::tower::pretty(&unit.core);
    assert!(printed.contains("if"), "lowered counter keeps its branch");
}
