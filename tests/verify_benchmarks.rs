//! The static verifier over the full paper benchmark suite.
//!
//! Acceptance gate for the analyses: all 12 benchmarks must verify with
//! zero diagnostics under both compilation strategies, and every compiled
//! T-count must land inside its statically predicted interval.

use spire::{check_source, CompileOptions};
use spire_repro::bench_suite::programs::all_benchmarks;
use spire_repro::spire;
use spire_repro::tower::WordConfig;

fn bench_depth(constant: bool) -> i64 {
    if constant {
        0
    } else {
        3
    }
}

#[test]
fn all_benchmarks_verify_clean() {
    for options in [CompileOptions::baseline(), CompileOptions::spire()] {
        for bench in all_benchmarks() {
            let report = check_source(
                &bench.source,
                bench.entry,
                bench_depth(bench.constant),
                WordConfig::paper_default(),
                &options,
            )
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", bench.name));
            assert!(
                report.diagnostics.is_empty(),
                "{}: unexpected diagnostics: {:#?}",
                bench.name,
                report.diagnostics
            );
            assert!(
                !report.functions.is_empty(),
                "{}: missing T-bound rows",
                bench.name
            );
            for row in &report.functions {
                assert!(
                    row.holds(),
                    "{}: function `{}` compiled to {} T gates, outside [{}, {}]",
                    bench.name,
                    row.name,
                    row.actual,
                    row.min,
                    row.max
                );
            }
        }
    }
}
