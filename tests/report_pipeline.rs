//! End-to-end tests of the artifact pipeline (`bench_suite::runner`):
//! the full artifact set regenerates on multiple worker threads, and a
//! second run in the same process is served from the compile cache and
//! completes measurably faster.
//!
//! The two runs share `spire::CompileCache::global()`, so they live in
//! one `#[test]` to keep the hit/miss accounting deterministic (other
//! test binaries have their own process and their own global cache).

use std::sync::atomic::{AtomicUsize, Ordering};

use bench_suite::report::{normalize_timings, Artifact};
use bench_suite::runner::{artifact_specs, run_all, MatrixParams, RunnerEvent};

#[test]
fn pipeline_is_parallel_cached_and_complete() {
    let params = MatrixParams::quick();
    let threads = 4;
    let events = AtomicUsize::new(0);
    let on_event = |event: RunnerEvent| {
        if let RunnerEvent::ArtifactDone { .. } = event {
            events.fetch_add(1, Ordering::Relaxed);
        }
    };

    let first = run_all(&params, threads, &on_event);
    let second = run_all(&params, threads, &on_event);

    // --- Completeness: every spec produced its artifact, in order. ---
    let specs = artifact_specs();
    assert_eq!(first.artifacts.len(), specs.len());
    assert_eq!(events.load(Ordering::Relaxed), 2 * specs.len());
    for (result, spec) in first.artifacts.iter().zip(&specs) {
        assert_eq!(result.artifact.id(), spec.id);
        assert!(
            !result.artifact.render().is_empty(),
            "{} rendered empty",
            spec.id
        );
        // Markdown and JSON serializations carry the artifact id.
        assert!(result.artifact.to_markdown().contains(spec.id));
        assert!(result.artifact.to_json().contains(spec.id));
    }

    // --- Parallelism: the matrix ran on more than one worker. ---
    assert_eq!(first.threads, threads);
    assert!(first.warm_jobs > 50, "warm matrix: {}", first.warm_jobs);
    assert!(
        first.parallelism.workers_engaged > 1,
        "expected >1 engaged worker, got {:?}",
        first.parallelism
    );

    // --- Caching: the first run compiles, the second run hits. ---
    assert!(
        first.cache.misses >= first.warm_jobs as u64,
        "first run should have compiled the warm matrix: {:?}",
        first.cache
    );
    assert_eq!(
        second.cache.misses, 0,
        "second run must be fully cached: {:?}",
        second.cache
    );
    assert!(second.cache.hits > 0, "second run saw no cache activity");

    // --- Speed: cache hits make the second run measurably faster. ---
    // Compilation dominates the cacheable work; the only recomputation in
    // the second run is the (uncached by design) Table 2 timing
    // experiment and the circuit-optimizer passes. Require a 1.5x
    // improvement — the observed ratio is far larger, but timing
    // assertions should leave slack for noisy CI machines.
    let speedup = first.wall.as_secs_f64() / second.wall.as_secs_f64().max(1e-9);
    assert!(
        speedup > 1.5,
        "second run not faster: first {:.3}s, second {:.3}s (speedup {speedup:.2}x)",
        first.wall.as_secs_f64(),
        second.wall.as_secs_f64()
    );

    // --- Determinism: both runs produced identical artifacts (modulo
    // wall-clock timing cells). ---
    for (a, b) in first.artifacts.iter().zip(&second.artifacts) {
        assert_eq!(
            normalize_timings(&a.artifact.to_markdown()),
            normalize_timings(&b.artifact.to_markdown()),
            "artifact {} differs between runs",
            a.spec.id
        );
    }

    // --- Shape spot-checks on the quick matrix: the paper's headline
    // results hold at reduced depth too. ---
    let by_id = |id: &str| {
        first
            .artifacts
            .iter()
            .find(|r| r.spec.id == id)
            .unwrap_or_else(|| panic!("missing artifact {id}"))
    };
    match &by_id("fig2").artifact {
        Artifact::Figure(fig) => {
            let t = &fig.series[0];
            let mcx = &fig.series[1];
            assert_eq!(t.asymptotic.as_deref(), Some("O(n^2)"), "{:?}", t.fit);
            assert_eq!(mcx.asymptotic.as_deref(), Some("O(n)"), "{:?}", mcx.fit);
        }
        other => panic!("fig2 should be a figure, got {other:?}"),
    }
    match &by_id("table1").artifact {
        Artifact::Table(table) => {
            assert_eq!(table.rows.len(), 12, "one row per benchmark");
        }
        other => panic!("table1 should be a table, got {other:?}"),
    }
}
