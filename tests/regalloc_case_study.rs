//! Paper Appendix D / Figure 23: the register-allocation case study.
//!
//! Conditional narrowing moves an `if` into a do-block, after which an
//! aggressive register allocator that recycles on every un-assignment can
//! assign a variable different registers on different control paths — and
//! then "there is no correct way to complete this register allocation."
//! The conservative allocator (the paper's fix) keeps the variable's
//! register reserved and compiles a correct circuit.

use spire::{compile_unit, AllocPolicy, CompileOptions, Machine, OptConfig, SpireError};
use tower::{
    typecheck_with, CompilationUnit, CoreBinOp, CoreExpr, CoreStmt, CoreValue, NameGen, Strictness,
    Symbol, Type, TypeTable, WordConfig,
};

/// Figure 23c (the post-narrowing program):
/// ```text
/// with { let x <- 1; } do {
///     if c { let x -> 1; let y <- 2; let x <- y - 1; }
/// }
/// ```
/// (with `y` kept live so the recycled register stays occupied).
fn figure_23c() -> CoreStmt {
    let assign = |var: &str, expr: CoreExpr| CoreStmt::Assign {
        var: Symbol::new(var),
        expr,
    };
    CoreStmt::With {
        setup: Box::new(assign("x", CoreExpr::Value(CoreValue::UInt(1)))),
        body: Box::new(CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::seq(vec![
                CoreStmt::Unassign {
                    var: Symbol::new("x"),
                    expr: CoreExpr::Value(CoreValue::UInt(1)),
                },
                assign("y", CoreExpr::Value(CoreValue::UInt(2))),
                assign("one", CoreExpr::Value(CoreValue::UInt(1))),
                assign(
                    "x",
                    CoreExpr::Bin(CoreBinOp::Sub, Symbol::new("y"), Symbol::new("one")),
                ),
            ])),
        }),
    }
}

fn unit() -> CompilationUnit {
    let table = TypeTable::new(WordConfig::paper_default());
    let inputs = vec![(Symbol::new("c"), Type::Bool)];
    let stmt = figure_23c();
    let types = typecheck_with(&stmt, &inputs, &table, Strictness::Relaxed).unwrap();
    CompilationUnit {
        core: stmt,
        inputs,
        ret_var: Symbol::new("x"),
        table,
        types,
        names: NameGen::new(),
    }
}

#[test]
fn conservative_allocation_compiles_figure_23_correctly() {
    let compiled = compile_unit(
        &unit(),
        &CompileOptions {
            opt: OptConfig::none(),
            policy: AllocPolicy::Conservative,
        },
    )
    .expect("conservative allocation succeeds");
    // x and y must not share a register.
    let x = compiled.layout.reg(&Symbol::new("x")).unwrap();
    let y = compiled.layout.reg(&Symbol::new("y")).unwrap();
    assert_ne!(x.offset, y.offset);

    // Semantics: after the program, x == 1 on both control paths (when c,
    // it was un-assigned and re-assigned y-1 = 1, then the with-reversal
    // un-assigns 1 and the closing reverse re-establishes... run it).
    for c in [0u64, 1] {
        let mut machine = Machine::new(&compiled.layout);
        machine.set_var("c", c).unwrap();
        machine.run(&compiled.emit()).unwrap();
        // The with-reversal un-assigns x <- 1, so x ends at 0 when the
        // branch behaved correctly; any register confusion would leave
        // garbage behind.
        assert_eq!(machine.var("x").unwrap(), 0, "c={c}");
        assert_eq!(
            machine.var("y").unwrap(),
            if c == 1 { 2 } else { 0 },
            "c={c}"
        );
    }
}

#[test]
fn aggressive_allocation_fails_exactly_as_the_paper_describes() {
    let err = compile_unit(
        &unit(),
        &CompileOptions {
            opt: OptConfig::none(),
            policy: AllocPolicy::Aggressive,
        },
    )
    .expect_err("aggressive recycling cannot complete this allocation");
    assert!(
        matches!(err, SpireError::UnsoundAllocation { .. }),
        "expected the Figure 23 failure, got: {err}"
    );
}

#[test]
fn aggressive_allocation_is_fine_without_control_flow() {
    // The aggressive policy only fails on cross-path lifetimes; on
    // straight-line code it recycles safely.
    let stmt = CoreStmt::seq(vec![
        CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Value(CoreValue::UInt(1)),
        },
        CoreStmt::Unassign {
            var: Symbol::new("x"),
            expr: CoreExpr::Value(CoreValue::UInt(1)),
        },
        CoreStmt::Assign {
            var: Symbol::new("y"),
            expr: CoreExpr::Value(CoreValue::UInt(2)),
        },
    ]);
    let table = TypeTable::new(WordConfig::paper_default());
    let types = typecheck_with(&stmt, &[], &table, Strictness::Strict).unwrap();
    let unit = CompilationUnit {
        core: stmt,
        inputs: vec![],
        ret_var: Symbol::new("y"),
        table,
        types,
        names: NameGen::new(),
    };
    let compiled = compile_unit(
        &unit,
        &CompileOptions {
            opt: OptConfig::none(),
            policy: AllocPolicy::Aggressive,
        },
    )
    .expect("straight-line recycling is sound");
    let x = compiled.layout.reg(&Symbol::new("x")).unwrap();
    let y = compiled.layout.reg(&Symbol::new("y")).unwrap();
    assert_eq!(x.offset, y.offset, "y recycles x's register");
}
