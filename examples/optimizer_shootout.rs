//! Reproduce the paper's optimizer comparison (Section 8.3) interactively:
//! compile `length-simplified`, hand the circuit to every baseline
//! optimizer analogue, and print T-counts and running times side by side
//! with Spire's program-level result.
//!
//! Run with: `cargo run --release --example optimizer_shootout`

use std::time::Instant;

use spire_repro::bench_suite::programs::LENGTH_SIMPLE;
use spire_repro::qopt::{registry, CircuitOptimizer, SearchOpt};
use spire_repro::spire::{compile_source, CompileOptions};
use spire_repro::tower::WordConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depth = 8;
    let config = WordConfig::paper_default();
    let baseline = compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        depth,
        config,
        &CompileOptions::baseline(),
    )?;
    let circuit = baseline.emit();
    println!(
        "length-simplified at depth {depth}: {} T gates unoptimized\n",
        baseline.t_complexity()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "optimizer", "T", "reduction", "time"
    );

    let report = |name: &str, t: u64, seconds: f64| {
        let reduction =
            100.0 * (baseline.t_complexity() - t) as f64 / baseline.t_complexity() as f64;
        println!("{name:<22} {t:>10} {reduction:>11.1}% {seconds:>11.4}s");
    };

    for optimizer in registry() {
        let start = Instant::now();
        let optimized = optimizer.optimize(&circuit);
        let elapsed = start.elapsed().as_secs_f64();
        report(
            optimizer.name(),
            optimized.clifford_t_counts().t_count(),
            elapsed,
        );
    }
    for search in [SearchOpt::quartz(), SearchOpt::queso()] {
        let start = Instant::now();
        let optimized = search.optimize(&circuit);
        let elapsed = start.elapsed().as_secs_f64();
        report(
            search.name(),
            optimized.clifford_t_counts().t_count(),
            elapsed,
        );
    }

    // Spire's program-level route: optimize the *program*, then compile.
    let start = Instant::now();
    let spire = compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        depth,
        config,
        &CompileOptions::spire(),
    )?;
    let elapsed = start.elapsed().as_secs_f64();
    report("spire (program-level)", spire.t_complexity(), elapsed);
    Ok(())
}
