//! The workloads that motivate the paper: data-structure operations used
//! by quantum algorithms for search and optimization (Ambainis's element
//! distinctness, subset-sum sieves). This example builds a radix-tree set
//! and a linked list in the simulated qRAM, runs membership and position
//! queries through the full compiler, and reports what each query costs
//! under quantum error correction before and after Spire.
//!
//! Run with: `cargo run --example search_data_structures`

use spire_repro::bench_suite::programs;
use spire_repro::spire::{compile_source, CompileOptions, Machine};
use spire_repro::tower::WordConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WordConfig::paper_default();

    // --- Membership queries on a radix-tree set (paper Section 8.1) ----
    let contains_src = programs::contains_source();
    let contains = compile_source(
        &contains_src,
        "contains",
        4,
        config,
        &CompileOptions::spire(),
    )?;
    let contains_base = compile_source(
        &contains_src,
        "contains",
        4,
        config,
        &CompileOptions::baseline(),
    )?;

    let mut machine = Machine::new(&contains.layout);
    // Key strings are lists of 1/2 characters; the set stores "1".
    machine.write_cell(1, 1); // query key "1"
    machine.write_cell(2, 1); // stored copy of "1"
    machine.write_cell(3, 2); // query key "2"
    machine.write_cell(4, 2); // root node: stored = cell 2, no children

    machine.set_var("t", 4)?;
    machine.set_var("key", 1)?;
    machine.run(&contains.emit())?;
    println!("set = {{\"1\"}}");
    println!("  contains(\"1\") = {}", machine.var("out")? == 1);

    let mut machine = Machine::new(&contains.layout);
    machine.write_cell(1, 1);
    machine.write_cell(2, 1);
    machine.write_cell(3, 2);
    machine.write_cell(4, 2);
    machine.set_var("t", 4)?;
    machine.set_var("key", 3)?;
    machine.run(&contains.emit())?;
    println!("  contains(\"2\") = {}", machine.var("out")? == 1);

    println!(
        "  per-query T cost: {} unoptimized -> {} with Spire",
        contains_base.t_complexity(),
        contains.t_complexity()
    );

    // --- Position queries on a list (Grover-style oracle substrate) ----
    let find = compile_source(
        programs::FIND_POS,
        "find_pos",
        6,
        config,
        &CompileOptions::spire(),
    )?;
    let find_base = compile_source(
        programs::FIND_POS,
        "find_pos",
        6,
        config,
        &CompileOptions::baseline(),
    )?;
    let mut machine = Machine::new(&find.layout);
    let head = machine.build_list(&[42, 17, 99, 5]);
    machine.set_var("xs", head)?;
    machine.set_var("target", 99)?;
    machine.run(&find.emit())?;
    println!("list = [42, 17, 99, 5]");
    println!("  find_pos(99) = {}", machine.var("out")?);
    println!(
        "  per-query T cost: {} unoptimized -> {} with Spire",
        find_base.t_complexity(),
        find.t_complexity()
    );

    // The asymptotic story (paper Section 3.2): a Grover search making
    // O(sqrt(N)) queries of depth O(sqrt(N)) loses its advantage if each
    // query quietly costs a factor of depth more under error correction.
    println!();
    println!("Unoptimized, T-cost grows quadratically with structure depth;");
    println!("after Spire it matches the idealized (MCX) linear growth.");
    Ok(())
}
