//! Control flow in superposition, end to end: a Tower program applies a
//! Hadamard to a boolean and then branches on it with a quantum `if`. The
//! compiled Clifford+T circuit is executed on the state-vector simulator,
//! showing the output register in superposition — and showing what the
//! quantum `if` costs in T gates.
//!
//! Run with: `cargo run --example superposed_control_flow`

use spire_repro::qcirc::sim::StateVec;
use spire_repro::spire::{compile_source, CompileOptions};
use spire_repro::tower::{Symbol, WordConfig};

const COIN_WALK: &str = r#"
fun coin_walk(q: bool, v: uint) -> uint {
    had q;
    if q {
        let r <- v + 1;
    } else {
        let r <- v;
    }
    return r;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small registers keep the state vector tiny.
    let config = WordConfig {
        uint_bits: 3,
        ptr_bits: 2,
    };
    let compiled = compile_source(COIN_WALK, "coin_walk", 0, config, &CompileOptions::spire())?;
    let circuit = compiled.emit();
    println!(
        "coin_walk compiles to {} MCX-level gates over {} qubits ({} T after decomposition)",
        circuit.len(),
        circuit.num_qubits(),
        compiled.t_complexity()
    );

    // Prepare |q=0, v=5⟩ and run.
    let v_reg = compiled.layout.reg(&Symbol::new("v"))?;
    let q_reg = compiled.layout.reg(&Symbol::new("q"))?;
    let r_reg = compiled.layout.reg(&Symbol::new("r"))?;
    let mut state = StateVec::basis(circuit.num_qubits(), 5 << v_reg.offset)?;
    state.run(&circuit)?;

    // The walker took both branches: r is in superposition of 5 and 6,
    // entangled with the coin.
    println!("after one coin-controlled step from v = 5:");
    for (q, r) in [(0u64, 5u64), (1, 6)] {
        let index = (5 << v_reg.offset) | (q << q_reg.bit(0)) | (r << r_reg.offset);
        println!("  P(coin={q}, r={r}) = {:.3}", state.probability(index));
    }
    let p0 = state.probability((5 << v_reg.offset) | (5 << r_reg.offset));
    assert!((p0 - 0.5).abs() < 1e-9);
    Ok(())
}
