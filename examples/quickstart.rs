//! Quickstart: compile the paper's running example (`length`, Figure 1),
//! analyze its T-complexity with the cost model, optimize it with Spire,
//! and execute the compiled circuit on a simulated machine.
//!
//! Run with: `cargo run --example quickstart`

use spire_repro::spire::{compile_source, CompileOptions, Machine};
use spire_repro::tower::WordConfig;

const LENGTH: &str = r#"
type list = (uint, ptr<list>);

fun length[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let next <- temp.2;
        let r <- acc + 1;
    } do {
        let out <- length[n-1](next, r);
    }
    return out;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WordConfig::paper_default();

    // 1. Compile at recursion depth 8, without and with Spire's
    //    program-level optimizations.
    let baseline = compile_source(LENGTH, "length", 8, config, &CompileOptions::baseline())?;
    let optimized = compile_source(LENGTH, "length", 8, config, &CompileOptions::spire())?;

    // 2. The cost model (paper Section 5) prices both without building a
    //    single gate.
    println!("length at depth 8 under quantum error correction:");
    println!(
        "  unoptimized: {:>8} MCX gates, {:>8} T gates",
        baseline.mcx_complexity(),
        baseline.t_complexity()
    );
    println!(
        "  spire:       {:>8} MCX gates, {:>8} T gates  ({}% fewer T)",
        optimized.mcx_complexity(),
        optimized.t_complexity(),
        100 * (baseline.t_complexity() - optimized.t_complexity()) / baseline.t_complexity()
    );

    // 3. Execute the optimized circuit on a linked list [10, 20, 30].
    let mut machine = Machine::new(&optimized.layout);
    let head = machine.build_list(&[10, 20, 30]);
    machine.set_var("xs", head)?;
    machine.run(&optimized.emit())?;
    println!("  length([10, 20, 30]) = {}", machine.var("out")?);
    assert_eq!(machine.var("out")?, 3);
    Ok(())
}
