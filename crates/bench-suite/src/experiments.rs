//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each function reproduces one artifact (see `DESIGN.md`'s experiment
//! index). Absolute gate counts differ from the paper's — the reversible
//! arithmetic, qRAM scan, and controlled-Hadamard implementations are this
//! repository's own — but the *shape* results (asymptotic degrees, which
//! optimizers recover linearity, who is faster) are the reproduction
//! targets and are asserted by the integration tests.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qcirc::Circuit;
use qopt::{
    AdjacentCancel, CircuitOptimizer, CliffordTResynth, GlobalResynth, Peephole, PhaseFoldLight,
    SearchConfig, SearchOpt, ToffoliCancel, ZxGraphLike,
};
use spire::cost::{flattening_uncomputation_t, CostEnv};
use spire::{compile_source, compile_source_cached, CompileOptions, Compiled, OptConfig};
use tower::WordConfig;

use crate::programs::{all_benchmarks, Benchmark, LENGTH, LENGTH_SIMPLE};
use crate::report::{FigureReport, Series, TableReport};

/// Default depth range used by the paper (2..=10).
pub const DEPTHS: std::ops::RangeInclusive<i64> = 2..=10;

/// Compile a benchmark through the process-wide compile cache.
///
/// Every regenerator except the *timing* experiments goes through here:
/// the figures and tables sweep overlapping `(program, depth, config)`
/// matrices, so a full pipeline run (`bench-suite::runner`) compiles each
/// configuration exactly once no matter how many artifacts consume it.
fn compile(bench: &Benchmark, depth: i64, options: &CompileOptions) -> Arc<Compiled> {
    compile_source_cached(
        &bench.source,
        bench.entry,
        depth,
        WordConfig::paper_default(),
        options,
    )
    .unwrap_or_else(|e| panic!("compiling {} at depth {depth}: {e}", bench.name))
}

/// Cached compilation of an arbitrary source (see [`compile`]).
fn compile_src(source: &str, entry: &str, depth: i64, options: &CompileOptions) -> Arc<Compiled> {
    compile_source_cached(source, entry, depth, WordConfig::paper_default(), options)
        .unwrap_or_else(|e| panic!("compiling {entry} at depth {depth}: {e}"))
}

/// Uncached compilation, for experiments whose *artifact* is the compile
/// time itself (Table 2): a cache hit would report lookup time, not
/// compilation time.
fn compile_src_fresh(source: &str, entry: &str, depth: i64, options: &CompileOptions) -> Compiled {
    compile_source(source, entry, depth, WordConfig::paper_default(), options)
        .unwrap_or_else(|e| panic!("compiling {entry} at depth {depth}: {e}"))
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// T-count after a circuit optimizer, memoized process-wide.
///
/// The figure regenerators apply the same optimizers to the same emitted
/// circuits across overlapping sweeps (Figures 12, 15a/b, and 24 all
/// optimize `length`/`length-simplified` circuits over the same depth
/// range), and optimizer passes — not compilation — dominate the artifact
/// phase once the compile cache is warm. The memo key is the circuit's
/// [`Circuit::content_hash`] plus the optimizer name, so a repeated
/// `(circuit, optimizer)` pair costs a map lookup. The *timing*
/// experiments (Tables 2 and 5) never consult this memo: they time the
/// optimizer itself, so their passes must run fresh.
fn t_after(optimizer: &dyn CircuitOptimizer, circuit: &Circuit) -> u64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static MEMO: OnceLock<Mutex<HashMap<(u128, &'static str), u64>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (circuit.content_hash(), optimizer.name());
    if let Some(&t) = memo.lock().expect("t_after memo poisoned").get(&key) {
        return t;
    }
    let t = qopt::run_traced(optimizer, circuit)
        .clifford_t_counts()
        .t_count();
    memo.lock().expect("t_after memo poisoned").insert(key, t);
    t
}

/// Figure 2: T-complexity vs MCX-complexity of unoptimized `length`.
pub fn fig2(depths: impl Iterator<Item = i64>) -> FigureReport {
    let mut t = Vec::new();
    let mut mcx = Vec::new();
    for n in depths {
        let compiled = compile_src(LENGTH, "length", n, &CompileOptions::baseline());
        let hist = compiled.histogram();
        t.push((n, hist.t_complexity()));
        mcx.push((n, hist.mcx_complexity()));
    }
    FigureReport {
        id: "fig2",
        title: "gates in the circuit of length (unoptimized)".into(),
        var: "n",
        series: vec![
            Series::fitted("T-complexity", t, "n"),
            Series::fitted("MCX-complexity", mcx, "n"),
        ],
    }
}

/// Figures 12a and 12b: `length` after Spire, after circuit optimizers,
/// and after both, plus the ideal MCX-complexity.
pub fn fig12(depths: impl Iterator<Item = i64>) -> FigureReport {
    let mut original = Vec::new();
    let mut spire_only = Vec::new();
    let mut mct = Vec::new();
    let mut qiskit_like = Vec::new();
    let mut tocliffordt = Vec::new();
    let mut spire_mct = Vec::new();
    let mut ideal = Vec::new();
    for n in depths {
        let baseline = compile_src(LENGTH, "length", n, &CompileOptions::baseline());
        let optimized = compile_src(LENGTH, "length", n, &CompileOptions::spire());
        let baseline_circuit = baseline.emit();
        let optimized_circuit = optimized.emit();
        original.push((n, baseline.t_complexity()));
        spire_only.push((n, optimized.t_complexity()));
        mct.push((n, t_after(&ToffoliCancel, &baseline_circuit)));
        qiskit_like.push((n, t_after(&AdjacentCancel, &baseline_circuit)));
        tocliffordt.push((n, t_after(&CliffordTResynth, &baseline_circuit)));
        spire_mct.push((n, t_after(&ToffoliCancel, &optimized_circuit)));
        ideal.push((n, baseline.mcx_complexity()));
    }
    FigureReport {
        id: "fig12",
        title: "T-complexity of length: program-level vs circuit optimizers".into(),
        var: "n",
        series: vec![
            Series::fitted("original", original, "n"),
            Series::fitted("qiskit-like", qiskit_like, "n"),
            Series::fitted("feynman-tocliffordt", tocliffordt, "n"),
            Series::fitted("feynman-mctexpand", mct, "n"),
            Series::fitted("spire", spire_only, "n"),
            Series::fitted("spire+mctexpand", spire_mct, "n"),
            Series::fitted("ideal-mcx", ideal, "n"),
        ],
    }
}

/// Figure 15a: program-level optimizations on `length-simplified`,
/// individually and combined, with and without Feynman/QuiZX analogues.
pub fn fig15a(depths: impl Iterator<Item = i64>) -> FigureReport {
    let configs = [
        ("original", OptConfig::none()),
        ("cn-alone", OptConfig::narrowing_only()),
        ("cf-alone", OptConfig::flattening_only()),
        ("spire", OptConfig::spire()),
    ];
    let mut series: Vec<(String, Vec<(i64, u64)>)> = configs
        .iter()
        .map(|(label, _)| (label.to_string(), Vec::new()))
        .collect();
    series.push(("feynman-mctexpand".into(), Vec::new()));
    series.push(("quizx-like".into(), Vec::new()));
    series.push(("spire+mctexpand".into(), Vec::new()));
    for n in depths {
        for (i, (_, opt)) in configs.iter().enumerate() {
            let compiled = compile_src(
                LENGTH_SIMPLE,
                "length_simple",
                n,
                &CompileOptions::with_opt(*opt),
            );
            series[i].1.push((n, compiled.t_complexity()));
        }
        let baseline = compile_src(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            &CompileOptions::baseline(),
        )
        .emit();
        let spire_circ =
            compile_src(LENGTH_SIMPLE, "length_simple", n, &CompileOptions::spire()).emit();
        series[4].1.push((n, t_after(&ToffoliCancel, &baseline)));
        series[5].1.push((n, t_after(&GlobalResynth, &baseline)));
        series[6].1.push((n, t_after(&ToffoliCancel, &spire_circ)));
    }
    FigureReport {
        id: "fig15a",
        title: "length-simplified: program-level optimizations".into(),
        var: "n",
        series: series
            .into_iter()
            .map(|(label, points)| Series::fitted(label, points, "n"))
            .collect(),
    }
}

/// Figure 15b: `length-simplified` under all fixed-strategy circuit
/// optimizer analogues.
pub fn fig15b(depths: impl Iterator<Item = i64>) -> FigureReport {
    let optimizers: Vec<Box<dyn CircuitOptimizer>> = vec![
        Box::new(AdjacentCancel),
        Box::new(Peephole),
        Box::new(PhaseFoldLight),
        Box::new(ZxGraphLike),
        Box::new(CliffordTResynth),
        Box::new(ToffoliCancel),
        Box::new(GlobalResynth),
    ];
    let mut original = Vec::new();
    let mut per_opt: Vec<(String, Vec<(i64, u64)>)> = optimizers
        .iter()
        .map(|o| (o.name().to_string(), Vec::new()))
        .collect();
    for n in depths {
        let baseline = compile_src(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            &CompileOptions::baseline(),
        );
        original.push((n, baseline.t_complexity()));
        let circuit = baseline.emit();
        for (i, optimizer) in optimizers.iter().enumerate() {
            per_opt[i]
                .1
                .push((n, t_after(optimizer.as_ref(), &circuit)));
        }
    }
    let mut series = vec![Series::fitted("original", original, "n")];
    series.extend(
        per_opt
            .into_iter()
            .map(|(label, points)| Series::fitted(label, points, "n")),
    );
    FigureReport {
        id: "fig15b",
        title: "length-simplified: existing circuit optimizer analogues".into(),
        var: "n",
        series,
    }
}

/// Table 1 / Table 3: predicted and empirical MCX- and T-complexities of
/// every benchmark, before and after Spire's optimizations, as exactly
/// fitted polynomials.
pub fn table1(max_depth: i64) -> TableReport {
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        let var = if bench.group == "Set" { "d" } else { "n" };
        let depths: Vec<i64> = if bench.constant {
            (2..=max_depth.min(5)).collect()
        } else {
            (2..=max_depth).collect()
        };
        let mut mcx_pred = Vec::new();
        let mut mcx_emp = Vec::new();
        let mut t_pred_before = Vec::new();
        let mut t_emp_before = Vec::new();
        let mut t_pred_after = Vec::new();
        let mut t_emp_after = Vec::new();
        for &n in &depths {
            let depth = if bench.constant { 0 } else { n };
            let baseline = compile(&bench, depth, &CompileOptions::baseline());
            let optimized = compile(&bench, depth, &CompileOptions::spire());
            // "Predicted": the syntax-level cost model (no gates built).
            let predicted_before = baseline.histogram();
            let predicted_after = optimized.histogram();
            // "Empirical": stream-count the emitted circuit's gates.
            let counted_before = baseline.counted_histogram();
            let counted_after = optimized.counted_histogram();
            mcx_pred.push((n, predicted_before.mcx_complexity()));
            mcx_emp.push((n, counted_before.mcx_complexity()));
            t_pred_before.push((n, predicted_before.t_complexity()));
            t_emp_before.push((n, counted_before.t_complexity()));
            t_pred_after.push((n, predicted_after.t_complexity()));
            t_emp_after.push((n, counted_after.t_complexity()));
        }
        let fit = |points: Vec<(i64, u64)>| {
            let s = Series::fitted("", points, var);
            match (s.asymptotic, s.fit) {
                (Some(a), Some(f)) => format!("{a} = {f}"),
                _ => "(non-polynomial)".into(),
            }
        };
        rows.push(vec![
            format!("{}/{}", bench.group, bench.name),
            fit(mcx_pred),
            fit(mcx_emp),
            fit(t_pred_before),
            fit(t_emp_before),
            fit(t_pred_after),
            fit(t_emp_after),
        ]);
    }
    TableReport {
        id: "table1",
        title: "MCX- and T-complexities, predicted (cost model) vs empirical (compiled)".into(),
        header: vec![
            "benchmark".into(),
            "MCX predicted".into(),
            "MCX empirical".into(),
            "T before (predicted)".into(),
            "T before (empirical)".into(),
            "T after (predicted)".into(),
            "T after (empirical)".into(),
        ],
        rows,
    }
}

/// Table 2: T reduction and compile time for Spire, the Feynman/QuiZX
/// analogues, and their combinations, on `length` and `length-simplified`
/// at depth 10.
pub fn table2(depth: i64) -> TableReport {
    let mut rows = Vec::new();
    for (name, source, entry) in [
        ("length-simplified", LENGTH_SIMPLE, "length_simple"),
        ("length", LENGTH, "length"),
    ] {
        let (baseline, base_time) =
            timed(|| compile_src_fresh(source, entry, depth, &CompileOptions::baseline()));
        let base_t = baseline.t_complexity();
        let base_circuit = baseline.emit();

        let (spire_compiled, spire_time) =
            timed(|| compile_src_fresh(source, entry, depth, &CompileOptions::spire()));
        let spire_t = spire_compiled.t_complexity();
        let spire_circuit = spire_compiled.emit();

        let mut push = |row_name: &str, t: u64, time: Duration| {
            let reduction = 100.0 * (base_t.saturating_sub(t)) as f64 / base_t as f64;
            rows.push(vec![
                name.to_string(),
                row_name.to_string(),
                format!("{t}"),
                format!("{reduction:.1}%"),
                format!("{:.3} s", time.as_secs_f64()),
            ]);
        };
        push("original (no opt)", base_t, base_time);
        let (mct, mct_time) = timed(|| ToffoliCancel.optimize(&base_circuit));
        push(
            "feynman-mctexpand",
            mct.clifford_t_counts().t_count(),
            mct_time,
        );
        let (zx, zx_time) = timed(|| GlobalResynth.optimize(&base_circuit));
        push("quizx-like", zx.clifford_t_counts().t_count(), zx_time);
        push("spire", spire_t, spire_time);
        let (smct, smct_time) = timed(|| ToffoliCancel.optimize(&spire_circuit));
        push(
            "spire+mctexpand",
            smct.clifford_t_counts().t_count(),
            spire_time + smct_time,
        );
        let (szx, szx_time) = timed(|| GlobalResynth.optimize(&spire_circuit));
        push(
            "spire+quizx-like",
            szx.clifford_t_counts().t_count(),
            spire_time + szx_time,
        );
    }
    TableReport {
        id: "table2",
        title: format!("T reduction and compile time at depth {depth}"),
        header: vec![
            "program".into(),
            "pipeline".into(),
            "T".into(),
            "T reduction".into(),
            "time".into(),
        ],
        rows,
    }
}

/// Table 4 (Appendix F): T gates attributable to conditional flattening's
/// uncomputation, and qubit counts with/without Spire.
pub fn table4(depths: &[i64]) -> TableReport {
    let mut rows = Vec::new();
    for &depth in depths {
        for bench in all_benchmarks() {
            let d = if bench.constant { 0 } else { depth };
            let baseline = compile(&bench, d, &CompileOptions::baseline());
            let optimized = compile(&bench, d, &CompileOptions::spire());
            let total_t = optimized.t_complexity();
            let env = CostEnv {
                layout: &optimized.layout,
                types: &optimized.types,
                table: &optimized.table,
            };
            let uncomp = flattening_uncomputation_t(&optimized.ir, &env)
                .expect("cost analysis succeeds on compiled IR");
            let percent = if total_t > 0 {
                100.0 * uncomp as f64 / total_t as f64
            } else {
                0.0
            };
            let q_without = baseline.qubits_after_decomposition();
            let q_with = optimized.qubits_after_decomposition();
            rows.push(vec![
                format!("{depth}"),
                bench.name.to_string(),
                format!("{total_t}"),
                format!("{uncomp}"),
                format!("{percent:.2}%"),
                format!("{q_without}"),
                format!("{q_with}"),
                format!("{:+}", q_with as i64 - q_without as i64),
            ]);
        }
    }
    TableReport {
        id: "table4",
        title: "flattening uncomputation cost and qubit usage".into(),
        header: vec![
            "depth".into(),
            "benchmark".into(),
            "T total (opt)".into(),
            "T uncomputation".into(),
            "% uncomputation".into(),
            "qubits w/o spire".into(),
            "qubits w/ spire".into(),
            "diff".into(),
        ],
        rows,
    }
}

/// Tables 5 and 6 (Appendix G): the search-based optimizer analogue on
/// `length-simplified` at depths 1..=5, in the paper's configurations.
pub fn table5(max_depth: i64) -> TableReport {
    let configs: Vec<(&str, SearchConfig)> = vec![
        ("quartz rm-only", SearchConfig::quartz_rm_only()),
        ("quartz rm+search", SearchConfig::quartz_rm_search()),
        ("quartz rm+cd+search", SearchConfig::quartz()),
        ("queso", SearchConfig::queso()),
    ];
    let mut rows = Vec::new();
    for n in 1..=max_depth {
        let baseline = compile_src(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            &CompileOptions::baseline(),
        );
        let circuit =
            qcirc::decompose::to_clifford_t(&baseline.emit()).expect("decomposition succeeds");
        let counts = circuit.clifford_t_counts();
        rows.push(vec![
            format!("{n}"),
            "original".into(),
            format!("{}", counts.t_count()),
            format!("{}", counts.h),
            format!("{}", counts.cnot),
            "-".into(),
        ]);
        for (label, config) in &configs {
            let optimizer = SearchOpt::with_config("search", config.clone());
            let (optimized, time) = timed(|| optimizer.optimize(&baseline.emit()));
            let counts = optimized.clifford_t_counts();
            rows.push(vec![
                format!("{n}"),
                label.to_string(),
                format!("{}", counts.t_count()),
                format!("{}", counts.h),
                format!("{}", counts.cnot),
                format!("{:.3} s", time.as_secs_f64()),
            ]);
        }
    }
    TableReport {
        id: "table5",
        title: "search-based optimizers on length-simplified".into(),
        header: vec![
            "n".into(),
            "configuration".into(),
            "T".into(),
            "H".into(),
            "CNOT".into(),
            "time".into(),
        ],
        rows,
    }
}

/// Figure 24 (Appendix H): synergy of the individual program-level
/// optimizations with the Feynman/QuiZX analogues.
pub fn fig24(depths: impl Iterator<Item = i64>) -> FigureReport {
    let program_configs = [
        ("original", OptConfig::none()),
        ("cn-alone", OptConfig::narrowing_only()),
        ("cf-alone", OptConfig::flattening_only()),
        ("cf+cn", OptConfig::spire()),
    ];
    let mut series: Vec<(String, Vec<(i64, u64)>)> = Vec::new();
    for (label, _) in &program_configs {
        series.push((label.to_string(), Vec::new()));
        series.push((format!("{label}+mctexpand"), Vec::new()));
        series.push((format!("{label}+quizx"), Vec::new()));
    }
    for n in depths {
        for (i, (_, opt)) in program_configs.iter().enumerate() {
            let compiled = compile_src(
                LENGTH_SIMPLE,
                "length_simple",
                n,
                &CompileOptions::with_opt(*opt),
            );
            let circuit = compiled.emit();
            series[3 * i].1.push((n, compiled.t_complexity()));
            series[3 * i + 1]
                .1
                .push((n, t_after(&ToffoliCancel, &circuit)));
            series[3 * i + 2]
                .1
                .push((n, t_after(&GlobalResynth, &circuit)));
        }
    }
    FigureReport {
        id: "fig24",
        title: "synergy of program-level optimizations with circuit optimizers".into(),
        var: "n",
        series: series
            .into_iter()
            .map(|(label, points)| Series::fitted(label, points, "n"))
            .collect(),
    }
}

/// Appendix A: effect of the register bit width on T-complexity — width
/// and control flow contribute orthogonal, multiplicative costs.
pub fn appendix_a(depth: i64, widths: &[u32]) -> TableReport {
    let mut rows = Vec::new();
    for &w in widths {
        let config = WordConfig {
            uint_bits: w,
            ptr_bits: 4,
        };
        let baseline =
            compile_source_cached(LENGTH, "length", depth, config, &CompileOptions::baseline())
                .expect("length compiles at any width");
        let optimized =
            compile_source_cached(LENGTH, "length", depth, config, &CompileOptions::spire())
                .expect("length compiles at any width");
        rows.push(vec![
            format!("{w}"),
            format!("{}", baseline.mcx_complexity()),
            format!("{}", baseline.t_complexity()),
            format!("{}", optimized.t_complexity()),
        ]);
    }
    TableReport {
        id: "appendix-a",
        title: format!("bit-width sweep for length at depth {depth}"),
        header: vec![
            "uint bits".into(),
            "MCX".into(),
            "T before".into(),
            "T after".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degree_of(series: &Series) -> Option<usize> {
        series.asymptotic.as_deref().map(|a| match a {
            "O(1)" => 0,
            s if s.ends_with(&format!("({})", "n")) || s.ends_with("(d)") => 1,
            s => s
                .trim_end_matches(')')
                .rsplit('^')
                .next()
                .and_then(|d| d.parse().ok())
                .unwrap_or(99),
        })
    }

    #[test]
    fn fig2_shapes_match_paper() {
        let report = fig2(2..=6);
        let t = &report.series[0];
        let mcx = &report.series[1];
        assert_eq!(degree_of(t), Some(2), "T must be quadratic: {:?}", t.fit);
        assert_eq!(degree_of(mcx), Some(1), "MCX must be linear: {:?}", mcx.fit);
    }

    #[test]
    fn fig15a_shapes_match_paper() {
        let report = fig15a(2..=6);
        let by_label = |label: &str| {
            report
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
                .clone()
        };
        assert_eq!(degree_of(&by_label("original")), Some(2));
        assert_eq!(
            degree_of(&by_label("cn-alone")),
            Some(2),
            "CN alone is a constant-factor win"
        );
        assert_eq!(
            degree_of(&by_label("cf-alone")),
            Some(1),
            "CF alone is the asymptotic win"
        );
        assert_eq!(degree_of(&by_label("spire")), Some(1));
        // CN on top of CF improves the constant.
        let cf = by_label("cf-alone").points.last().unwrap().1;
        let spire = by_label("spire").points.last().unwrap().1;
        assert!(spire < cf, "spire {spire} should beat cf-alone {cf}");
    }

    #[test]
    fn table2_reports_all_pipelines() {
        let report = table2(4);
        assert_eq!(report.rows.len(), 12);
        assert!(report.render().contains("spire"));
    }
}
