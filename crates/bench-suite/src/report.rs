//! Rendering and serialization of experiment results (series tables and
//! row tables) as plain text, Markdown, and JSON.
//!
//! The plain-text renderers feed `spire-cli experiments`; the Markdown
//! and JSON serializers feed the artifact pipeline (`spire-cli report`),
//! which writes both formats under `reports/` — Markdown as the
//! committed, drift-checked snapshot and JSON for downstream tooling.
//! See `docs/EXPERIMENTS.md` for the artifact ↔ paper index.

use std::fmt::Write as _;

use qcirc::json::Json;

/// One curve of a figure: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in increasing `x`.
    pub points: Vec<(i64, u64)>,
    /// Fitted closed form (when the points fit a polynomial exactly).
    pub fit: Option<String>,
    /// Asymptotic class of the fit, e.g. `O(n^2)`.
    pub asymptotic: Option<String>,
}

impl Series {
    /// Build a series and fit it exactly. Small recursion depths can sit
    /// off the asymptotic polynomial (base-case boundary effects); when the
    /// full fit fails, up to two leading points are dropped and the fit is
    /// annotated with the range it holds on — the paper's own fits run from
    /// depth 2 upward for the same reason.
    pub fn fitted(label: impl Into<String>, points: Vec<(i64, u64)>, var: &str) -> Self {
        let mut fit = None;
        let mut asymptotic = None;
        for skip in 0..=2usize.min(points.len().saturating_sub(3)) {
            let tail = &points[skip..];
            let xs: Vec<i128> = tail.iter().map(|&(x, _)| x as i128).collect();
            let ys: Vec<u64> = tail.iter().map(|&(_, y)| y).collect();
            if let Some(poly) = crate::polyfit::fit_exact(&xs, &ys) {
                let range = if skip == 0 {
                    String::new()
                } else {
                    format!(" [{var} >= {}]", tail[0].0)
                };
                fit = Some(format!("{}{range}", poly.closed_form(var)));
                asymptotic = Some(poly.big_o(var));
                break;
            }
        }
        Series {
            label: label.into(),
            points,
            fit,
            asymptotic,
        }
    }
}

/// A figure-style report: several series over a common x-axis.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `fig12a`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Name of the x variable (`n` or `d`).
    pub var: &'static str,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Render as an aligned text table with one row per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} : {} ==", self.id, self.title);
        let xs: Vec<i64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        let label_width = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(8)
            .max(self.var.len());
        let _ = write!(out, "{:label_width$}", self.var);
        for x in &xs {
            let _ = write!(out, " {x:>12}");
        }
        let _ = writeln!(out, "  | fit");
        for series in &self.series {
            let _ = write!(out, "{:label_width$}", series.label);
            for &(_, y) in &series.points {
                let _ = write!(out, " {y:>12}");
            }
            let fit = series.fit.as_deref().map_or_else(
                || "(no exact polynomial fit)".to_string(),
                |f| format!("{} = {}", series.asymptotic.as_deref().unwrap_or(""), f),
            );
            let _ = writeln!(out, "  | {fit}");
        }
        out
    }
}

/// A table-style report: free-form rows under a header.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Identifier, e.g. `table1`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} : {} ==", self.id, self.title);
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(columns) {
                let w = widths[i];
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:w$}");
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

impl FigureReport {
    /// Render as a Markdown section: one pipe table with a row per series
    /// and a trailing `fit` column.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## `{}` — {}\n", self.id, self.title);
        let xs: Vec<i64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        let _ = write!(out, "| {} |", self.var);
        for x in &xs {
            let _ = write!(out, " {x} |");
        }
        let _ = writeln!(out, " fit |");
        let _ = write!(out, "|---|");
        for _ in &xs {
            let _ = write!(out, "---:|");
        }
        let _ = writeln!(out, "---|");
        for series in &self.series {
            let _ = write!(out, "| {} |", series.label);
            for &(_, y) in &series.points {
                let _ = write!(out, " {y} |");
            }
            let _ = writeln!(out, " {} |", fit_cell(series));
        }
        out
    }

    /// Serialize as a JSON object (`kind`, `id`, `title`, `var`, and a
    /// `series` array of labeled point lists with their exact fits).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The [`to_json`](FigureReport::to_json) serialization as a
    /// structured [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        let series: Json = self
            .series
            .iter()
            .map(|s| {
                let points: Json = s
                    .points
                    .iter()
                    .map(|&(x, y)| Json::array([Json::from(x), Json::from(y)]))
                    .collect();
                Json::obj()
                    .field("label", s.label.as_str())
                    .field("points", points)
                    .field("fit", s.fit.as_deref().map(Json::from))
                    .field("asymptotic", s.asymptotic.as_deref().map(Json::from))
                    .build()
            })
            .collect();
        Json::obj()
            .field("kind", "figure")
            .field("id", self.id)
            .field("title", self.title.as_str())
            .field("var", self.var)
            .field("series", series)
            .build()
    }
}

fn fit_cell(series: &Series) -> String {
    series.fit.as_deref().map_or_else(
        || "(no exact polynomial fit)".to_string(),
        |f| format!("{} = {f}", series.asymptotic.as_deref().unwrap_or("")),
    )
}

impl TableReport {
    /// Render as a Markdown section with one pipe table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## `{}` — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(self.header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Serialize as a JSON object (`kind`, `id`, `title`, `header`, and
    /// `rows` as arrays of strings).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The [`to_json`](TableReport::to_json) serialization as a
    /// structured [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        let strings = |cells: &[String]| Json::array(cells.iter().map(String::as_str));
        Json::obj()
            .field("kind", "table")
            .field("id", self.id)
            .field("title", self.title.as_str())
            .field("header", strings(&self.header))
            .field(
                "rows",
                self.rows.iter().map(|row| strings(row)).collect::<Json>(),
            )
            .build()
    }
}

/// One generated artifact of the evaluation: a figure or a table.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A figure-style report (series over a depth sweep).
    Figure(FigureReport),
    /// A table-style report.
    Table(TableReport),
}

impl Artifact {
    /// The artifact identifier (`fig2`, `table1`, …).
    pub fn id(&self) -> &'static str {
        match self {
            Artifact::Figure(f) => f.id,
            Artifact::Table(t) => t.id,
        }
    }

    /// The artifact's human title.
    pub fn title(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.title,
            Artifact::Table(t) => &t.title,
        }
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        match self {
            Artifact::Figure(f) => f.render(),
            Artifact::Table(t) => t.render(),
        }
    }

    /// Render as a Markdown section.
    pub fn to_markdown(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_markdown(),
            Artifact::Table(t) => t.to_markdown(),
        }
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_json(),
            Artifact::Table(t) => t.to_json(),
        }
    }

    /// The artifact as a structured [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        match self {
            Artifact::Figure(f) => f.to_json_value(),
            Artifact::Table(t) => t.to_json_value(),
        }
    }
}

/// Escape a string as a JSON string literal.
///
/// Thin re-export of [`qcirc::json::quoted`] kept for the existing call
/// sites that splice escaped strings into handwritten JSON templates.
pub fn json_string(s: &str) -> String {
    qcirc::json::quoted(s)
}

/// Replace wall-clock timing cells (the `1.234 s` format every timed
/// experiment uses) with a stable `<time>` placeholder.
///
/// Timings are the only nondeterministic content in the generated
/// Markdown; the report drift check (`spire-cli report --check`)
/// normalizes both sides with this function so an artifact diff means the
/// *results* changed, not the machine's speed.
pub fn normalize_timings(text: &str) -> String {
    let mut out: Vec<u8> = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        // Candidate: digits '.' digits, then " s" followed by a
        // non-alphanumeric boundary.
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > start && j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
            let mut k = j + 1;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                k += 1;
            }
            let unit_follows = bytes.get(k) == Some(&b' ')
                && bytes.get(k + 1) == Some(&b's')
                && !bytes.get(k + 2).is_some_and(u8::is_ascii_alphanumeric);
            if unit_follows {
                out.extend_from_slice(b"<time>");
                i = k + 2;
                continue;
            }
        }
        out.push(bytes[start]);
        i = start + 1;
    }
    // Replacements are pure ASCII and multi-byte sequences are copied
    // verbatim (a digit byte never starts inside one), so this is valid.
    String::from_utf8(out).expect("normalization preserves UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_report_renders_fits() {
        let series = Series::fitted("T", vec![(2, 7), (3, 9), (4, 11)], "n");
        assert_eq!(series.fit.as_deref(), Some("2n+3"));
        let report = FigureReport {
            id: "figX",
            title: "demo".into(),
            var: "n",
            series: vec![series],
        };
        let text = report.render();
        assert!(text.contains("figX"));
        assert!(text.contains("2n+3"));
    }

    #[test]
    fn table_report_aligns_columns() {
        let report = TableReport {
            id: "tabX",
            title: "demo".into(),
            header: vec!["name".into(), "value".into()],
            rows: vec![
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        };
        let text = report.render();
        assert!(text.contains("long-name"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn markdown_and_json_serialize_figures() {
        let report = FigureReport {
            id: "figX",
            title: "demo".into(),
            var: "n",
            series: vec![Series::fitted("T", vec![(2, 7), (3, 9), (4, 11)], "n")],
        };
        let md = report.to_markdown();
        assert!(md.starts_with("## `figX`"));
        assert!(md.contains("| T | 7 | 9 | 11 |"));
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"figure\""));
        assert!(json.contains("\"points\":[[2,7],[3,9],[4,11]]"));
        assert!(json.contains("\"fit\":\"2n+3\""));
    }

    #[test]
    fn markdown_and_json_serialize_tables() {
        let table = TableReport {
            id: "tabX",
            title: "demo \"quoted\"".into(),
            header: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "x\ny".into()]],
        };
        let artifact = Artifact::Table(table);
        assert_eq!(artifact.id(), "tabX");
        assert!(artifact.to_markdown().contains("| a | b |"));
        let json = artifact.to_json();
        assert!(json.contains("\"title\":\"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"x\\ny\""));
    }

    #[test]
    fn timing_normalization_is_targeted() {
        let text = "spire  0.123 s done; 12.000 s; v1.2 set; 3.4 sx; naïve 1.0 s";
        assert_eq!(
            normalize_timings(text),
            "spire  <time> done; <time>; v1.2 set; 3.4 sx; naïve <time>"
        );
    }
}
