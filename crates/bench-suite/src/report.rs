//! Plain-text rendering of experiment results (series tables and row
//! tables), used by the CLI and recorded in `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// One curve of a figure: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in increasing `x`.
    pub points: Vec<(i64, u64)>,
    /// Fitted closed form (when the points fit a polynomial exactly).
    pub fit: Option<String>,
    /// Asymptotic class of the fit, e.g. `O(n^2)`.
    pub asymptotic: Option<String>,
}

impl Series {
    /// Build a series and fit it exactly. Small recursion depths can sit
    /// off the asymptotic polynomial (base-case boundary effects); when the
    /// full fit fails, up to two leading points are dropped and the fit is
    /// annotated with the range it holds on — the paper's own fits run from
    /// depth 2 upward for the same reason.
    pub fn fitted(label: impl Into<String>, points: Vec<(i64, u64)>, var: &str) -> Self {
        let mut fit = None;
        let mut asymptotic = None;
        for skip in 0..=2usize.min(points.len().saturating_sub(3)) {
            let tail = &points[skip..];
            let xs: Vec<i128> = tail.iter().map(|&(x, _)| x as i128).collect();
            let ys: Vec<u64> = tail.iter().map(|&(_, y)| y).collect();
            if let Some(poly) = crate::polyfit::fit_exact(&xs, &ys) {
                let range = if skip == 0 {
                    String::new()
                } else {
                    format!(" [{var} >= {}]", tail[0].0)
                };
                fit = Some(format!("{}{range}", poly.closed_form(var)));
                asymptotic = Some(poly.big_o(var));
                break;
            }
        }
        Series {
            label: label.into(),
            points,
            fit,
            asymptotic,
        }
    }
}

/// A figure-style report: several series over a common x-axis.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `fig12a`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Name of the x variable (`n` or `d`).
    pub var: &'static str,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Render as an aligned text table with one row per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} : {} ==", self.id, self.title);
        let xs: Vec<i64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        let label_width = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(8)
            .max(self.var.len());
        let _ = write!(out, "{:label_width$}", self.var);
        for x in &xs {
            let _ = write!(out, " {x:>12}");
        }
        let _ = writeln!(out, "  | fit");
        for series in &self.series {
            let _ = write!(out, "{:label_width$}", series.label);
            for &(_, y) in &series.points {
                let _ = write!(out, " {y:>12}");
            }
            let fit = series
                .fit
                .as_deref()
                .map(|f| format!("{} = {}", series.asymptotic.as_deref().unwrap_or(""), f))
                .unwrap_or_else(|| "(no exact polynomial fit)".to_string());
            let _ = writeln!(out, "  | {fit}");
        }
        out
    }
}

/// A table-style report: free-form rows under a header.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Identifier, e.g. `table1`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} : {} ==", self.id, self.title);
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(columns) {
                let w = widths[i];
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:w$}");
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_report_renders_fits() {
        let series = Series::fitted("T", vec![(2, 7), (3, 9), (4, 11)], "n");
        assert_eq!(series.fit.as_deref(), Some("2n+3"));
        let report = FigureReport {
            id: "figX",
            title: "demo".into(),
            var: "n",
            series: vec![series],
        };
        let text = report.render();
        assert!(text.contains("figX"));
        assert!(text.contains("2n+3"));
    }

    #[test]
    fn table_report_aligns_columns() {
        let report = TableReport {
            id: "tabX",
            title: "demo".into(),
            header: vec!["name".into(), "value".into()],
            rows: vec![
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        };
        let text = report.render();
        assert!(text.contains("long-name"));
        assert!(text.lines().count() >= 4);
    }
}
