//! Exact polynomial fitting over the rationals.
//!
//! The paper's Table 1 methodology: "we repeated the process for depths
//! from 2 to 10 and found the lowest-degree polynomial that exactly fits
//! the T-complexities" — producing closed forms like `15722n² + 19292n +
//! 3934` and `(3076192/3)d³ + …`. This module reproduces that fit with
//! exact rational arithmetic (Newton forward differences over `i128`
//! fractions), so fitted coefficients are exact, not least-squares
//! estimates.

use std::fmt;

/// An exact rational number with `i128` components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128, // always positive
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };

    /// Construct `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics on a zero denominator.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        Rational {
            num: sign * num / g,
            den: den.abs() / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is a (signed) integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Numerator (in lowest terms).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (positive, in lowest terms).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    fn add(self, other: Rational) -> Rational {
        Rational::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    fn sub(self, other: Rational) -> Rational {
        Rational::new(
            self.num * other.den - other.num * self.den,
            self.den * other.den,
        )
    }

    fn mul(self, other: Rational) -> Rational {
        Rational::new(self.num * other.num, self.den * other.den)
    }

    fn div(self, other: Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero");
        Rational::new(self.num * other.den, self.den * other.num)
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// A polynomial with exact rational coefficients, lowest degree first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Rational>, // coeffs[k] multiplies n^k; last is nonzero
}

impl Polynomial {
    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Coefficient of `n^k`.
    pub fn coeff(&self, k: usize) -> Rational {
        self.coeffs.get(k).copied().unwrap_or(Rational::ZERO)
    }

    /// Evaluate at an integer point.
    pub fn eval(&self, n: i128) -> Rational {
        let mut acc = Rational::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(Rational::integer(n)).add(c);
        }
        acc
    }

    /// Asymptotic notation, e.g. `O(n^2)`.
    pub fn big_o(&self, var: &str) -> String {
        match self.degree() {
            0 => "O(1)".to_string(),
            1 => format!("O({var})"),
            d => format!("O({var}^{d})"),
        }
    }

    /// Closed form in the paper's style, e.g. `15722n^2+19292n+3934`.
    pub fn closed_form(&self, var: &str) -> String {
        if self.coeffs.iter().all(Rational::is_zero) {
            return "0".to_string();
        }
        let mut parts = Vec::new();
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            let coeff = if c.is_integer() {
                format!("{}", c.numerator())
            } else {
                format!("({c})")
            };
            let part = match k {
                0 => coeff,
                1 => format!("{coeff}{var}"),
                _ => format!("{coeff}{var}^{k}"),
            };
            parts.push(part);
        }
        let mut out = String::new();
        for (i, part) in parts.iter().enumerate() {
            if i > 0 && !part.starts_with('-') {
                out.push('+');
            }
            out.push_str(part);
        }
        out
    }
}

/// Fit the lowest-degree polynomial that exactly interpolates the points
/// `(xs[i], ys[i])` (xs must be strictly increasing and equally spaced).
/// Returns `None` if the points are not consistent with any polynomial of
/// degree `< xs.len()` (they always are when all points are used, but the
/// fit is rejected unless trailing Newton differences vanish, i.e. the
/// data is *over-determined* by at least one point — the paper's "exactly
/// fits" criterion).
pub fn fit_exact(xs: &[i128], ys: &[u64]) -> Option<Polynomial> {
    if xs.len() < 2 || xs.len() != ys.len() {
        return None;
    }
    let step = xs[1] - xs[0];
    if step <= 0 || xs.windows(2).any(|w| w[1] - w[0] != step) {
        return None;
    }
    // Newton forward differences.
    let mut diffs: Vec<Vec<Rational>> =
        vec![ys.iter().map(|&y| Rational::integer(y as i128)).collect()];
    while diffs.last().expect("nonempty").len() > 1 {
        let prev = diffs.last().expect("nonempty");
        let next: Vec<Rational> = prev.windows(2).map(|w| w[1].sub(w[0])).collect();
        let done = next.iter().all(Rational::is_zero);
        diffs.push(next);
        if done {
            break;
        }
    }
    // Degree = index of the last non-vanishing difference row.
    let degree = diffs
        .iter()
        .rposition(|row| row.iter().any(|r| !r.is_zero()))
        .unwrap_or(0);
    // Require at least one redundant point, so the polynomial is confirmed
    // rather than merely interpolated.
    if degree + 2 > xs.len() {
        return None;
    }
    // Newton form: f(x) = Σ_k Δ^k f(x0) / (k! step^k) · Π_{j<k} (x - x0 - j·step)
    // expanded into the monomial basis.
    let x0 = xs[0];
    let mut coeffs = vec![Rational::ZERO; degree + 1];
    let mut basis = vec![Rational::integer(1)]; // Π so far, monomial coeffs
    let mut factorial = Rational::integer(1);
    for (k, row) in diffs.iter().enumerate().take(degree + 1) {
        if k > 0 {
            factorial = factorial.mul(Rational::integer(k as i128));
            // basis *= (x - (x0 + (k-1)·step))
            let shift = Rational::integer(-(x0 + (k as i128 - 1) * step));
            let mut next = vec![Rational::ZERO; basis.len() + 1];
            for (i, &b) in basis.iter().enumerate() {
                next[i + 1] = next[i + 1].add(b);
                next[i] = next[i].add(b.mul(shift));
            }
            basis = next;
        }
        let lead = row[0].div(factorial).div(power(Rational::integer(step), k));
        for (i, &b) in basis.iter().enumerate() {
            coeffs[i] = coeffs[i].add(b.mul(lead));
        }
    }
    while coeffs.len() > 1 && coeffs.last().is_some_and(Rational::is_zero) {
        coeffs.pop();
    }
    let poly = Polynomial { coeffs };
    // Exactness check on every point.
    for (&x, &y) in xs.iter().zip(ys) {
        if poly.eval(x) != Rational::integer(y as i128) {
            return None;
        }
    }
    Some(poly)
}

fn power(base: Rational, exp: usize) -> Rational {
    let mut acc = Rational::integer(1);
    for _ in 0..exp {
        acc = acc.mul(base);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_constant() {
        let xs: Vec<i128> = (2..=6).collect();
        let ys = vec![1452u64; 5];
        let poly = fit_exact(&xs, &ys).unwrap();
        assert_eq!(poly.degree(), 0);
        assert_eq!(poly.closed_form("n"), "1452");
    }

    #[test]
    fn fits_paper_style_linear() {
        // 2246n + 32 (paper Table 1, length MCX-complexity).
        let xs: Vec<i128> = (2..=10).collect();
        let ys: Vec<u64> = xs.iter().map(|&n| (2246 * n + 32) as u64).collect();
        let poly = fit_exact(&xs, &ys).unwrap();
        assert_eq!(poly.degree(), 1);
        assert_eq!(poly.closed_form("n"), "2246n+32");
        assert_eq!(poly.big_o("n"), "O(n)");
    }

    #[test]
    fn fits_paper_style_quadratic() {
        // 15722n² + 19292n + 3934 (paper Table 1, length T-complexity).
        let xs: Vec<i128> = (2..=10).collect();
        let ys: Vec<u64> = xs
            .iter()
            .map(|&n| (15722 * n * n + 19292 * n + 3934) as u64)
            .collect();
        let poly = fit_exact(&xs, &ys).unwrap();
        assert_eq!(poly.degree(), 2);
        assert_eq!(poly.closed_form("n"), "15722n^2+19292n+3934");
    }

    #[test]
    fn fits_rational_coefficients() {
        // (3076192/3)d³-style coefficients (paper Table 3) stay exact.
        let xs: Vec<i128> = (2..=10).collect();
        let ys: Vec<u64> = xs
            .iter()
            .map(|&d| ((3076192 * d * d * d + 2) / 3) as u64)
            .collect();
        // (3076192 d³ + 2) is divisible by 3 for all d ≡ d³ mod 3 ... check
        // exactness only when the integer division was exact.
        if xs.iter().all(|&d| (3076192 * d * d * d + 2) % 3 == 0) {
            let poly = fit_exact(&xs, &ys).unwrap();
            assert_eq!(poly.degree(), 3);
            assert!(!poly.coeff(3).is_integer());
        }
    }

    #[test]
    fn rejects_non_polynomial_data() {
        let xs: Vec<i128> = (1..=6).collect();
        let ys: Vec<u64> = xs.iter().map(|&n| 1u64 << n).collect(); // 2^n
        assert!(fit_exact(&xs, &ys).is_none());
    }

    #[test]
    fn rejects_underdetermined_fit() {
        // Two points always fit a line; require a confirming third.
        assert!(fit_exact(&[1, 2], &[3, 5]).is_none());
        assert!(fit_exact(&[1, 2, 3], &[3, 5, 7]).is_some());
    }

    #[test]
    fn negative_and_mixed_coefficients_display() {
        // n² - 8820n + 6426 style (paper find_pos has a negative term).
        let xs: Vec<i128> = (2..=8).collect();
        let ys: Vec<u64> = xs
            .iter()
            .map(|&n| (16058 * n * n - 8820 * n + 6426) as u64)
            .collect();
        let poly = fit_exact(&xs, &ys).unwrap();
        assert_eq!(poly.closed_form("n"), "16058n^2-8820n+6426");
    }

    #[test]
    fn rational_arithmetic_identities() {
        let half = Rational::new(1, 2);
        let third = Rational::new(2, 6);
        assert_eq!(third, Rational::new(1, 3));
        assert_eq!(half.mul(Rational::integer(2)), Rational::integer(1));
        assert_eq!(Rational::new(-4, -8), half);
        assert_eq!(Rational::new(4, -8).numerator(), -1);
    }
}
