//! The paper's benchmark programs (Table 1), written in Tower.
//!
//! These are the data-structure operations used by quantum algorithms for
//! search, optimization, and geometry: linked-list traversals and
//! mutations, queue operations, string comparisons, and radix-tree set
//! operations. The mutating operations (`push_back`, `remove`, `insert`)
//! are written in the reversible idioms Tower requires — conditional
//! XOR-copies to select arguments, with-block splitting so the closing
//! reversal writes updated cells back, and child-status flags that the
//! caller consumes by probing the structure (compare the paper's
//! Figure 11, which threads a guard flag the same way).
//!
//! Documented deviations from the paper's (unpublished-source) versions:
//!
//! * `remove` removes the *last* list node (and deallocates its cell);
//!   removal by value admits no bounded-garbage reversible formulation
//!   without threading extra outputs.
//! * `insert` assumes the inserted key is absent (the usual benchmark
//!   precondition); its already-present branch is compiled but the flag
//!   probe is only exact under the precondition.
//! * Functions that allocate report a `(result, allocated_here)` pair; the
//!   flag is how a parent level reversibly consumes its child's control
//!   flow.

/// `type list = (uint, ptr<list>)` and every list/queue benchmark.
pub const LIST_PRELUDE: &str = r#"
type list = (uint, ptr<list>);
"#;

/// Figure 1: list length.
pub const LENGTH: &str = r#"
type list = (uint, ptr<list>);

fun length[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let next <- temp.2;
        let r <- acc + 1;
    } do {
        let out <- length[n-1](next, r);
    }
    return out;
}
"#;

/// `length-simplified` (paper Sections 8.2–8.3): same control-flow
/// skeleton as `length`, with the memory dereference and the addition
/// dropped so existing circuit optimizers can process the circuit. As the
/// paper notes, the simplification changes the computed value but not the
/// asymptotic shape.
pub const LENGTH_SIMPLE: &str = r#"
type list = (uint, ptr<list>);

fun length_simple[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        let next <- temp.2;
        let r <- acc;
    } do {
        let out <- length_simple[n-1](next, r);
    }
    return out;
}
"#;

/// Sum of list elements.
pub const SUM: &str = r#"
type list = (uint, ptr<list>);

fun sum[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let v <- temp.1;
        let next <- temp.2;
        let r <- acc + v;
    } do {
        let out <- sum[n-1](next, r);
    }
    return out;
}
"#;

/// 1-based position of the first element equal to `target` (0 if absent).
pub const FIND_POS: &str = r#"
type list = (uint, ptr<list>);

fun find_pos[n](xs: ptr<list>, target: uint, pos: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- default<uint>;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let v <- temp.1;
        let next <- temp.2;
        let found <- v == target;
        let p <- pos + 1;
    } do if found {
        let out <- p;
    } else {
        let out <- find_pos[n-1](next, target, p);
    }
    return out;
}
"#;

/// Remove the last node of a nonempty list, deallocating its cell.
/// Returns `(removed_value, removed_at_this_level)`; the flag is consumed
/// level by level (a parent deallocates its child when the child reports
/// it was the last node).
pub const REMOVE: &str = r#"
type list = (uint, ptr<list>);

fun remove[n](xs: ptr<list>) -> (uint, bool) {
    with {
        let temp <- default<list>;
        *xs <-> temp;
        let v <- temp.1;
        let nx <- temp.2;
        let temp -> (v, nx);
    } do {
        let is_last <- nx == null;
        let not_last <- not is_last;
        if is_last {
            let rv <- v;
            let tr <- true;
            let out <- (rv, tr);
            let tr -> true;
            let rv -> v;
        }
        if not_last {
            let rec <- remove[n-1](nx);
            let rvv <- rec.1;
            let cf <- rec.2;
            let rec -> (rvv, cf);
            if cf {
                let probe <- default<list>;
                *nx <-> probe;
                let pv <- probe.1;
                let z <- default<ptr<list>>;
                let probe -> (pv, z);
                let z -> default<ptr<list>>;
                let pv -> rvv;
                let dd <- nx;
                let nx <- dd;
                dealloc dd : list;
            }
            let cf -> nx == null;
            let fl <- default<bool>;
            let out <- (rvv, fl);
            let fl -> default<bool>;
            let rvv -> out.1;
        }
        let not_last -> not is_last;
        let is_last -> out.2;
    }
    return out;
}
"#;

/// Append a value at the end of a list (queue push). Returns
/// `(new_head, allocated_at_this_level)`.
pub const PUSH_BACK: &str = r#"
type list = (uint, ptr<list>);

fun push_back[n](xs: ptr<list>, val: uint) -> (ptr<list>, bool) {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        alloc node : list;
        let z <- default<ptr<list>>;
        let nd <- (val, z);
        *node <-> nd;
        let nd -> default<list>;
        let z -> default<ptr<list>>;
        let tr <- true;
        let out <- (node, tr);
        let tr -> true;
        let node -> out.1;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let v <- temp.1;
        let nx <- temp.2;
        let temp -> (v, nx);
    } do {
        let rec <- push_back[n-1](nx, val);
        let h <- rec.1;
        let cf <- rec.2;
        let rec -> (h, cf);
        if cf { let nx <- h; }
        let h -> nx;
        with {
            let probe <- default<list>;
            *nx <-> probe;
            let pl <- probe.2;
            let plz <- pl == null;
        } do {
            let cf -> plz;
        }
        let fl <- default<bool>;
        let out <- (xs, fl);
        let fl -> default<bool>;
    }
    return out;
}
"#;

/// Remove the head node of a nonempty list in O(1): returns
/// `(value, rest)` and deallocates the head cell.
pub const POP_FRONT: &str = r#"
type list = (uint, ptr<list>);

fun pop_front(xs: ptr<list>) -> (uint, ptr<list>) {
    let temp <- default<list>;
    *xs <-> temp;
    let v <- temp.1;
    let rest <- temp.2;
    let temp -> (v, rest);
    let dd <- xs;
    dealloc dd : list;
    let out <- (v, rest);
    let v -> out.1;
    let rest -> out.2;
    return out;
}
"#;

/// Strings are lists of character codes.
pub const STRING_PRELUDE: &str = r#"
type str = (uint, ptr<str>);
"#;

/// Whether `p` is a prefix of `s`.
pub const IS_PREFIX: &str = r#"
type str = (uint, ptr<str>);

fun is_prefix[n](p: ptr<str>, s: ptr<str>) -> bool {
    with {
        let p_empty <- p == null;
    } do if p_empty {
        let out <- true;
    } else with {
        let s_empty <- s == null;
    } do if s_empty {
        let out <- default<bool>;
    } else with {
        let pt <- default<str>;
        *p <-> pt;
        let pc <- pt.1;
        let pn <- pt.2;
        let st <- default<str>;
        *s <-> st;
        let sc <- st.1;
        let sn <- st.2;
        let eq <- pc == sc;
    } do if eq {
        let out <- is_prefix[n-1](pn, sn);
    } else {
        let out <- default<bool>;
    }
    return out;
}
"#;

/// Number of characters equal to `target`, with a running accumulator.
pub const NUM_MATCHING: &str = r#"
type str = (uint, ptr<str>);

fun num_matching[n](xs: ptr<str>, target: uint, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let t <- default<str>;
        *xs <-> t;
        let c <- t.1;
        let nx <- t.2;
        let m <- c == target;
        let nm <- not m;
        let macc <- acc + 1;
    } do {
        let arg <- default<uint>;
        if m { let arg <- macc; }
        if nm { let arg <- acc; }
        let out <- num_matching[n-1](nx, target, arg);
        if m { let arg <- macc; }
        if nm { let arg <- acc; }
        let arg -> default<uint>;
    }
    return out;
}
"#;

/// String equality.
pub const COMPARE: &str = r#"
type str = (uint, ptr<str>);

fun compare[n](a: ptr<str>, b: ptr<str>) -> bool {
    with {
        let a_empty <- a == null;
    } do if a_empty {
        let out <- b == null;
    } else with {
        let b_empty <- b == null;
    } do if b_empty {
        let out <- default<bool>;
    } else with {
        let at <- default<str>;
        *a <-> at;
        let ac <- at.1;
        let an <- at.2;
        let bt <- default<str>;
        *b <-> bt;
        let bc <- bt.1;
        let bn <- bt.2;
        let eq <- ac == bc;
    } do if eq {
        let out <- compare[n-1](an, bn);
    } else {
        let out <- default<bool>;
    }
    return out;
}
"#;

/// The radix-tree set: nodes store a key string and two children; lookups
/// compare the full remaining key at every level (O(d) work per level,
/// O(d²) total — paper Section 8.1) and descend on the leading character.
pub const SET_PRELUDE: &str = r#"
type str = (uint, ptr<str>);
type kids = (ptr<tree>, ptr<tree>);
type tree = (ptr<str>, kids);
"#;

const COMPARE_FOR_SET: &str = r#"
fun compare[n](a: ptr<str>, b: ptr<str>) -> bool {
    with {
        let a_empty <- a == null;
    } do if a_empty {
        let out <- b == null;
    } else with {
        let b_empty <- b == null;
    } do if b_empty {
        let out <- default<bool>;
    } else with {
        let at <- default<str>;
        *a <-> at;
        let ac <- at.1;
        let an <- at.2;
        let bt <- default<str>;
        *b <-> bt;
        let bc <- bt.1;
        let bn <- bt.2;
        let eq <- ac == bc;
    } do if eq {
        let out <- compare[n-1](an, bn);
    } else {
        let out <- default<bool>;
    }
    return out;
}
"#;

/// Set membership in the radix tree.
pub fn contains_source() -> String {
    format!(
        "{SET_PRELUDE}{COMPARE_FOR_SET}
fun contains[d](t: ptr<tree>, key: ptr<str>) -> bool {{
    with {{
        let t_null <- t == null;
    }} do if t_null {{
        let out <- default<bool>;
    }} else with {{
        let node <- default<tree>;
        *t <-> node;
        let stored <- node.1;
        let ks <- node.2;
        let l <- ks.1;
        let r <- ks.2;
        let eq <- compare[d](stored, key);
        let key_null <- key == null;
    }} do if eq {{
        let out <- true;
    }} else if key_null {{
        let out <- default<bool>;
    }} else with {{
        let kt <- default<str>;
        *key <-> kt;
        let kc <- kt.1;
        let kn <- kt.2;
        let go_left <- kc == 1;
        let go_right <- not go_left;
    }} do {{
        let child <- default<ptr<tree>>;
        if go_left {{ let child <- l; }}
        if go_right {{ let child <- r; }}
        let out <- contains[d-1](child, kn);
        if go_left {{ let child <- l; }}
        if go_right {{ let child <- r; }}
        let child -> default<ptr<tree>>;
    }}
    return out;
}}
"
    )
}

/// Set insertion into the radix tree. Returns `(root, allocated_here)`.
/// Precondition: the key is not already present and the recursion depth
/// covers the key length.
pub fn insert_source() -> String {
    format!(
        "{SET_PRELUDE}{COMPARE_FOR_SET}
fun insert[d](t: ptr<tree>, key: ptr<str>) -> (ptr<tree>, bool) {{
    with {{
        let t_null <- t == null;
    }} do if t_null {{
        alloc fresh : tree;
        let zl <- default<ptr<tree>>;
        let zr <- default<ptr<tree>>;
        let fks <- (zl, zr);
        let nd <- (key, fks);
        *fresh <-> nd;
        let nd -> default<tree>;
        let fks -> (zl, zr);
        let zr -> default<ptr<tree>>;
        let zl -> default<ptr<tree>>;
        let tr <- true;
        let out <- (fresh, tr);
        let tr -> true;
        let fresh -> out.1;
    }} else with {{
        let node <- default<tree>;
        *t <-> node;
        let stored <- node.1;
        let ks <- node.2;
        let l <- ks.1;
        let r <- ks.2;
        let node -> (stored, ks);
        let ks -> (l, r);
        let eq <- compare[d](stored, key);
        let neq <- not eq;
        let key_null <- key == null;
        let stuck <- neq && key_null;
        let descend <- neq && not key_null;
    }} do {{
        if eq {{
            let f0 <- default<bool>;
            let out <- (t, f0);
            let f0 -> default<bool>;
        }}
        if stuck {{
            let f1 <- default<bool>;
            let out <- (t, f1);
            let f1 -> default<bool>;
        }}
        if descend {{
            let kt <- default<str>;
            *key <-> kt;
            let kc <- kt.1;
            let kn <- kt.2;
            let kt -> (kc, kn);
            let go_left <- kc == 1;
            let go_right <- not go_left;
            let child <- default<ptr<tree>>;
            if go_left {{ let child <- l; }}
            if go_right {{ let child <- r; }}
            let rec <- insert[d-1](child, kn);
            let h <- rec.1;
            let cf <- rec.2;
            let rec -> (h, cf);
            if cf {{
                if go_left {{ let l <- h; }}
                if go_right {{ let r <- h; }}
            }}
            if cf {{
                if go_left {{ let child <- l; }}
                if go_right {{ let child <- r; }}
            }}
            let h -> child;
            with {{
                let pnode <- default<tree>;
                *child <-> pnode;
                let pstored <- pnode.1;
                let cfp <- compare[d](pstored, kn);
            }} do {{
                let cf -> cfp;
            }}
            if go_left {{ let child <- l; }}
            if go_right {{ let child <- r; }}
            let child -> default<ptr<tree>>;
            let go_right -> not go_left;
            let go_left -> kc == 1;
            let kt <- (kc, kn);
            let kn -> kt.2;
            let kc -> kt.1;
            *key <-> kt;
            let kt -> default<str>;
            let f2 <- default<bool>;
            let out <- (t, f2);
            let f2 -> default<bool>;
        }}
    }}
    return out;
}}
"
    )
}

/// A named benchmark: source, entry point, and which size parameter it is
/// measured against.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name, grouped the way Table 1 groups them.
    pub name: &'static str,
    /// Table-1 group (List/Queue/String/Set).
    pub group: &'static str,
    /// Tower source.
    pub source: String,
    /// Entry function.
    pub entry: &'static str,
    /// Whether the benchmark is constant-size (pop_front) rather than
    /// scaling with the recursion depth.
    pub constant: bool,
}

/// All benchmarks of paper Table 1, in order, plus `length-simplified`.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "length",
            group: "List",
            source: LENGTH.to_string(),
            entry: "length",
            constant: false,
        },
        Benchmark {
            name: "length-simple",
            group: "List",
            source: LENGTH_SIMPLE.to_string(),
            entry: "length_simple",
            constant: false,
        },
        Benchmark {
            name: "sum",
            group: "List",
            source: SUM.to_string(),
            entry: "sum",
            constant: false,
        },
        Benchmark {
            name: "find_pos",
            group: "List",
            source: FIND_POS.to_string(),
            entry: "find_pos",
            constant: false,
        },
        Benchmark {
            name: "remove",
            group: "List",
            source: REMOVE.to_string(),
            entry: "remove",
            constant: false,
        },
        Benchmark {
            name: "push_back",
            group: "Queue",
            source: PUSH_BACK.to_string(),
            entry: "push_back",
            constant: false,
        },
        Benchmark {
            name: "pop_front",
            group: "Queue",
            source: POP_FRONT.to_string(),
            entry: "pop_front",
            constant: true,
        },
        Benchmark {
            name: "is_prefix",
            group: "String",
            source: IS_PREFIX.to_string(),
            entry: "is_prefix",
            constant: false,
        },
        Benchmark {
            name: "num_matching",
            group: "String",
            source: NUM_MATCHING.to_string(),
            entry: "num_matching",
            constant: false,
        },
        Benchmark {
            name: "compare",
            group: "String",
            source: COMPARE.to_string(),
            entry: "compare",
            constant: false,
        },
        Benchmark {
            name: "insert",
            group: "Set",
            source: insert_source(),
            entry: "insert",
            constant: false,
        },
        Benchmark {
            name: "contains",
            group: "Set",
            source: contains_source(),
            entry: "contains",
            constant: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire::{compile_source, CompileOptions};
    use tower::WordConfig;

    #[test]
    fn every_benchmark_parses() {
        for bench in all_benchmarks() {
            tower::parse(&bench.source).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        }
    }

    #[test]
    fn every_benchmark_compiles_baseline_and_spire() {
        for bench in all_benchmarks() {
            let depth = if bench.constant { 0 } else { 3 };
            for options in [CompileOptions::baseline(), CompileOptions::spire()] {
                let compiled = compile_source(
                    &bench.source,
                    bench.entry,
                    depth,
                    WordConfig::paper_default(),
                    &options,
                )
                .unwrap_or_else(|e| panic!("{} ({}): {e}", bench.name, options.opt.label()));
                assert!(compiled.mcx_complexity() > 0, "{}", bench.name);
            }
        }
    }

    #[test]
    fn cost_model_matches_emission_for_all_benchmarks() {
        // Theorems 5.1/5.2 across the whole suite at a small depth.
        for bench in all_benchmarks() {
            let depth = if bench.constant { 0 } else { 2 };
            for options in [CompileOptions::baseline(), CompileOptions::spire()] {
                let compiled = compile_source(
                    &bench.source,
                    bench.entry,
                    depth,
                    WordConfig::paper_default(),
                    &options,
                )
                .unwrap();
                assert_eq!(
                    compiled.histogram(),
                    compiled.counted_histogram(),
                    "{} ({})",
                    bench.name,
                    options.opt.label()
                );
            }
        }
    }
}
