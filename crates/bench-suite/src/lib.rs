//! Benchmark suite and experiment harness for the Spire reproduction.
//!
//! * [`programs`] — the paper's Table-1 benchmark programs in Tower
//!   (list, queue, string, and radix-tree-set operations), plus
//!   `length-simplified`.
//! * [`polyfit`] — exact rational polynomial fitting, reproducing the
//!   paper's "lowest-degree polynomial that exactly fits" methodology.
//! * [`experiments`] — one regenerator per table and figure of the
//!   evaluation (Figures 2, 12, 15, 24; Tables 1–6; Appendix A).
//! * [`report`] — plain-text rendering of figures and tables.
//!
//! # Example
//!
//! ```no_run
//! // Regenerate Figure 2 (quadratic T vs linear MCX for `length`):
//! let report = bench_suite::experiments::fig2(2..=10);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod polyfit;
pub mod programs;
pub mod report;
