//! Benchmark suite and experiment harness for the Spire reproduction.
//!
//! * [`programs`] — the paper's Table-1 benchmark programs in Tower
//!   (list, queue, string, and radix-tree-set operations), plus
//!   `length-simplified`.
//! * [`polyfit`] — exact rational polynomial fitting, reproducing the
//!   paper's "lowest-degree polynomial that exactly fits" methodology.
//! * [`experiments`] — one regenerator per table and figure of the
//!   evaluation (Figures 2, 12, 15, 24; Tables 1–6; Appendix A).
//! * [`report`] — rendering and serialization of figures and tables as
//!   plain text, Markdown, and JSON.
//! * [`runner`] — the parallel artifact pipeline: warms the compile
//!   cache across the experiment matrix on scoped worker threads, then
//!   regenerates every artifact (`spire-cli report` is a thin shell over
//!   it; `docs/EXPERIMENTS.md` is the artifact index).
//! * [`opt_bench`] — the optimizer perf trajectory: per-pass wall times
//!   and gate throughput over the headline benchmarks, serialized as
//!   `BENCH_optimizer.json` with the pinned pre-refactor baseline.
//!
//! # Example
//!
//! ```no_run
//! // Regenerate Figure 2 (quadratic T vs linear MCX for `length`):
//! let report = bench_suite::experiments::fig2(2..=10);
//! println!("{}", report.render());
//!
//! // Or regenerate every artifact in parallel, with a warm cache:
//! use bench_suite::runner::{run_all, MatrixParams};
//! let summary = run_all(&MatrixParams::paper(), 4, &|_event| {});
//! assert_eq!(summary.artifacts.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod opt_bench;
pub mod polyfit;
pub mod programs;
pub mod report;
pub mod runner;
pub mod sim_bench;
