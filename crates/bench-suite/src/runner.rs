//! Parallel artifact pipeline: fan the full experiment matrix across
//! worker threads, backed by the content-addressed compile cache.
//!
//! `spire-cli report` (and the pipeline tests) drive the evaluation
//! through this module instead of calling the [`crate::experiments`]
//! regenerators one by one. A run has two phases, both scheduled over the
//! same [`run_jobs`] worker pool built on [`std::thread::scope`]:
//!
//! 1. **Warm** — the deduplicated compile matrix (every benchmark ×
//!    depth × [`OptConfig`] combination any artifact will request) is
//!    compiled in parallel into [`CompileCache::global`]. Compilation is
//!    the pipeline's dominant cost and the matrix overlaps heavily
//!    between artifacts, so this phase converts the artifact phase's
//!    compiles into cache hits.
//! 2. **Artifacts** — every [`ArtifactSpec`] regenerates its table or
//!    figure (one job per artifact); their compiles hit the warm cache.
//!
//! A second [`run_all`] in the same process reuses the cache from the
//! first and is substantially faster — the pipeline test asserts this,
//! along with the multi-threaded execution, via [`RunSummary`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use spire::{CacheKey, CacheStats, CompileCache, CompileOptions, OptConfig};
use tower::WordConfig;

use crate::experiments;
use crate::programs::all_benchmarks;
use crate::report::Artifact;

/// Size parameters of the experiment matrix.
///
/// [`MatrixParams::paper`] reproduces the evaluation at the paper's
/// scale; [`MatrixParams::quick`] is a small instance of the same matrix
/// for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct MatrixParams {
    /// Figures sweep recursion depths `2..=max_depth`; Table 1 fits its
    /// polynomials on the same range (paper: 10).
    pub max_depth: i64,
    /// Depth of the Table 2 timing comparison (paper: 10).
    pub table_depth: i64,
    /// Depths of the Table 4 uncomputation/qubit accounting (paper: 2, 10).
    pub table4_depths: Vec<i64>,
    /// Maximum depth of the Table 5/6 search-optimizer sweep (paper: 5).
    pub search_depth: i64,
    /// Depth of the Appendix A bit-width sweep (paper figure: 6).
    pub width_depth: i64,
    /// `uint` bit widths of the Appendix A sweep.
    pub widths: Vec<u32>,
}

impl MatrixParams {
    /// The paper-scale matrix (the committed `reports/` snapshot).
    pub fn paper() -> Self {
        MatrixParams {
            max_depth: 10,
            table_depth: 10,
            table4_depths: vec![2, 10],
            search_depth: 5,
            width_depth: 6,
            widths: vec![2, 4, 8, 12, 16],
        }
    }

    /// A reduced matrix with the same artifact set, for tests.
    pub fn quick() -> Self {
        MatrixParams {
            max_depth: 5,
            table_depth: 3,
            table4_depths: vec![2, 3],
            search_depth: 2,
            width_depth: 3,
            widths: vec![2, 4],
        }
    }
}

/// One regenerable artifact of the evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// Artifact identifier; also the `reports/<id>.{md,json}` file stem.
    pub id: &'static str,
    /// What the artifact reproduces in the paper.
    pub paper_ref: &'static str,
    /// The [`crate::experiments`] function behind it.
    pub function: &'static str,
    run: fn(&MatrixParams) -> Artifact,
}

impl ArtifactSpec {
    /// Regenerate the artifact at the given matrix size.
    pub fn run(&self, params: &MatrixParams) -> Artifact {
        (self.run)(params)
    }
}

/// The complete artifact set, in the paper's order.
pub fn artifact_specs() -> Vec<ArtifactSpec> {
    vec![
        ArtifactSpec {
            id: "fig2",
            paper_ref: "Figure 2",
            function: "experiments::fig2",
            run: |p| Artifact::Figure(experiments::fig2(2..=p.max_depth)),
        },
        ArtifactSpec {
            id: "fig12",
            paper_ref: "Figures 12a and 12b",
            function: "experiments::fig12",
            run: |p| Artifact::Figure(experiments::fig12(2..=p.max_depth)),
        },
        ArtifactSpec {
            id: "fig15a",
            paper_ref: "Figure 15a",
            function: "experiments::fig15a",
            run: |p| Artifact::Figure(experiments::fig15a(2..=p.max_depth)),
        },
        ArtifactSpec {
            id: "fig15b",
            paper_ref: "Figure 15b",
            function: "experiments::fig15b",
            run: |p| Artifact::Figure(experiments::fig15b(2..=p.max_depth)),
        },
        ArtifactSpec {
            id: "table1",
            paper_ref: "Tables 1 and 3",
            function: "experiments::table1",
            run: |p| Artifact::Table(experiments::table1(p.max_depth)),
        },
        ArtifactSpec {
            id: "table2",
            paper_ref: "Table 2",
            function: "experiments::table2",
            run: |p| Artifact::Table(experiments::table2(p.table_depth)),
        },
        ArtifactSpec {
            id: "table4",
            paper_ref: "Table 4 (Appendix F)",
            function: "experiments::table4",
            run: |p| Artifact::Table(experiments::table4(&p.table4_depths)),
        },
        ArtifactSpec {
            id: "table5",
            paper_ref: "Tables 5 and 6 (Appendix G)",
            function: "experiments::table5",
            run: |p| Artifact::Table(experiments::table5(p.search_depth)),
        },
        ArtifactSpec {
            id: "fig24",
            paper_ref: "Figure 24 (Appendix H)",
            function: "experiments::fig24",
            run: |p| Artifact::Figure(experiments::fig24(2..=p.max_depth)),
        },
        ArtifactSpec {
            id: "appendix-a",
            paper_ref: "Appendix A",
            function: "experiments::appendix_a",
            run: |p| Artifact::Table(experiments::appendix_a(p.width_depth, &p.widths)),
        },
    ]
}

/// Concurrency observed by a [`run_jobs`] pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelismStats {
    /// Highest number of jobs observed in flight at once.
    pub peak: usize,
    /// Workers that executed at least one job.
    pub workers_engaged: usize,
}

impl ParallelismStats {
    fn merge(self, other: ParallelismStats) -> ParallelismStats {
        ParallelismStats {
            peak: self.peak.max(other.peak),
            workers_engaged: self.workers_engaged.max(other.workers_engaged),
        }
    }
}

/// Run `worker` over `items` on up to `threads` scoped worker threads.
///
/// Jobs are pulled from a shared atomic queue (no static partitioning, so
/// a slow artifact does not idle the other workers) and results are
/// returned in item order. A panicking job propagates after the scope
/// joins, like any `std::thread::scope` panic.
pub fn run_jobs<T, R, F>(items: &[T], threads: usize, worker: F) -> (Vec<R>, ParallelismStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let active = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let engaged = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut first_job = true;
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    if first_job {
                        engaged.fetch_add(1, Ordering::Relaxed);
                        first_job = false;
                    }
                    let in_flight = active.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(in_flight, Ordering::Relaxed);
                    let result = worker(index, &items[index]);
                    active.fetch_sub(1, Ordering::Relaxed);
                    *results[index].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    let results = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect();
    (
        results,
        ParallelismStats {
            peak: peak.load(Ordering::Relaxed),
            workers_engaged: engaged.load(Ordering::Relaxed),
        },
    )
}

/// One compile job of the warm phase.
#[derive(Debug, Clone)]
struct WarmJob {
    source: String,
    entry: &'static str,
    depth: i64,
    config: WordConfig,
    options: CompileOptions,
}

/// The deduplicated compile matrix behind the artifact set: every
/// benchmark × depth × optimization configuration any artifact requests
/// through the cache (Table 2 compiles fresh by design — its artifact is
/// the compile time — and is deliberately absent).
fn warm_jobs(params: &MatrixParams) -> Vec<WarmJob> {
    let mut jobs = Vec::new();
    let mut seen: HashSet<CacheKey> = HashSet::new();
    let mut push = |source: &str, entry: &'static str, depth: i64, config, options| {
        let key = CacheKey::new(source, entry, depth, config, &options);
        if seen.insert(key) {
            jobs.push(WarmJob {
                source: source.to_string(),
                entry,
                depth,
                config,
                options,
            });
        }
    };
    let paper = WordConfig::paper_default();
    let all_configs = [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ];
    for bench in all_benchmarks() {
        // The figure sweeps run `length` and `length-simplified` under
        // every configuration; Tables 1 and 4 run the whole suite under
        // baseline and Spire.
        let configs: &[OptConfig] = if bench.name == "length" || bench.name == "length-simple" {
            &all_configs
        } else {
            &[OptConfig::none(), OptConfig::spire()]
        };
        let depths: Vec<i64> = if bench.constant {
            vec![0]
        } else {
            (2..=params.max_depth).collect()
        };
        for &depth in &depths {
            for &opt in configs {
                push(
                    &bench.source,
                    bench.entry,
                    depth,
                    paper,
                    CompileOptions::with_opt(opt),
                );
            }
        }
        // Table 5 compiles `length-simplified` from depth 1.
        if bench.name == "length-simple" {
            push(
                &bench.source,
                bench.entry,
                1,
                paper,
                CompileOptions::baseline(),
            );
        }
    }
    // Appendix A sweeps the register width at a fixed depth.
    let length = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "length")
        .expect("length benchmark exists");
    for &uint_bits in &params.widths {
        let config = WordConfig {
            uint_bits,
            ptr_bits: 4,
        };
        push(
            &length.source,
            length.entry,
            params.width_depth,
            config,
            CompileOptions::baseline(),
        );
        push(
            &length.source,
            length.entry,
            params.width_depth,
            config,
            CompileOptions::spire(),
        );
    }
    jobs
}

/// Progress events emitted by [`run_all`].
#[derive(Debug, Clone, Copy)]
pub enum RunnerEvent {
    /// The warm phase is starting.
    WarmStart {
        /// Deduplicated compile jobs in the matrix.
        jobs: usize,
        /// Worker threads in the pool.
        threads: usize,
    },
    /// The warm phase finished.
    WarmDone {
        /// Compile jobs executed.
        jobs: usize,
        /// Wall-clock time of the phase.
        wall: Duration,
    },
    /// One artifact finished regenerating.
    ArtifactDone {
        /// The artifact's identifier.
        id: &'static str,
        /// Wall-clock time this artifact took.
        wall: Duration,
        /// Artifacts finished so far (including this one).
        done: usize,
        /// Total artifacts in the run.
        total: usize,
    },
}

/// One regenerated artifact with its provenance and timing.
#[derive(Debug, Clone)]
pub struct ArtifactResult {
    /// The spec that produced it.
    pub spec: ArtifactSpec,
    /// The regenerated table or figure.
    pub artifact: Artifact,
    /// Wall-clock time of this artifact's job.
    pub wall: Duration,
}

/// The outcome of one full pipeline run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Every artifact, in the paper's order.
    pub artifacts: Vec<ArtifactResult>,
    /// Wall-clock time of the whole run (warm + artifacts).
    pub wall: Duration,
    /// Wall-clock time of the warm phase alone.
    pub warm_wall: Duration,
    /// Worker threads requested.
    pub threads: usize,
    /// Compile jobs in the (deduplicated) warm matrix.
    pub warm_jobs: usize,
    /// Concurrency actually observed across both phases.
    pub parallelism: ParallelismStats,
    /// Compile-cache activity during this run (hits/misses are the delta
    /// since the run started; `entries` is the cache's current size).
    pub cache: CacheStats,
}

/// Default worker count: the machine's parallelism, at least 2 (the
/// pipeline is specified to be parallel) and capped at 8 (the matrix
/// stops scaling well beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(2, std::num::NonZero::get)
        .clamp(2, 8)
}

/// Run the full artifact pipeline: warm the compile cache across the
/// experiment matrix, then regenerate every artifact, all on `threads`
/// workers. `on_event` receives progress callbacks (possibly from worker
/// threads; it must be `Sync`).
pub fn run_all(
    params: &MatrixParams,
    threads: usize,
    on_event: &(dyn Fn(RunnerEvent) + Sync),
) -> RunSummary {
    let started = Instant::now();
    let cache = CompileCache::global();
    let stats_before = cache.stats();

    let jobs = warm_jobs(params);
    on_event(RunnerEvent::WarmStart {
        jobs: jobs.len(),
        threads,
    });
    let warm_started = Instant::now();
    let (_, warm_parallelism) = run_jobs(&jobs, threads, |_, job| {
        cache
            .get_or_compile(&job.source, job.entry, job.depth, job.config, &job.options)
            .unwrap_or_else(|e| panic!("warming {} at depth {}: {e}", job.entry, job.depth));
    });
    let warm_wall = warm_started.elapsed();
    on_event(RunnerEvent::WarmDone {
        jobs: jobs.len(),
        wall: warm_wall,
    });

    let specs = artifact_specs();
    let total = specs.len();
    let done = AtomicUsize::new(0);
    let (artifacts, artifact_parallelism) = run_jobs(&specs, threads, |_, spec| {
        let job_started = Instant::now();
        let artifact = spec.run(params);
        let wall = job_started.elapsed();
        on_event(RunnerEvent::ArtifactDone {
            id: spec.id,
            wall,
            done: done.fetch_add(1, Ordering::Relaxed) + 1,
            total,
        });
        ArtifactResult {
            spec: *spec,
            artifact,
            wall,
        }
    });

    RunSummary {
        artifacts,
        wall: started.elapsed(),
        warm_wall,
        threads,
        warm_jobs: jobs.len(),
        parallelism: warm_parallelism.merge(artifact_parallelism),
        cache: cache.stats().since(&stats_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_matrix_is_deduplicated() {
        let params = MatrixParams::quick();
        let jobs = warm_jobs(&params);
        let keys: HashSet<CacheKey> = jobs
            .iter()
            .map(|j| CacheKey::new(&j.source, j.entry, j.depth, j.config, &j.options))
            .collect();
        assert_eq!(keys.len(), jobs.len(), "warm jobs must be unique");
        // 12 benchmarks × depths × ≥2 configs: the matrix is real.
        assert!(jobs.len() > 50, "matrix too small: {}", jobs.len());
    }

    #[test]
    fn run_jobs_preserves_order_and_runs_everything() {
        let items: Vec<usize> = (0..64).collect();
        let (results, parallelism) = run_jobs(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(results, (0..64).map(|x| x * 2).collect::<Vec<_>>());
        assert!(parallelism.workers_engaged >= 1);
    }

    #[test]
    fn specs_cover_every_experiment() {
        let ids: Vec<&str> = artifact_specs().iter().map(|s| s.id).collect();
        assert_eq!(
            ids,
            [
                "fig2",
                "fig12",
                "fig15a",
                "fig15b",
                "table1",
                "table2",
                "table4",
                "table5",
                "fig24",
                "appendix-a",
            ]
        );
    }
}
