//! Machine-readable simulator performance trajectory (`BENCH_sim.json`).
//!
//! The sparse simulator is the workhorse of every equivalence suite in
//! the workspace (the differential harness, the analyzer ground-truth
//! checks, `/simulate`), so whole-circuit throughput is a first-class
//! performance surface. This module measures gates/second on three
//! workloads — the differential harness's structured 24-qubit state on
//! `u64` keys, the same shape at 192 qubits on 256-bit keys, and a
//! support-heavy Hadamard workload that stresses branching — and
//! serializes the result together with the pinned pre-batching baseline,
//! so every future PR compares against a recorded trajectory.
//!
//! Methodology: every workload is **warmed first** (untimed runs until a
//! fixed warm-up budget elapses) and then timed over a fixed rep count.
//! The warm-up matters: a cold first measurement right after a large
//! allocation-heavy phase reads 2× slower than steady state, which is
//! cold-start cost, not simulation cost — the same distinction the
//! serving load test draws with its warmup section.
//!
//! The `sim_throughput` criterion bench target writes the file at the
//! repository root; its `--quick` mode is what CI runs and uploads.

use std::time::{Duration, Instant};

use qcirc::sim::{Simulator, SparseState, SparseState256};
use qcirc::{Circuit, Gate};

use crate::report::json_string;

/// One measured workload: warm gates/second of whole-circuit sparse
/// simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMeasurement {
    /// Workload name (`structured-24`, `structured-192`, …).
    pub workload: &'static str,
    /// Register width.
    pub qubits: u32,
    /// Gates per run of the workload circuit.
    pub gates: u64,
    /// Timed repetitions the average is taken over.
    pub reps: u32,
    /// Warm wall-clock seconds per whole-circuit run (averaged).
    pub seconds_per_run: f64,
}

impl SimMeasurement {
    /// Gates applied per second of simulation.
    pub fn gates_per_second(&self) -> f64 {
        if self.seconds_per_run > 0.0 {
            self.gates as f64 / self.seconds_per_run
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\":{},\"qubits\":{},\"gates\":{},\"reps\":{},\
             \"seconds_per_run\":{:.9},\"gates_per_second\":{:.0}}}",
            json_string(self.workload),
            self.qubits,
            self.gates,
            self.reps,
            self.seconds_per_run,
            self.gates_per_second(),
        )
    }
}

/// The commit whose timings are pinned as [`baseline`]: the last commit
/// before the batched wide-key execution engine, when `run` applied
/// gates one at a time through `apply_view`.
pub const BASELINE_COMMIT: &str = "01f6b8f";

/// The pre-batching measurement (gate-at-a-time `run`, `u64` keys only),
/// taken on the reference machine under the same warm methodology the
/// fresh run uses. One row: the engine had no wide-key or support-heavy
/// configuration to measure.
pub fn baseline() -> Vec<SimMeasurement> {
    vec![SimMeasurement {
        workload: "structured-24",
        qubits: 24,
        gates: 95,
        reps: 200_000,
        seconds_per_run: 6.710e-6,
    }]
}

/// The workload the acceptance criterion tracks: the differential
/// harness's structured state at its 24-qubit floor.
pub const HEADLINE: &str = "structured-24";

/// Entangling ladder + T layer + unwind + NOT layer: ~4n gates, support
/// never above 2 — the state shape compiled Tower programs actually
/// reach, and the shape the differential harness simulates all day.
pub fn structured_workload(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for q in 1..n {
        c.push(Gate::cnot(q - 1, q));
    }
    for q in 0..n {
        c.push(Gate::T(q));
    }
    for q in (1..n).rev() {
        c.push(Gate::cnot(q - 1, q));
    }
    for q in 0..n {
        c.push(Gate::x(q));
    }
    c
}

/// Hadamard-heavy workload: `h` Hadamards fan the support out to 2ʰ,
/// a CNOT ladder entangles, a T layer phases, and a second Hadamard
/// layer interferes half the branches — the branching shape that
/// stresses batch expansion rather than key plumbing.
pub fn support_heavy_workload(n: u32, h: u32) -> Circuit {
    assert!(h < n, "need a non-Hadamard qubit to entangle into");
    let mut c = Circuit::new(n);
    for q in 0..h {
        c.push(Gate::h(q));
    }
    for q in 0..h {
        c.push(Gate::cnot(q, (q + h) % n));
    }
    for q in 0..h {
        c.push(Gate::T(q));
    }
    for q in 0..h / 2 {
        c.push(Gate::h(q));
    }
    c
}

/// Warm the workload until `budget` elapses, then time `reps` runs.
fn measure<S: Simulator>(
    workload: &'static str,
    circuit: &Circuit,
    reps: u32,
    budget: Duration,
) -> SimMeasurement {
    let one_run = || {
        let mut state = S::zeroed(circuit.num_qubits()).expect("workload fits the backend");
        state.run(circuit).expect("workload runs");
        std::hint::black_box(state.num_qubits());
    };
    let warm_until = Instant::now() + budget;
    while Instant::now() < warm_until {
        one_run();
    }
    let start = Instant::now();
    for _ in 0..reps {
        one_run();
    }
    let seconds_per_run = start.elapsed().as_secs_f64() / f64::from(reps);
    SimMeasurement {
        workload,
        qubits: circuit.num_qubits(),
        gates: circuit.len() as u64,
        reps,
        seconds_per_run,
    }
}

/// The measured trajectory of one run plus the pinned baseline.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// `"full"` or `"quick"` (reduced rep counts for CI smoke runs).
    pub mode: &'static str,
    /// Fresh measurements from this run.
    pub entries: Vec<SimMeasurement>,
}

impl SimBenchReport {
    /// Speedup of the [`HEADLINE`] workload versus the recorded
    /// baseline.
    pub fn headline_speedup(&self) -> Option<f64> {
        let find = |entries: &[SimMeasurement]| {
            entries
                .iter()
                .find(|e| e.workload == HEADLINE)
                .map(|e| e.seconds_per_run)
        };
        let base = find(&baseline())?;
        let now = find(&self.entries)?;
        (now > 0.0).then(|| base / now)
    }

    /// Serialize the trajectory (fresh run, baseline, headline speedup)
    /// as a JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self.entries.iter().map(SimMeasurement::to_json).collect();
        let base: Vec<String> = baseline().iter().map(SimMeasurement::to_json).collect();
        let headline = match self.headline_speedup() {
            Some(speedup) => format!(
                "{{\"workload\":{},\"speedup_vs_baseline\":{:.2}}}",
                json_string(HEADLINE),
                speedup
            ),
            None => "null".into(),
        };
        format!(
            "{{\"schema\":1,\"mode\":{},\"headline\":{},\
             \"baseline\":{{\"commit\":{},\"entries\":[{}]}},\
             \"current\":{{\"entries\":[{}]}}}}\n",
            json_string(self.mode),
            headline,
            json_string(BASELINE_COMMIT),
            base.join(","),
            entries.join(","),
        )
    }
}

/// Measure the simulator matrix. `quick` shrinks the rep counts and
/// warm-up budgets for CI smoke runs; both modes measure the same three
/// workloads, including [`HEADLINE`].
pub fn run(quick: bool) -> SimBenchReport {
    let (mode, scale) = if quick { ("quick", 10) } else { ("full", 1) };
    let budget = Duration::from_millis(if quick { 40 } else { 200 });
    let entries = vec![
        measure::<SparseState>(
            "structured-24",
            &structured_workload(24),
            200_000 / scale,
            budget,
        ),
        measure::<SparseState256>(
            "structured-192",
            &structured_workload(192),
            20_000 / scale,
            budget,
        ),
        measure::<SparseState>(
            "support-heavy-20",
            &support_heavy_workload(20, 12),
            20 / scale,
            budget,
        ),
    ];
    SimBenchReport { mode, entries }
}

/// Write a report as `BENCH_sim.json` in `dir`, returning the path.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_json(
    report: &SimBenchReport,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("BENCH_sim.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_measures_every_workload() {
        let report = run(true);
        assert_eq!(report.mode, "quick");
        assert_eq!(report.entries.len(), 3);
        for entry in &report.entries {
            assert!(
                entry.seconds_per_run > 0.0,
                "{} took no time",
                entry.workload
            );
            assert!(entry.gates > 0);
            assert!(entry.gates_per_second() > 0.0);
        }
        let speedup = report.headline_speedup().expect("headline measured");
        assert!(speedup > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains(BASELINE_COMMIT));
        assert!(json.contains("\"speedup_vs_baseline\""));
    }

    #[test]
    fn workloads_have_the_advertised_shapes() {
        let structured = structured_workload(24);
        assert_eq!(structured.len(), 95);
        let mut state = SparseState::basis(24, 0).unwrap();
        state.run(&structured).unwrap();
        assert!(state.support() <= 2);

        let heavy = support_heavy_workload(20, 12);
        let mut state = SparseState::basis(20, 0).unwrap();
        state.run(&heavy).unwrap();
        assert!(state.support() >= 1 << 11, "support {}", state.support());
        assert!((state.norm() - 1.0).abs() < 1e-9);
    }
}
