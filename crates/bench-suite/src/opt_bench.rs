//! Machine-readable optimizer performance trajectory
//! (`BENCH_optimizer.json`).
//!
//! The paper's Section 8.5 evaluation re-runs every circuit-optimizer
//! analogue over the benchmark matrix, so optimizer pass time is the
//! dominant cost of `spire report` once the compile cache is warm. This
//! module measures per-pass wall time and gate throughput on the paper's
//! two headline programs and serializes the result — together with the
//! pinned pre-refactor baseline — so every future PR can compare against
//! a recorded trajectory instead of folklore.
//!
//! Two call sites write the file at the repository root:
//!
//! * `spire-cli report` (after the artifact pipeline), and
//! * the `optimizer_time` criterion bench target (its `--quick` mode is
//!   what CI runs and uploads).

use std::time::Instant;

use qopt::{
    AdjacentCancel, CircuitOptimizer, CliffordTResynth, GlobalResynth, Peephole, PhaseFoldLight,
    ToffoliCancel, ZxGraphLike,
};
use spire::{compile_source_cached, CompileOptions};
use tower::WordConfig;

use crate::programs::{LENGTH, LENGTH_SIMPLE};
use crate::report::json_string;

/// One measured optimizer pass over one compiled benchmark circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct PassMeasurement {
    /// Benchmark program name.
    pub benchmark: &'static str,
    /// Recursion depth the program was compiled at.
    pub depth: i64,
    /// Optimizer pass name (`CircuitOptimizer::name`).
    pub optimizer: &'static str,
    /// Wall-clock seconds for one `optimize` call.
    pub seconds: f64,
    /// Gates in the MCX-level input circuit.
    pub gates_in: u64,
    /// Gates in the optimized Clifford+T output circuit.
    pub gates_out: u64,
    /// T-count of the output circuit.
    pub t_count: u64,
}

impl PassMeasurement {
    /// Input gates processed per second of pass time.
    pub fn gates_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.gates_in as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"benchmark\":{},\"depth\":{},\"optimizer\":{},\"seconds\":{:.6},\
             \"gates_in\":{},\"gates_out\":{},\"t_count\":{},\"gates_per_second\":{:.1}}}",
            json_string(self.benchmark),
            self.depth,
            json_string(self.optimizer),
            self.seconds,
            self.gates_in,
            self.gates_out,
            self.t_count,
            self.gates_per_second(),
        )
    }
}

/// The commit whose timings are pinned as [`baseline`]: the last commit
/// before the footprint-indexed gate stream refactor.
pub const BASELINE_COMMIT: &str = "8a163cc";

/// The pre-refactor timings (boxed-gate-list circuits, `Vec::remove`
/// cancellation, `Vec::contains` commutation), measured on the reference
/// machine at the paper matrix. Gate counts are load-bearing — any drift
/// in `gates_out`/`t_count` against a fresh run means an optimizer
/// changed behavior, not just speed — while the seconds are a trajectory
/// anchor.
pub fn baseline() -> Vec<PassMeasurement> {
    let m = |benchmark, depth, optimizer, seconds, gates_in, gates_out, t_count| PassMeasurement {
        benchmark,
        depth,
        optimizer,
        seconds,
        gates_in,
        gates_out,
        t_count,
    };
    vec![
        m(
            "length-simplified",
            10,
            "adjacent-cancel",
            0.0200,
            800,
            69278,
            32172,
        ),
        m(
            "length-simplified",
            10,
            "peephole",
            0.0177,
            800,
            68578,
            32172,
        ),
        m(
            "length-simplified",
            10,
            "phase-fold",
            0.0314,
            800,
            54133,
            19252,
        ),
        m(
            "length-simplified",
            10,
            "zx-graphlike",
            0.0428,
            800,
            54133,
            19252,
        ),
        m(
            "length-simplified",
            10,
            "feynman-tocliffordt",
            0.1186,
            800,
            49451,
            14704,
        ),
        m(
            "length-simplified",
            10,
            "feynman-mctexpand",
            0.0076,
            800,
            11407,
            4492,
        ),
        m(
            "length-simplified",
            10,
            "global-resynth",
            0.2141,
            800,
            10307,
            3212,
        ),
        m(
            "length",
            10,
            "adjacent-cancel",
            0.2680,
            14420,
            831424,
            384160,
        ),
        m("length", 10, "peephole", 0.2646, 14420, 829048, 384160),
        m("length", 10, "phase-fold", 0.7403, 14420, 651684, 229564),
        m("length", 10, "zx-graphlike", 0.8583, 14420, 651684, 229564),
        m(
            "length",
            10,
            "feynman-tocliffordt",
            2.8655,
            14420,
            601472,
            179248,
        ),
        m(
            "length",
            10,
            "feynman-mctexpand",
            0.2433,
            14420,
            228630,
            84696,
        ),
        m("length", 10, "global-resynth", 5.6523, 14420, 206323, 56194),
    ]
}

/// The measured trajectory of one run plus the pinned baseline.
#[derive(Debug, Clone)]
pub struct OptBenchReport {
    /// `"paper"` (depth-10 matrix) or `"quick"` (reduced smoke matrix).
    pub mode: &'static str,
    /// Fresh measurements from this run.
    pub entries: Vec<PassMeasurement>,
}

/// The configuration the acceptance criterion tracks: the
/// unbounded-window resynthesis pass on the deepest benchmark.
pub const HEADLINE: (&str, i64, &str) = ("length", 10, "global-resynth");

impl OptBenchReport {
    /// Speedup of the headline configuration versus the recorded
    /// baseline, when this run measured it (`paper` mode only).
    pub fn headline_speedup(&self) -> Option<f64> {
        let find = |entries: &[PassMeasurement]| {
            entries
                .iter()
                .find(|e| (e.benchmark, e.depth, e.optimizer) == HEADLINE)
                .map(|e| e.seconds)
        };
        let base = find(&baseline())?;
        let now = find(&self.entries)?;
        (now > 0.0).then(|| base / now)
    }

    /// Serialize the trajectory (fresh run, baseline, headline speedup)
    /// as a JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self.entries.iter().map(PassMeasurement::to_json).collect();
        let base: Vec<String> = baseline().iter().map(PassMeasurement::to_json).collect();
        let headline = match self.headline_speedup() {
            Some(speedup) => format!(
                "{{\"benchmark\":{},\"depth\":{},\"optimizer\":{},\"speedup_vs_baseline\":{:.2}}}",
                json_string(HEADLINE.0),
                HEADLINE.1,
                json_string(HEADLINE.2),
                speedup
            ),
            None => "null".into(),
        };
        format!(
            "{{\"schema\":1,\"mode\":{},\"headline\":{},\
             \"baseline\":{{\"commit\":{},\"entries\":[{}]}},\
             \"current\":{{\"entries\":[{}]}}}}\n",
            json_string(self.mode),
            headline,
            json_string(BASELINE_COMMIT),
            base.join(","),
            entries.join(","),
        )
    }
}

fn optimizers() -> Vec<Box<dyn CircuitOptimizer>> {
    vec![
        Box::new(AdjacentCancel),
        Box::new(Peephole),
        Box::new(PhaseFoldLight),
        Box::new(ZxGraphLike),
        Box::new(CliffordTResynth),
        Box::new(ToffoliCancel),
        Box::new(GlobalResynth),
    ]
}

/// Measure the optimizer matrix: every fixed-strategy pass over the
/// headline benchmarks. `quick` shrinks the matrix (one program, depth 6)
/// for CI smoke runs; the full mode measures the paper's depth-10
/// configuration, including [`HEADLINE`].
pub fn run(quick: bool) -> OptBenchReport {
    let (mode, matrix): (&'static str, Vec<(&'static str, &str, &str, i64)>) = if quick {
        (
            "quick",
            vec![("length-simplified", LENGTH_SIMPLE, "length_simple", 6)],
        )
    } else {
        (
            "paper",
            vec![
                ("length-simplified", LENGTH_SIMPLE, "length_simple", 10),
                ("length", LENGTH, "length", 10),
            ],
        )
    };
    let mut entries = Vec::new();
    for (benchmark, source, entry, depth) in matrix {
        let compiled = compile_source_cached(
            source,
            entry,
            depth,
            WordConfig::paper_default(),
            &CompileOptions::baseline(),
        )
        .unwrap_or_else(|e| panic!("compiling {benchmark} at depth {depth}: {e}"));
        let circuit = compiled.emit();
        for optimizer in optimizers() {
            let start = Instant::now();
            let out = qopt::run_traced(optimizer.as_ref(), &circuit);
            let seconds = start.elapsed().as_secs_f64();
            entries.push(PassMeasurement {
                benchmark,
                depth,
                optimizer: optimizer.name(),
                seconds,
                gates_in: circuit.len() as u64,
                gates_out: out.len() as u64,
                t_count: out.clifford_t_counts().t_count(),
            });
        }
    }
    OptBenchReport { mode, entries }
}

/// Write a report as `BENCH_optimizer.json` in `dir`, returning the path.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_json(
    report: &OptBenchReport,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("BENCH_optimizer.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_measures_every_optimizer_with_stable_counts() {
        let report = run(true);
        assert_eq!(report.mode, "quick");
        assert_eq!(report.entries.len(), 7);
        for entry in &report.entries {
            assert!(entry.seconds >= 0.0);
            assert!(entry.gates_in > 0);
            assert!(entry.gates_out > 0, "{} emitted nothing", entry.optimizer);
            assert!(entry.gates_per_second() > 0.0);
        }
        // Determinism of the counts (not the timings): a second run
        // produces the same circuit sizes.
        let again = run(true);
        for (a, b) in report.entries.iter().zip(&again.entries) {
            assert_eq!(
                (a.gates_out, a.t_count),
                (b.gates_out, b.t_count),
                "{}",
                a.optimizer
            );
        }
        // Quick mode has no depth-10 headline measurement.
        assert!(report.headline_speedup().is_none());
        assert!(report.to_json().contains("\"headline\":null"));
    }

    #[test]
    fn json_embeds_baseline_and_current() {
        let report = OptBenchReport {
            mode: "paper",
            entries: vec![PassMeasurement {
                benchmark: "length",
                depth: 10,
                optimizer: "global-resynth",
                seconds: 0.5,
                gates_in: 14420,
                gates_out: 206323,
                t_count: 56194,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":1"));
        assert!(json.contains(BASELINE_COMMIT));
        assert!(json.contains("\"speedup_vs_baseline\":11.30"), "{json}");
        assert!(json.contains("\"gates_per_second\""));
        // The baseline table carries the full pre-refactor matrix.
        assert_eq!(baseline().len(), 14);
    }
}
