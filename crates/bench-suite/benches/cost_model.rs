//! Criterion benchmark for the cost model itself (paper Section 5's
//! motivation): a developer should not have to "repeatedly compile [the
//! program] to a large circuit and count its gates". Compares the
//! syntax-level histogram evaluation against stream-counting the emitted
//! circuit, on the most expensive benchmark (radix-tree insert).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench_suite::programs::insert_source;
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

fn bench_cost_model(c: &mut Criterion) {
    let source = insert_source();
    let compiled = compile_source(
        &source,
        "insert",
        6,
        WordConfig::paper_default(),
        &CompileOptions::baseline(),
    )
    .expect("insert compiles");

    let mut group = c.benchmark_group("cost-of-costing-insert-d6");
    group.sample_size(10);
    group.bench_function("cost-model-histogram", |b| {
        b.iter(|| black_box(&compiled).histogram().t_complexity());
    });
    group.bench_function("emit-and-count", |b| {
        b.iter(|| black_box(&compiled).counted_histogram().t_complexity());
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
