//! Criterion benchmark for paper Table 2's compile-time column: how long
//! Spire takes to emit a circuit for `length` and `length-simplified`,
//! with and without program-level optimizations. The paper's headline:
//! optimizing the program *before* compiling is faster than compiling,
//! because the large circuit is never created.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench_suite::programs::{LENGTH, LENGTH_SIMPLE};
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for (name, source, entry) in [
        ("length", LENGTH, "length"),
        ("length-simple", LENGTH_SIMPLE, "length_simple"),
    ] {
        for depth in [5i64, 10] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/baseline"), depth),
                &depth,
                |b, &depth| {
                    b.iter(|| {
                        compile_source(
                            black_box(source),
                            entry,
                            depth,
                            WordConfig::paper_default(),
                            &CompileOptions::baseline(),
                        )
                        .unwrap()
                        .t_complexity()
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/spire"), depth),
                &depth,
                |b, &depth| {
                    b.iter(|| {
                        compile_source(
                            black_box(source),
                            entry,
                            depth,
                            WordConfig::paper_default(),
                            &CompileOptions::spire(),
                        )
                        .unwrap()
                        .t_complexity()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
