//! Dense vs. sparse simulation throughput on a structured-state workload.
//!
//! The workload is the kind of state Tower programs actually reach: a
//! GHZ-style entangling ladder, a T-phase layer, and the ladder's unwind —
//! wide superposition structure but tiny support. The dense backend pays
//! O(2ⁿ) per gate regardless; the sparse backend pays O(support). At the
//! differential harness's 24-qubit floor the gap is measured in orders of
//! magnitude, which is what makes paper-sized equivalence checking
//! tractable.
//!
//! Alongside the criterion timings, the target prints an explicit
//! gates/sec comparison (the `sim_throughput summary` block) that CI
//! uploads as a build artifact.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcirc::sim::{SparseState, StateVec};
use qcirc::{Circuit, Gate};

/// Entangling ladder + phase layer + unwind + NOT layer: ~4n gates, never
/// more than 2 nonzero amplitudes.
fn structured_workload(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for q in 1..n {
        c.push(Gate::cnot(q - 1, q));
    }
    for q in 0..n {
        c.push(Gate::T(q));
    }
    for q in (1..n).rev() {
        c.push(Gate::cnot(q - 1, q));
    }
    for q in 0..n {
        c.push(Gate::x(q));
    }
    c
}

fn run_dense(circuit: &Circuit) -> f64 {
    let mut state = StateVec::basis(circuit.num_qubits(), 0).expect("dense fits");
    state.run(circuit).expect("runs");
    state.norm()
}

fn run_sparse(circuit: &Circuit) -> f64 {
    let mut state = SparseState::basis(circuit.num_qubits(), 0).expect("sparse fits");
    state.run(circuit).expect("runs");
    state.norm()
}

/// One-shot gates/sec measurement (the criterion stub reports durations;
/// this block reports the throughput numbers the ISSUE asks for).
fn print_summary(n: u32) {
    let circuit = structured_workload(n);
    let gates = circuit.len() as f64;

    let t = Instant::now();
    let norm = run_dense(&circuit);
    let dense_secs = t.elapsed().as_secs_f64();
    assert!((norm - 1.0).abs() < 1e-9);

    // The sparse run is too fast to time in one shot; batch it.
    let reps = 200;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(run_sparse(&circuit));
    }
    let sparse_secs = t.elapsed().as_secs_f64() / reps as f64;

    let dense_gps = gates / dense_secs;
    let sparse_gps = gates / sparse_secs;
    println!("\nsim_throughput summary ({n} qubits, {gates} gates, structured state)");
    println!("  dense  : {dense_gps:>14.0} gates/sec");
    println!("  sparse : {sparse_gps:>14.0} gates/sec");
    println!("  speedup: {:>14.1}x", sparse_gps / dense_gps);
}

fn sim_throughput(c: &mut Criterion) {
    print_summary(24);

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(2);
    let dense_circuit = structured_workload(24);
    group.bench_with_input(
        BenchmarkId::new("dense", 24),
        &dense_circuit,
        |b, circuit| b.iter(|| run_dense(circuit)),
    );
    group.finish();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(20);
    for n in [24u32, 40, 60] {
        let circuit = structured_workload(n);
        group.bench_with_input(BenchmarkId::new("sparse", n), &circuit, |b, circuit| {
            b.iter(|| run_sparse(circuit));
        });
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
