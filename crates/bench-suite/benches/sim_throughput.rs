//! Dense vs. sparse simulation throughput, and the `BENCH_sim.json`
//! perf trajectory.
//!
//! The headline workload is the kind of state Tower programs actually
//! reach: a GHZ-style entangling ladder, a T-phase layer, and the
//! ladder's unwind — wide superposition structure but tiny support. The
//! dense backend pays O(2ⁿ) per gate regardless; the sparse backend pays
//! O(support). At the differential harness's 24-qubit floor the gap is
//! measured in orders of magnitude, which is what makes paper-sized
//! equivalence checking tractable.
//!
//! Alongside the criterion timings, the target prints an explicit
//! gates/sec comparison (the `sim_throughput summary` block) and writes
//! the machine-readable trajectory `BENCH_sim.json` at the repo root
//! (warm gates/sec per workload, with the pinned pre-batching baseline;
//! see `bench_suite::sim_bench`). Pass `--quick` (or set
//! `SIM_BENCH_QUICK=1`) for the reduced rep counts CI runs and uploads.

use std::time::Instant;

use bench_suite::sim_bench::{self, structured_workload};
use criterion::{criterion_group, BenchmarkId, Criterion};
use qcirc::sim::{SparseState, SparseState256, StateVec};
use qcirc::Circuit;

fn quick_mode() -> bool {
    let env_quick = matches!(
        std::env::var("SIM_BENCH_QUICK").ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0"
    );
    std::env::args().any(|a| a == "--quick") || env_quick
}

fn run_dense(circuit: &Circuit) -> f64 {
    let mut state = StateVec::basis(circuit.num_qubits(), 0).expect("dense fits");
    state.run(circuit).expect("runs");
    state.norm()
}

fn run_sparse(circuit: &Circuit) -> f64 {
    let mut state = SparseState::basis(circuit.num_qubits(), 0).expect("sparse fits");
    state.run(circuit).expect("runs");
    state.norm()
}

fn run_sparse_wide(circuit: &Circuit) -> f64 {
    let mut state = SparseState256::basis(circuit.num_qubits(), 0).expect("wide sparse fits");
    state.run(circuit).expect("runs");
    state.norm()
}

/// One-shot dense-vs-sparse gates/sec comparison. The sparse side warms
/// up first (`sim_bench`'s methodology); the dense side is so slow that
/// a single cold run is already representative.
fn print_summary(n: u32, quick: bool) {
    let circuit = structured_workload(n);
    let gates = circuit.len() as f64;

    let t = Instant::now();
    let norm = run_dense(&circuit);
    let dense_secs = t.elapsed().as_secs_f64();
    assert!((norm - 1.0).abs() < 1e-9);

    let reps = if quick { 20_000 } else { 200_000 };
    for _ in 0..reps / 10 {
        std::hint::black_box(run_sparse(&circuit));
    }
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(run_sparse(&circuit));
    }
    let sparse_secs = t.elapsed().as_secs_f64() / f64::from(reps);

    let dense_gps = gates / dense_secs;
    let sparse_gps = gates / sparse_secs;
    println!("\nsim_throughput summary ({n} qubits, {gates} gates, structured state)");
    println!("  dense  : {dense_gps:>14.0} gates/sec");
    println!("  sparse : {sparse_gps:>14.0} gates/sec");
    println!("  speedup: {:>14.1}x", sparse_gps / dense_gps);
}

fn sim_throughput(c: &mut Criterion) {
    let quick = quick_mode();
    print_summary(24, quick);

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(2);
    let dense_circuit = structured_workload(24);
    group.bench_with_input(
        BenchmarkId::new("dense", 24),
        &dense_circuit,
        |b, circuit| b.iter(|| run_dense(circuit)),
    );
    group.finish();

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(20);
    for n in [24u32, 40, 60] {
        let circuit = structured_workload(n);
        group.bench_with_input(BenchmarkId::new("sparse", n), &circuit, |b, circuit| {
            b.iter(|| run_sparse(circuit));
        });
    }
    // Past the 64-bit key space: same workload shape on 256-bit keys.
    for n in [100u32, 192] {
        let circuit = structured_workload(n);
        group.bench_with_input(
            BenchmarkId::new("sparse-wide", n),
            &circuit,
            |b, circuit| {
                b.iter(|| run_sparse_wide(circuit));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);

fn main() {
    benches();
    let quick = quick_mode();
    let report = sim_bench::run(quick);
    // Bench binaries run with the package dir as cwd; write at the
    // workspace root, next to the other BENCH_*.json trajectories.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    match sim_bench::write_json(&report, repo_root) {
        Ok(path) => {
            println!(
                "\nwrote {} ({} mode, {} workloads)",
                path.display(),
                report.mode,
                report.entries.len()
            );
            if let Some(speedup) = report.headline_speedup() {
                println!(
                    "headline: {} runs {speedup:.1}x the {} baseline",
                    sim_bench::HEADLINE,
                    sim_bench::BASELINE_COMMIT,
                );
            }
        }
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
}
