//! Criterion benchmark for paper Table 2's optimizer-time rows: the cost
//! of recovering efficiency *after* compilation, per circuit optimizer
//! analogue, against Spire's program-level route. Reproduces the ordering
//! peephole < mctExpand-style < long-range resynthesis, with Spire's
//! own pass orders of magnitude cheaper than any of them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench_suite::programs::LENGTH_SIMPLE;
use qopt::{AdjacentCancel, CircuitOptimizer, GlobalResynth, PhaseFoldLight, ToffoliCancel};
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

fn bench_optimizers(c: &mut Criterion) {
    let depth = 8;
    let baseline = compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        depth,
        WordConfig::paper_default(),
        &CompileOptions::baseline(),
    )
    .expect("length-simplified compiles");
    let circuit = baseline.emit();

    let mut group = c.benchmark_group("optimize-length-simple-d8");
    group.sample_size(10);
    group.bench_function("qiskit-like-peephole", |b| {
        b.iter(|| AdjacentCancel.optimize(black_box(&circuit)).len())
    });
    group.bench_function("voqc-like-phasefold", |b| {
        b.iter(|| PhaseFoldLight.optimize(black_box(&circuit)).len())
    });
    group.bench_function("feynman-mctexpand", |b| {
        b.iter(|| ToffoliCancel.optimize(black_box(&circuit)).len())
    });
    group.bench_function("quizx-like-resynth", |b| {
        b.iter(|| GlobalResynth.optimize(black_box(&circuit)).len())
    });
    group.bench_function("spire-program-level", |b| {
        b.iter(|| {
            compile_source(
                black_box(LENGTH_SIMPLE),
                "length_simple",
                depth,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
            .unwrap()
            .t_complexity()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
