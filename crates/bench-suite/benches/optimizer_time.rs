//! Criterion benchmark for paper Table 2's optimizer-time rows: the cost
//! of recovering efficiency *after* compilation, per circuit optimizer
//! analogue, against Spire's program-level route. Reproduces the ordering
//! peephole < mctExpand-style < long-range resynthesis, with Spire's
//! own pass orders of magnitude cheaper than any of them.
//!
//! Besides the criterion loops, the target writes the machine-readable
//! perf trajectory `BENCH_optimizer.json` at the repo root (per-pass wall
//! times and gate throughput, with the pinned pre-refactor baseline; see
//! `bench_suite::opt_bench`). Pass `--quick` (or set `OPT_BENCH_QUICK=1`)
//! for the reduced smoke matrix CI runs and uploads.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use bench_suite::programs::LENGTH_SIMPLE;
use qopt::{AdjacentCancel, CircuitOptimizer, GlobalResynth, PhaseFoldLight, ToffoliCancel};
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

fn quick_mode() -> bool {
    let env_quick = matches!(
        std::env::var("OPT_BENCH_QUICK").ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0"
    );
    std::env::args().any(|a| a == "--quick") || env_quick
}

fn bench_optimizers(c: &mut Criterion) {
    let (depth, samples) = if quick_mode() { (5, 5) } else { (8, 10) };
    let baseline = compile_source(
        LENGTH_SIMPLE,
        "length_simple",
        depth,
        WordConfig::paper_default(),
        &CompileOptions::baseline(),
    )
    .expect("length-simplified compiles");
    let circuit = baseline.emit();

    let mut group = c.benchmark_group(format!("optimize-length-simple-d{depth}"));
    group.sample_size(samples);
    group.bench_function("qiskit-like-peephole", |b| {
        b.iter(|| AdjacentCancel.optimize(black_box(&circuit)).len());
    });
    group.bench_function("voqc-like-phasefold", |b| {
        b.iter(|| PhaseFoldLight.optimize(black_box(&circuit)).len());
    });
    group.bench_function("feynman-mctexpand", |b| {
        b.iter(|| ToffoliCancel.optimize(black_box(&circuit)).len());
    });
    group.bench_function("quizx-like-resynth", |b| {
        b.iter(|| GlobalResynth.optimize(black_box(&circuit)).len());
    });
    group.bench_function("spire-program-level", |b| {
        b.iter(|| {
            compile_source(
                black_box(LENGTH_SIMPLE),
                "length_simple",
                depth,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
            .unwrap()
            .t_complexity()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_optimizers);

fn main() {
    benches();
    let quick = quick_mode();
    let report = bench_suite::opt_bench::run(quick);
    // Bench binaries run with the package dir as cwd; write at the
    // workspace root, where `spire-cli report` puts the file too.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists");
    match bench_suite::opt_bench::write_json(&report, repo_root) {
        Ok(path) => {
            println!(
                "\nwrote {} ({} mode, {} passes)",
                path.display(),
                report.mode,
                report.entries.len()
            );
            if let Some(speedup) = report.headline_speedup() {
                println!(
                    "headline: {} at depth {} runs {speedup:.1}x the {} baseline",
                    bench_suite::opt_bench::HEADLINE.2,
                    bench_suite::opt_bench::HEADLINE.1,
                    bench_suite::opt_bench::BASELINE_COMMIT,
                );
            }
        }
        Err(e) => eprintln!("could not write BENCH_optimizer.json: {e}"),
    }
}
