//! Embeds build provenance into the binary: the git commit and rustc
//! version surface in `/metrics` as `build_info`, so an operator can
//! tell *which build* produced a latency regression without shelling
//! into the host. Both probes degrade to `"unknown"` — a tarball build
//! without `.git` or a stripped environment must still compile.

use std::process::Command;

fn probe(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let git_hash = probe("git", &["rev-parse", "--short=12", "HEAD"]);
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let rustc_version = probe(&rustc, &["--version"]);
    println!("cargo:rustc-env=SPIRE_BUILD_GIT_HASH={git_hash}");
    println!("cargo:rustc-env=SPIRE_BUILD_RUSTC={rustc_version}");
    // Re-run when HEAD moves so the hash stays honest in dev loops.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
