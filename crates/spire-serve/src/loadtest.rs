//! Closed- and open-loop load-test client and the `BENCH_serve.json`
//! perf trajectory.
//!
//! Each worker thread owns one keep-alive connection and drives it in a
//! closed loop — send a request, wait for the response, record the
//! latency, repeat — so offered load self-limits to what the server
//! sustains (the standard closed-loop model; throughput is the measured
//! outcome, not an input). The request mix cycles deterministically
//! (seeded per worker) over the paper's benchmark programs as `/compile`
//! requests, with configurable shares of `/simulate` on the running
//! example and `/check` (static verification) on the benchmark bodies.
//!
//! The closed loop measures *capacity*; it cannot measure *latency under
//! load*, because a closed loop slows its own arrival rate exactly when
//! the server slows down (coordinated omission). So after the closed
//! pass, an **open-loop sweep** replays the same mix at fixed arrival
//! rates — fractions of the just-measured capacity — from a shared
//! schedule: request *k* is due at `start + k/rate` regardless of how
//! the server is doing, and its latency is measured **from its scheduled
//! arrival time**, so time spent waiting behind a stalled schedule
//! counts against the server, not the client. The resulting
//! latency-under-load curve is serialized in the report's `open_loop`
//! array.
//!
//! After the sweep, a pair of short closed-loop passes measures the
//! **cost of tracing itself**: one pass with `?trace=1` on every request
//! (every span recorded, the trace tree rendered inline) and one
//! without. Their throughputs and the relative delta land in the
//! report's `tracing` section (schema 6); CI asserts the sampling-off
//! overhead stays under a few percent. With `trace_out` set, the
//! server's slow log is exported afterwards as Chrome `trace_event`
//! JSON (`/debug/slow?format=chrome`), loadable in Perfetto.
//!
//! Measurement is preceded by a **warmup pass**: one connection touches
//! every distinct request in the mix (each benchmark body through
//! `/compile` and `/check`, the running example through `/simulate`)
//! before any timer starts. Without it, the first-arrival compilations
//! land inside the measurement window and the tail percentiles report
//! cold-start cost as if it were steady-state serving cost. The cold
//! latencies are not discarded — they are interesting in their own
//! right — but reported in a separate `warmup` section rather than
//! folded into the steady-state distribution.
//!
//! The report serializes the client-side view (throughput, exact
//! p50/p90/p99 over every recorded latency) together with the server's
//! own final `/metrics` document (cache hit rate, single-flight
//! counters), and is written as `BENCH_serve.json` — the serving
//! analogue of `BENCH_optimizer.json`, a perf trajectory CI uploads on
//! every run.

use std::io;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use qcirc::json::{self, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::http::client_roundtrip;
use crate::server::{Server, ServerConfig};

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target `host:port`. `None` boots an in-process server on an
    /// ephemeral port and tears it down afterwards.
    pub addr: Option<String>,
    /// Closed-loop worker (connection) count.
    pub workers: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Recursion depth of the `/compile` mix.
    pub depth: i64,
    /// Fraction of requests sent to `/simulate`.
    pub simulate_share: f64,
    /// Fraction of requests sent to `/check` (static verification over
    /// the benchmark programs; the remainder after `/simulate` and
    /// `/check` goes to `/compile`).
    pub check_share: f64,
    /// RNG seed for the request mix.
    pub seed: u64,
    /// Where to write the server's slow log as Chrome `trace_event`
    /// JSON after the traced pass; `None` skips the export.
    pub trace_out: Option<PathBuf>,
}

impl LoadConfig {
    /// The CI smoke configuration: small but long enough that every
    /// benchmark program is requested at least once per worker.
    pub fn quick() -> Self {
        LoadConfig {
            addr: None,
            workers: 4,
            duration: Duration::from_secs(2),
            depth: 3,
            simulate_share: 0.1,
            check_share: 0.1,
            seed: 0x5EED,
            trace_out: None,
        }
    }

    /// The full local configuration.
    pub fn full() -> Self {
        LoadConfig {
            addr: None,
            workers: 8,
            duration: Duration::from_secs(10),
            depth: 5,
            simulate_share: 0.1,
            check_share: 0.1,
            seed: 0x5EED,
            trace_out: None,
        }
    }

    fn mode(&self) -> &'static str {
        if self.duration <= Duration::from_secs(2) {
            "quick"
        } else {
            "full"
        }
    }
}

/// Aggregated outcome of one load test.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Worker count used.
    pub workers: usize,
    /// Wall-clock measurement window.
    pub wall: Duration,
    /// Requests completed (any status).
    pub total: u64,
    /// `2xx` responses.
    pub ok: u64,
    /// `4xx` responses.
    pub client_errors: u64,
    /// `5xx` responses (including shed `503`s).
    pub server_errors: u64,
    /// Requests that died on the socket (reconnected after).
    pub transport_errors: u64,
    /// Connect attempts that failed transiently and were retried with
    /// backoff (a high count with low `transport_errors` means the
    /// retry policy absorbed a flaky accept path).
    pub connect_retries: u64,
    /// Closed-loop workers that panicked instead of reporting. The
    /// report aggregates the survivors — a partial measurement labeled
    /// as partial beats an aborted run with no data at all.
    pub workers_failed: u64,
    /// `/compile` requests sent.
    pub compile_requests: u64,
    /// `/simulate` requests sent.
    pub simulate_requests: u64,
    /// `/check` requests sent.
    pub check_requests: u64,
    /// Completed requests per second over the window.
    pub throughput_rps: f64,
    /// Exact percentiles over every recorded latency, in microseconds.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest request.
    pub max_us: u64,
    /// Cold-start measurements from the warmup pass (first-arrival
    /// compilations, analyses, and simulation), kept out of the
    /// steady-state latency distribution above.
    pub warmup: WarmupReport,
    /// The latency-under-load curve: one open-loop point per target
    /// rate, swept as fractions of the measured closed-loop capacity.
    pub open_loop: Vec<OpenLoopPoint>,
    /// The paired traced/untraced throughput measurement.
    pub tracing: TracingReport,
    /// The server's final `/metrics` document.
    pub server_metrics: Json,
}

/// Cost of the tracing subsystem, from two short closed-loop passes over
/// the same warm server: one with `?trace=1` on every request, one
/// without.
#[derive(Debug, Clone)]
pub struct TracingReport {
    /// Throughput of the untraced pass (sampling off — the default
    /// production configuration).
    pub untraced_rps: f64,
    /// Throughput with `?trace=1` on every request.
    pub traced_rps: f64,
    /// Relative throughput lost to tracing every request:
    /// `(untraced − traced) / untraced`, as a percentage, floored at 0.
    pub overhead_pct: f64,
    /// Relative delta between the main closed-loop pass and the untraced
    /// pass — both run with sampling off, so this bounds the cost of
    /// merely having the tracing subsystem compiled in (plus run-to-run
    /// noise). CI asserts it stays small.
    pub sampled_off_overhead_pct: f64,
}

impl TracingReport {
    fn to_json_value(&self) -> Json {
        Json::obj()
            .field("untraced_rps", self.untraced_rps)
            .field("traced_rps", self.traced_rps)
            .field("overhead_pct", self.overhead_pct)
            .field("sampled_off_overhead_pct", self.sampled_off_overhead_pct)
            .build()
    }
}

/// One point on the latency-under-load curve: the same request mix
/// offered at a fixed arrival rate, with latencies measured from each
/// request's *scheduled* arrival time (coordinated-omission corrected).
#[derive(Debug, Clone)]
pub struct OpenLoopPoint {
    /// The offered arrival rate, requests per second.
    pub target_rps: f64,
    /// Completions per second actually observed over the window.
    pub achieved_rps: f64,
    /// Requests attempted (completions plus transport failures).
    pub requests: u64,
    /// `2xx` responses.
    pub ok: u64,
    /// Non-2xx responses plus transport failures.
    pub errors: u64,
    /// Requests whose send started more than 1ms behind schedule (the
    /// generator could not keep up — queueing shows up in the corrected
    /// latencies either way, this counts how often it happened).
    pub late_starts: u64,
    /// Transient connect failures retried with backoff.
    pub connect_retries: u64,
    /// Generator workers that panicked; survivors are aggregated.
    pub workers_failed: u64,
    /// Median corrected latency, microseconds.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest corrected latency.
    pub max_us: u64,
}

impl OpenLoopPoint {
    fn to_json_value(&self) -> Json {
        Json::obj()
            .field("target_rps", self.target_rps)
            .field("achieved_rps", self.achieved_rps)
            .field("requests", self.requests)
            .field("ok", self.ok)
            .field("errors", self.errors)
            .field("late_starts", self.late_starts)
            .field("connect_retries", self.connect_retries)
            .field("workers_failed", self.workers_failed)
            .field(
                "latency_us",
                Json::obj()
                    .field("p50", self.p50_us)
                    .field("p90", self.p90_us)
                    .field("p99", self.p99_us)
                    .field("max", self.max_us),
            )
            .build()
    }
}

/// Cold-start view of the warmup pass: one request per distinct body in
/// the mix, sent before the measurement timers start.
#[derive(Debug, Clone)]
pub struct WarmupReport {
    /// Warmup requests sent (all of them cache-cold on a fresh server).
    pub requests: u64,
    /// Wall-clock time of the whole pass.
    pub wall: Duration,
    /// Median cold latency, in microseconds.
    pub p50_us: u64,
    /// Slowest cold request.
    pub max_us: u64,
}

impl WarmupReport {
    fn to_json_value(&self) -> Json {
        Json::obj()
            .field("requests", self.requests)
            .field("duration_seconds", self.wall.as_secs_f64())
            .field(
                "latency_us",
                Json::obj()
                    .field("p50", self.p50_us)
                    .field("max", self.max_us),
            )
            .build()
    }
}

impl LoadReport {
    /// Serialize as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        let mut doc = Json::obj()
            .field("schema", 6u64)
            .field("mode", self.mode)
            .field("workers", self.workers)
            .field("workers_failed", self.workers_failed)
            .field("duration_seconds", self.wall.as_secs_f64())
            .field(
                "requests",
                Json::obj()
                    .field("total", self.total)
                    .field("ok", self.ok)
                    .field("client_errors", self.client_errors)
                    .field("server_errors", self.server_errors)
                    .field("transport_errors", self.transport_errors)
                    .field("connect_retries", self.connect_retries)
                    .field("compile", self.compile_requests)
                    .field("simulate", self.simulate_requests)
                    .field("check", self.check_requests),
            )
            .field("throughput_rps", self.throughput_rps)
            .field(
                "latency_us",
                Json::obj()
                    .field("p50", self.p50_us)
                    .field("p90", self.p90_us)
                    .field("p99", self.p99_us)
                    .field("max", self.max_us),
            )
            .field("warmup", self.warmup.to_json_value())
            .field(
                "open_loop",
                Json::Array(
                    self.open_loop
                        .iter()
                        .map(OpenLoopPoint::to_json_value)
                        .collect(),
                ),
            )
            .field("tracing", self.tracing.to_json_value())
            .field("server", self.server_metrics.clone())
            .build()
            .to_string();
        doc.push('\n');
        doc
    }

    /// Write the report as `BENCH_serve.json` in `dir`, returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be written.
    pub fn write_json(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join("BENCH_serve.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The `/simulate` probe program: the paper's running example with a
/// concrete input, small enough to execute on every loop iteration.
const SIMULATE_SOURCE: &str = r#"
fun count[n](acc: uint, flag: bool) -> uint {
    if flag {
        let r <- acc + 1;
        let out <- count[n-1](r, flag);
    } else {
        let out <- acc;
    }
    return out;
}
"#;

struct WorkerOutcome {
    latencies_us: Vec<u64>,
    ok: u64,
    client_errors: u64,
    server_errors: u64,
    transport_errors: u64,
    connect_retries: u64,
    compile_requests: u64,
    simulate_requests: u64,
    check_requests: u64,
}

/// Most connect attempts before a worker gives up on this iteration
/// (the failure still only *counts*, it never aborts the run).
const CONNECT_ATTEMPTS: u32 = 4;

/// Base backoff before the first reconnect attempt; doubles per retry.
const CONNECT_BACKOFF: Duration = Duration::from_millis(5);

/// Connect with capped exponential backoff plus seeded jitter. A busy
/// accept queue under load is *transient* — SYNs get dropped while the
/// event loop drains a burst — so an immediate retry would pile onto
/// exactly the congestion that failed, and a fixed sleep would
/// resynchronize every failed worker into the next thundering herd.
/// Doubling with jitter (`base + rand(0..base)`, capped by
/// [`CONNECT_ATTEMPTS`]) spreads the retries out; the jitter draws from
/// the worker's own seeded RNG so a run is reproducible per seed.
/// Returns the stream (timeouts applied) or `None` after the attempts
/// are exhausted, with `retries` counting every failed-then-retried
/// attempt for the report.
fn connect_with_retry(addr: &str, rng: &mut StdRng, retries: &mut u64) -> Option<TcpStream> {
    let mut backoff = CONNECT_BACKOFF;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = crate::http::set_timeouts(
                    &stream,
                    Duration::from_secs(30),
                    Duration::from_secs(30),
                );
                return Some(stream);
            }
            Err(_) => {
                if attempt + 1 == CONNECT_ATTEMPTS {
                    break;
                }
                *retries += 1;
                let jitter_ns = rng.random_range(0..backoff.as_nanos().max(1) as u64);
                std::thread::sleep(backoff + Duration::from_nanos(jitter_ns));
                backoff *= 2;
            }
        }
    }
    None
}

/// Run a load test.
///
/// # Errors
///
/// Propagates server-boot and final-metrics-fetch failures; individual
/// request failures are counted, not fatal.
pub fn run(config: &LoadConfig) -> io::Result<LoadReport> {
    let (addr, server) = match &config.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::start(ServerConfig::default())?;
            (server.addr().to_string(), Some(server))
        }
    };

    // Pre-render the request bodies once: the mix cycles over them.
    let compile_bodies: Vec<String> = bench_suite::programs::all_benchmarks()
        .iter()
        .map(|bench| {
            Json::obj()
                .field("source", bench.source.as_str())
                .field("entry", bench.entry)
                .field("depth", if bench.constant { 0 } else { config.depth })
                .build()
                .to_string()
        })
        .collect();
    let simulate_body = Json::obj()
        .field("source", SIMULATE_SOURCE)
        .field("entry", "count")
        .field("depth", 4i64)
        .field("inputs", Json::obj().field("flag", 1u64).field("acc", 0u64))
        .build()
        .to_string();

    // Warmup: touch every distinct request in the mix once, before any
    // measurement timer starts, so the steady-state percentiles are not
    // polluted by first-arrival compilation cost. The cold latencies are
    // reported separately.
    let warmup = warmup_pass(&addr, &compile_bodies, &simulate_body)?;

    let deadline = Instant::now() + config.duration;
    let started = Instant::now();
    // A panicking worker loses its own measurements, never the run:
    // survivors are aggregated and the failure is counted in the
    // report (`workers_failed`), so one bad thread degrades the sample
    // instead of aborting a multi-second measurement.
    let (outcomes, workers_failed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|worker| {
                let addr = addr.as_str();
                let compile_bodies = &compile_bodies;
                let simulate_body = simulate_body.as_str();
                scope.spawn(move || {
                    worker_loop(
                        addr,
                        deadline,
                        compile_bodies,
                        simulate_body,
                        config.simulate_share,
                        config.check_share,
                        config.seed.wrapping_add(worker as u64),
                        "",
                    )
                })
            })
            .collect();
        let mut outcomes: Vec<WorkerOutcome> = Vec::new();
        let mut failed = 0u64;
        for handle in handles {
            match handle.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => failed += 1,
            }
        }
        (outcomes, failed)
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let throughput_rps = if wall.as_secs_f64() > 0.0 {
        total as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    // The open-loop sweep: the same mix at fixed fractions of the
    // capacity the closed loop just measured. Skipped when the closed
    // loop could not establish a meaningful capacity.
    let mut open_loop = Vec::new();
    if throughput_rps >= 4.0 {
        let window = config.duration.min(Duration::from_secs(2));
        for (i, fraction) in [0.25, 0.5, 0.75, 0.9].into_iter().enumerate() {
            open_loop.push(open_loop_point(
                &addr,
                throughput_rps * fraction,
                window,
                config,
                &compile_bodies,
                &simulate_body,
                config.seed.wrapping_add(0x09E7).wrapping_add(i as u64),
            ));
        }
    }

    // Tracing-overhead pair: two short closed-loop passes over the same
    // warm server, one untraced (the production default — sampling off),
    // one with `?trace=1` on every request. The untraced pass doubles as
    // a control against the main measurement above.
    let trace_window = config.duration.min(Duration::from_secs(2));
    let untraced_rps = tracing_pass(
        &addr,
        trace_window,
        config,
        &compile_bodies,
        &simulate_body,
        "",
        config.seed ^ 0xACE0,
    );
    let traced_rps = tracing_pass(
        &addr,
        trace_window,
        config,
        &compile_bodies,
        &simulate_body,
        "?trace=1",
        config.seed ^ 0xACE1,
    );
    let tracing = TracingReport {
        untraced_rps,
        traced_rps,
        overhead_pct: if untraced_rps > 0.0 {
            ((untraced_rps - traced_rps) / untraced_rps * 100.0).max(0.0)
        } else {
            0.0
        },
        sampled_off_overhead_pct: if throughput_rps > 0.0 {
            ((throughput_rps - untraced_rps) / throughput_rps * 100.0).max(0.0)
        } else {
            0.0
        },
    };

    // The traced pass filled the server's slow log; export it as Chrome
    // trace_event JSON if asked.
    if let Some(out) = &config.trace_out {
        let mut stream = TcpStream::connect(&addr)?;
        let (status, body) =
            client_roundtrip(&mut stream, "GET", "/debug/slow?format=chrome", None)?;
        if status != 200 {
            return Err(io::Error::other(format!(
                "/debug/slow?format=chrome returned {status}"
            )));
        }
        std::fs::write(out, body)?;
    }

    // One final metrics scrape, after the measurement window.
    let mut stream = TcpStream::connect(&addr)?;
    let (status, body) = client_roundtrip(&mut stream, "GET", "/metrics", None)?;
    drop(stream);
    if status != 200 {
        return Err(io::Error::other(format!(
            "final /metrics returned {status}"
        )));
    }
    let server_metrics = json::parse(&String::from_utf8_lossy(&body))
        .map_err(|e| io::Error::other(format!("unparseable /metrics body: {e}")))?;

    if let Some(server) = server {
        server.shutdown();
    }

    let sum = |f: fn(&WorkerOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    Ok(LoadReport {
        mode: config.mode(),
        workers: config.workers,
        wall,
        total,
        ok: sum(|o| o.ok),
        client_errors: sum(|o| o.client_errors),
        server_errors: sum(|o| o.server_errors),
        transport_errors: sum(|o| o.transport_errors),
        connect_retries: sum(|o| o.connect_retries),
        workers_failed,
        compile_requests: sum(|o| o.compile_requests),
        simulate_requests: sum(|o| o.simulate_requests),
        check_requests: sum(|o| o.check_requests),
        throughput_rps,
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
        warmup,
        open_loop,
        tracing,
        server_metrics,
    })
}

/// One short closed-loop pass with `query` appended to every request
/// path, returning its throughput. Individual failures are absorbed the
/// same way the main loop absorbs them — the pass measures rate, not
/// correctness.
fn tracing_pass(
    addr: &str,
    window: Duration,
    config: &LoadConfig,
    compile_bodies: &[String],
    simulate_body: &str,
    query: &'static str,
    seed: u64,
) -> f64 {
    let deadline = Instant::now() + window;
    let started = Instant::now();
    let total = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|worker| {
                scope.spawn(move || {
                    worker_loop(
                        addr,
                        deadline,
                        compile_bodies,
                        simulate_body,
                        config.simulate_share,
                        config.check_share,
                        seed.wrapping_add(worker as u64),
                        query,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|handle| handle.join().ok())
            .map(|outcome| outcome.latencies_us.len() as u64)
            .sum::<u64>()
    });
    let wall = started.elapsed();
    if wall.as_secs_f64() > 0.0 {
        total as f64 / wall.as_secs_f64()
    } else {
        0.0
    }
}

/// Exact percentile over an ascending-sorted latency list (nearest-rank
/// method); `0` when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Run one open-loop point: offer the mix at `target_rps` for `window`
/// from a shared schedule, with twice the closed-loop worker count so
/// the generator has in-flight headroom and does not silently degrade
/// into a closed loop at high rates. Latencies are measured from each
/// request's scheduled arrival, so a server that stalls the schedule
/// pays for the queueing it caused.
fn open_loop_point(
    addr: &str,
    target_rps: f64,
    window: Duration,
    config: &LoadConfig,
    compile_bodies: &[String],
    simulate_body: &str,
    seed: u64,
) -> OpenLoopPoint {
    let interval_ns = (1e9 / target_rps).max(1.0) as u64;
    let planned = ((window.as_secs_f64() * target_rps) as u64).max(1);
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = (config.workers * 2).max(2);
    let started = Instant::now();
    let (outcomes, workers_failed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                scope.spawn(move || {
                    open_loop_worker(
                        addr,
                        started,
                        interval_ns,
                        planned,
                        next,
                        compile_bodies,
                        simulate_body,
                        config.simulate_share,
                        config.check_share,
                        seed.wrapping_add(worker as u64),
                    )
                })
            })
            .collect();
        let mut outcomes: Vec<OpenLoopOutcome> = Vec::new();
        let mut failed = 0u64;
        for handle in handles {
            match handle.join() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => failed += 1,
            }
        }
        (outcomes, failed)
    });
    let wall = started.elapsed();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let requests = outcomes.iter().map(|o| o.ok + o.errors).sum::<u64>();
    OpenLoopPoint {
        target_rps,
        achieved_rps: if wall.as_secs_f64() > 0.0 {
            requests as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        requests,
        ok: outcomes.iter().map(|o| o.ok).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        late_starts: outcomes.iter().map(|o| o.late_starts).sum(),
        connect_retries: outcomes.iter().map(|o| o.connect_retries).sum(),
        workers_failed,
        p50_us: percentile(&latencies, 50.0),
        p90_us: percentile(&latencies, 90.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

struct OpenLoopOutcome {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    late_starts: u64,
    connect_retries: u64,
}

#[allow(clippy::too_many_arguments)]
fn open_loop_worker(
    addr: &str,
    start: Instant,
    interval_ns: u64,
    planned: u64,
    next: &std::sync::atomic::AtomicU64,
    compile_bodies: &[String],
    simulate_body: &str,
    simulate_share: f64,
    check_share: f64,
    seed: u64,
) -> OpenLoopOutcome {
    use std::sync::atomic::Ordering;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcome = OpenLoopOutcome {
        latencies_us: Vec::new(),
        ok: 0,
        errors: 0,
        late_starts: 0,
        connect_retries: 0,
    };
    let mut stream: Option<TcpStream> = None;
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= planned {
            break;
        }
        let scheduled = start + Duration::from_nanos(k.saturating_mul(interval_ns));
        let now = Instant::now();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        } else if now - scheduled > Duration::from_millis(1) {
            outcome.late_starts += 1;
        }
        let roll = f64::from(rng.random_range(0u32..1 << 20)) / f64::from(1u32 << 20);
        let (path, body) = if roll < simulate_share {
            ("/simulate", simulate_body)
        } else if roll < simulate_share + check_share {
            let i = rng.random_range(0..compile_bodies.len());
            ("/check", compile_bodies[i].as_str())
        } else {
            let i = rng.random_range(0..compile_bodies.len());
            ("/compile", compile_bodies[i].as_str())
        };
        if stream.is_none() {
            match connect_with_retry(addr, &mut rng, &mut outcome.connect_retries) {
                Some(fresh) => stream = Some(fresh),
                None => {
                    outcome.errors += 1;
                    continue;
                }
            }
        }
        let connection = stream.as_mut().expect("connected above");
        match crate::http::client_roundtrip_keepalive(connection, "POST", path, Some(body)) {
            Ok((status, _, keep_alive)) => {
                // Corrected latency: from the *scheduled* arrival, not
                // from when the send actually went out.
                outcome
                    .latencies_us
                    .push(scheduled.elapsed().as_micros() as u64);
                if (200..=299).contains(&status) {
                    outcome.ok += 1;
                } else {
                    outcome.errors += 1;
                }
                if !keep_alive {
                    stream = None;
                }
            }
            Err(_) => {
                outcome.errors += 1;
                stream = None;
            }
        }
    }
    outcome
}

/// Send every distinct request of the mix once over one connection and
/// record the cold latencies. Non-2xx responses still count — the point
/// is the latency of a first arrival, whatever its verdict.
fn warmup_pass(
    addr: &str,
    compile_bodies: &[String],
    simulate_body: &str,
) -> io::Result<WarmupReport> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    let _ = crate::http::set_timeouts(&stream, Duration::from_secs(30), Duration::from_secs(30));
    let mut latencies: Vec<u64> = Vec::new();
    let requests = compile_bodies
        .iter()
        .map(|body| ("/compile", body.as_str()))
        .chain(compile_bodies.iter().map(|body| ("/check", body.as_str())))
        .chain(std::iter::once(("/simulate", simulate_body)));
    for (path, body) in requests {
        let sent = Instant::now();
        match crate::http::client_roundtrip_keepalive(&mut stream, "POST", path, Some(body)) {
            Ok((_, _, keep_alive)) => {
                latencies.push(sent.elapsed().as_micros() as u64);
                if !keep_alive {
                    stream = TcpStream::connect(addr)?;
                    let _ = crate::http::set_timeouts(
                        &stream,
                        Duration::from_secs(30),
                        Duration::from_secs(30),
                    );
                }
            }
            Err(e) => return Err(e),
        }
    }
    latencies.sort_unstable();
    Ok(WarmupReport {
        requests: latencies.len() as u64,
        wall: started.elapsed(),
        p50_us: latencies
            .get(latencies.len().saturating_sub(1) / 2)
            .copied()
            .unwrap_or(0),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    addr: &str,
    deadline: Instant,
    compile_bodies: &[String],
    simulate_body: &str,
    simulate_share: f64,
    check_share: f64,
    seed: u64,
    query: &str,
) -> WorkerOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcome = WorkerOutcome {
        latencies_us: Vec::new(),
        ok: 0,
        client_errors: 0,
        server_errors: 0,
        transport_errors: 0,
        compile_requests: 0,
        simulate_requests: 0,
        check_requests: 0,
        connect_retries: 0,
    };
    let mut stream: Option<TcpStream> = None;
    while Instant::now() < deadline {
        if stream.is_none() {
            match connect_with_retry(addr, &mut rng, &mut outcome.connect_retries) {
                Some(fresh) => stream = Some(fresh),
                None => {
                    // Every backoff attempt exhausted: the listener is
                    // genuinely unreachable right now, not just busy.
                    outcome.transport_errors += 1;
                    continue;
                }
            }
        }
        let connection = stream.as_mut().expect("connected above");
        // One roll splits the mix: [0, sim) → /simulate,
        // [sim, sim+check) → /check, the rest → /compile. The check and
        // compile arms draw from the same benchmark bodies, so every
        // /check after the first warm-up is a cache hit plus analysis —
        // exactly the production shape the endpoint is built for.
        // The vendored rand only samples integer ranges; a 20-bit roll
        // gives the shares ~1e-6 resolution, plenty for a request mix.
        let roll = f64::from(rng.random_range(0u32..1 << 20)) / f64::from(1u32 << 20);
        let (path, body) = if roll < simulate_share {
            outcome.simulate_requests += 1;
            ("/simulate", simulate_body)
        } else if roll < simulate_share + check_share {
            outcome.check_requests += 1;
            let i = rng.random_range(0..compile_bodies.len());
            ("/check", compile_bodies[i].as_str())
        } else {
            outcome.compile_requests += 1;
            let i = rng.random_range(0..compile_bodies.len());
            ("/compile", compile_bodies[i].as_str())
        };
        // The tracing passes append `?trace=1`; the default (empty
        // query) path stays allocation-free.
        let url: std::borrow::Cow<'_, str> = if query.is_empty() {
            path.into()
        } else {
            format!("{path}{query}").into()
        };
        let sent = Instant::now();
        match crate::http::client_roundtrip_keepalive(connection, "POST", &url, Some(body)) {
            Ok((status, _, keep_alive)) => {
                outcome.latencies_us.push(sent.elapsed().as_micros() as u64);
                match status {
                    200..=299 => outcome.ok += 1,
                    400..=499 => outcome.client_errors += 1,
                    _ => outcome.server_errors += 1,
                }
                if !keep_alive {
                    // Orderly close (keep-alive budget reached, or
                    // shutdown began): reconnect, not a transport error.
                    stream = None;
                }
            }
            Err(_) => {
                outcome.transport_errors += 1;
                stream = None; // reconnect on the next iteration
            }
        }
    }
    outcome
}
