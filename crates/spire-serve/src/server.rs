//! The server: a readiness-driven event loop over `poll(2)`, with CPU
//! work on a bounded thread pool.
//!
//! One event-loop thread owns the listener and every connection. It
//! polls for readiness (via the vendored [`poll`] shim), accepts in a
//! loop until `WouldBlock` on every listener event (so a burst of
//! connections costs one poll wake-up, not one per connection), feeds
//! non-blocking reads through each connection's incremental
//! [`RequestParser`](crate::http::RequestParser), and hands every
//! complete request to the bounded [`ThreadPool`]. Workers run the
//! handler (compile/simulate/check — the CPU-bound part) and push the
//! response onto a completion queue, waking the loop through a loopback
//! socket pair; the loop serializes the response into the connection's
//! write buffer and flushes as the socket accepts it.
//!
//! The consequence is the scalability property the old
//! thread-per-connection design lacked: a slow, silent, or trickling
//! client costs one idle table entry, never a worker thread. Slow-loris
//! handling is a deadline, not a held thread — each request gets one
//! read window from its first byte (the window is *not* refreshed per
//! byte), a stalled mid-request connection is answered `408` and
//! closed, and an idle keep-alive connection is closed quietly.
//!
//! Backpressure is explicit at two layers: a connection-table cap sheds
//! new connections with `503` at accept time, and the pool's bounded
//! queue sheds requests with `503` at dispatch time.
//!
//! Shutdown ([`Server::shutdown`]) is graceful: the loop stops
//! accepting, idle connections close, in-flight requests finish and
//! their responses are written (bounded by a grace period), then the
//! pool drains and the call returns.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcirc::json::Json;
use spire::{DiskStore, FaultSchedule, SingleFlightCache};
use spire_trace::{derive_seed, AttrValue, SpanRing, TraceCtx};

use crate::breaker::{CircuitBreaker, DEFAULT_COOLDOWN, DEFAULT_THRESHOLD};
use crate::conn::{Conn, ConnState, PendingTrace, Token};
use crate::http::{self, Limits, ParseError, Request, Response};
use crate::metrics::Metrics;
use crate::pool::{Rejected, ThreadPool};
use crate::slow::{SlowEntry, SlowLog};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads (requests processed concurrently).
    pub threads: usize,
    /// Dispatched requests that may wait for a worker before new ones
    /// are shed with `503`.
    pub backlog: usize,
    /// Read window per request, measured from its first byte (and the
    /// idle cutoff for keep-alive connections between requests).
    pub read_timeout: Duration,
    /// Time a buffered response may take to flush before the
    /// connection is dropped.
    pub write_timeout: Duration,
    /// Request parsing limits.
    pub limits: Limits,
    /// Requests served per connection before it is closed (bounds how
    /// long one client can pin a connection-table slot via keep-alive).
    pub max_keepalive_requests: usize,
    /// Connections held concurrently before new ones are shed with
    /// `503` at accept time.
    pub max_connections: usize,
    /// Directory for the persistent compile-artifact tier; `None`
    /// serves from memory only (restarts start cold).
    pub cache_dir: Option<PathBuf>,
    /// Total memory budget (bytes) across the compile cache and the
    /// memoized artifact/report maps; `None` is unbounded. The budget
    /// splits half to the compile cache, a quarter each to the
    /// artifact and report maps, all evicted second-chance.
    pub cache_bytes: Option<u64>,
    /// How long a dispatched request may wait for a worker before it is
    /// shed with `503` + `retry-after` instead of being served stale.
    pub request_deadline: Duration,
    /// Fault-injection schedule for the disk tier (testing/chaos only;
    /// [`FaultSchedule::none`] in production).
    pub disk_faults: Option<Arc<FaultSchedule>>,
    /// Compact the persistent store once at startup, before serving.
    pub compact_on_start: bool,
    /// Consecutive disk I/O errors that open the circuit breaker.
    pub disk_failure_threshold: u32,
    /// How long an open breaker waits before releasing a probe.
    pub disk_cooldown: Duration,
    /// Trace one request in every `trace_sample` (0 disables sampling;
    /// `?trace=1` requests are always traced regardless).
    pub trace_sample: u64,
    /// Seed for the deterministic trace/span ID generator: the same
    /// seed and request sequence yield byte-identical normalized span
    /// trees, which is what makes traces assertable in tests.
    pub trace_seed: u64,
    /// Slowest traced requests retained for `GET /debug/slow`
    /// (0 disables the log).
    pub slow_log: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: default_threads(),
            backlog: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            max_keepalive_requests: 1000,
            max_connections: 1024,
            cache_dir: None,
            cache_bytes: None,
            request_deadline: Duration::from_secs(5),
            disk_faults: None,
            compact_on_start: false,
            disk_failure_threshold: DEFAULT_THRESHOLD,
            disk_cooldown: DEFAULT_COOLDOWN,
            trace_sample: 0,
            trace_seed: DEFAULT_TRACE_SEED,
            slow_log: DEFAULT_SLOW_LOG,
        }
    }
}

/// Span-ring capacity: at ~22 machine words per slot this is a fixed
/// ~720 KiB, enough for hundreds of concurrent traced requests before
/// the oldest spans are overwritten.
const TRACE_RING_SLOTS: usize = 4096;

/// Default [`ServerConfig::slow_log`] depth.
const DEFAULT_SLOW_LOG: usize = 16;

/// Default [`ServerConfig::trace_seed`]: an arbitrary nonzero constant
/// so traces are deterministic out of the box.
const DEFAULT_TRACE_SEED: u64 = 0x5_f17e_7ace;

/// Worker count default: the machine's parallelism, capped small — the
/// service is compile-bound, not I/O-bound, so more threads than cores
/// only add contention.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(16)
}

/// A byte-budgeted memo map with second-chance (clock) eviction — the
/// bounded form of the artifact/report maps. Weight is the approximate
/// in-memory size of the JSON tree ([`json_weight`]); a budget of 0
/// means unbounded.
#[derive(Debug)]
struct BoundedJsonMap {
    entries: HashMap<u128, MapEntry>,
    /// Clock order; may hold stale keys (skipped on pop).
    clock: VecDeque<u128>,
    budget: u64,
    resident: u64,
    evictions: u64,
}

#[derive(Debug)]
struct MapEntry {
    value: Arc<Json>,
    bytes: u64,
    referenced: bool,
}

impl BoundedJsonMap {
    fn new(budget: u64) -> BoundedJsonMap {
        BoundedJsonMap {
            entries: HashMap::new(),
            clock: VecDeque::new(),
            budget,
            resident: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: u128) -> Option<Arc<Json>> {
        let entry = self.entries.get_mut(&key)?;
        entry.referenced = true;
        Some(Arc::clone(&entry.value))
    }

    fn insert(&mut self, key: u128, value: Arc<Json>) {
        if self.entries.contains_key(&key) {
            // Content-addressed: a racing insert carries identical data.
            return;
        }
        let bytes = json_weight(&value);
        self.entries.insert(
            key,
            MapEntry {
                value,
                bytes,
                referenced: true,
            },
        );
        self.clock.push_back(key);
        self.resident += bytes;
        self.evict_to_budget();
    }

    /// Clock sweep: referenced entries get one more lap, unreferenced
    /// ones are evicted, until the map fits its budget. Terminates
    /// because each pass either evicts or clears a referenced bit that
    /// nothing can re-set while `&mut self` is held.
    fn evict_to_budget(&mut self) {
        if self.budget == 0 {
            return;
        }
        while self.resident > self.budget {
            let Some(key) = self.clock.pop_front() else {
                break;
            };
            let Some(entry) = self.entries.get_mut(&key) else {
                continue; // stale slot
            };
            if entry.referenced {
                entry.referenced = false;
                self.clock.push_back(key);
            } else {
                let removed = self.entries.remove(&key).expect("present above");
                self.resident -= removed.bytes;
                self.evictions += 1;
            }
        }
    }
}

/// Approximate resident bytes of a JSON tree: container and scalar
/// overheads plus string payloads. A weight for budget accounting, not
/// an exact heap measurement.
fn json_weight(value: &Json) -> u64 {
    match value {
        Json::Null | Json::Bool(_) | Json::Int(_) | Json::UInt(_) | Json::Float(_) => 8,
        Json::Str(s) => 24 + s.capacity() as u64,
        Json::Array(items) => 24 + items.iter().map(json_weight).sum::<u64>(),
        Json::Object(fields) => {
            24 + fields
                .iter()
                .map(|(name, field)| 32 + name.capacity() as u64 + json_weight(field))
                .sum::<u64>()
        }
    }
}

/// Shared state every request handler sees.
#[derive(Debug)]
pub struct AppState {
    /// The compile path: content-addressed cache + single-flight layer.
    pub compiler: SingleFlightCache,
    /// Service counters and latency histograms.
    pub metrics: Metrics,
    /// Circuit breaker guarding the disk tier: consecutive device
    /// errors open it and the serving path skips disk (memory tiers
    /// keep answering) until a cooled-down probe succeeds.
    pub breaker: CircuitBreaker,
    /// Response-ready `/compile` artifacts by compile key, memoized on
    /// first build (and decoded from the disk tier on a warm restart).
    /// Building an artifact re-emits the circuit and renders its `.qc`
    /// text — milliseconds of CPU per request that a cache hit must pay
    /// at most once, not every time.
    artifacts: Mutex<BoundedJsonMap>,
    /// Rendered `/check` verification reports by compile key. The
    /// static analyses are deterministic over the compiled program, so
    /// re-verifying a cached compilation would burn tens of
    /// milliseconds of worker CPU per request to recompute a value the
    /// content address already pins.
    reports: Mutex<BoundedJsonMap>,
    /// The persistent content-addressed artifact store, when enabled.
    disk: Option<DiskStore>,
    /// The span ring every trace of this server publishes into.
    ring: Arc<SpanRing>,
    /// The N slowest traced requests, behind `GET /debug/slow`.
    slow: SlowLog,
    /// Base seed for per-trace ID generators.
    trace_seed: u64,
    /// Trace one request in every `trace_sample` (0 = explicit only).
    trace_sample: u64,
    /// Monotone counter over trace-eligible requests: drives sampling
    /// and derives each trace's seed, so traces are deterministic per
    /// (seed, request sequence).
    trace_seq: AtomicU64,
}

impl AppState {
    /// Fresh state (empty cache, zeroed metrics, no persistence).
    pub fn new() -> Self {
        AppState {
            compiler: SingleFlightCache::new(),
            metrics: Metrics::new(),
            breaker: CircuitBreaker::with_defaults(),
            artifacts: Mutex::new(BoundedJsonMap::new(0)),
            reports: Mutex::new(BoundedJsonMap::new(0)),
            disk: None,
            ring: Arc::new(SpanRing::new(TRACE_RING_SLOTS)),
            slow: SlowLog::new(DEFAULT_SLOW_LOG),
            trace_seed: DEFAULT_TRACE_SEED,
            trace_sample: 0,
            trace_seq: AtomicU64::new(0),
        }
    }

    /// State backed by a persistent artifact store in `dir` (created if
    /// missing, recovered if an earlier process crashed mid-write).
    ///
    /// # Errors
    ///
    /// Propagates [`DiskStore::open`] failures.
    pub fn with_cache_dir(dir: &Path) -> io::Result<Self> {
        let mut state = AppState::new();
        state.disk = Some(DiskStore::open(dir)?);
        Ok(state)
    }

    /// State per [`ServerConfig`]: memory budget split across the
    /// compile cache (half) and the artifact/report maps (a quarter
    /// each), the configured breaker, and the persistent tier opened
    /// with any fault-injection schedule (optionally compacted before
    /// serving).
    ///
    /// # Errors
    ///
    /// Propagates store open failures. A failed `compact_on_start` is
    /// *not* an error: it is counted in the store's `io_errors` and the
    /// server starts (possibly degraded) — robustness means a full or
    /// flaky disk delays compaction, it does not keep the service down.
    pub fn from_config(config: &ServerConfig) -> io::Result<Self> {
        let (compiler, memo_budget) = match config.cache_bytes {
            Some(total) => (SingleFlightCache::with_budget(total / 2), total / 4),
            None => (SingleFlightCache::new(), 0),
        };
        let disk = match &config.cache_dir {
            Some(dir) => {
                let store = match &config.disk_faults {
                    Some(faults) => DiskStore::open_with(dir, Arc::clone(faults))?,
                    None => DiskStore::open(dir)?,
                };
                if config.compact_on_start {
                    let _ = store.compact();
                }
                Some(store)
            }
            None => None,
        };
        Ok(AppState {
            compiler,
            metrics: Metrics::new(),
            breaker: CircuitBreaker::new(config.disk_failure_threshold, config.disk_cooldown),
            artifacts: Mutex::new(BoundedJsonMap::new(memo_budget)),
            reports: Mutex::new(BoundedJsonMap::new(memo_budget)),
            disk,
            ring: Arc::new(SpanRing::new(TRACE_RING_SLOTS)),
            slow: SlowLog::new(config.slow_log),
            trace_seed: config.trace_seed,
            trace_sample: config.trace_sample,
            trace_seq: AtomicU64::new(0),
        })
    }

    /// The span ring traces publish into.
    pub fn trace_ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// The slow-request log.
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// Start a trace for a request when asked (`explicit`, i.e.
    /// `?trace=1`) or picked by sampling. `epoch` is the instant the
    /// request's first byte arrived — every span of the trace measures
    /// from it, so spans recorded on the loop and on a worker share one
    /// time base. When tracing is off entirely this is one branch, no
    /// atomics: the untraced hot path stays untouched.
    pub fn begin_trace(&self, explicit: bool, epoch: Instant) -> Option<TraceCtx> {
        if !explicit && self.trace_sample == 0 {
            return None;
        }
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        let sampled = self.trace_sample > 0 && seq.is_multiple_of(self.trace_sample);
        if !explicit && !sampled {
            return None;
        }
        let seed = derive_seed(self.trace_seed, seq);
        Some(TraceCtx::with_epoch(
            Arc::clone(&self.ring),
            seed,
            explicit,
            epoch,
        ))
    }

    /// The persistent artifact store, when configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// A decoded artifact from an earlier disk hit.
    pub fn artifact(&self, key: u128) -> Option<Arc<Json>> {
        self.artifacts
            .lock()
            .expect("artifact map poisoned")
            .get(key)
    }

    /// Remember a decoded disk artifact for subsequent requests.
    pub fn store_artifact(&self, key: u128, artifact: Arc<Json>) {
        self.artifacts
            .lock()
            .expect("artifact map poisoned")
            .insert(key, artifact);
    }

    /// A memoized `/check` verification report for a compile key.
    pub fn report(&self, key: u128) -> Option<Arc<Json>> {
        self.reports.lock().expect("report map poisoned").get(key)
    }

    /// Remember a verification report for subsequent `/check` requests
    /// on the same compile key.
    pub fn store_report(&self, key: u128, report: Arc<Json>) {
        self.reports
            .lock()
            .expect("report map poisoned")
            .insert(key, report);
    }

    /// Resident bytes and eviction counts of the two memo maps, as
    /// `(artifact_bytes, report_bytes, evictions)` — the `/metrics`
    /// memory gauges beyond the compile cache's own stats.
    pub fn memo_stats(&self) -> (u64, u64, u64) {
        let artifacts = self.artifacts.lock().expect("artifact map poisoned");
        let reports = self.reports.lock().expect("report map poisoned");
        (
            artifacts.resident,
            reports.resident,
            artifacts.evictions + reports.evictions,
        )
    }
}

impl Default for AppState {
    fn default() -> Self {
        AppState::new()
    }
}

/// Wakes the event loop from another thread by writing one byte to a
/// loopback socket the loop polls. (The workspace forbids `unsafe`
/// outside the vendored poll shim, so `pipe(2)`/`eventfd(2)` are out of
/// reach; a connected TCP pair on 127.0.0.1 is the portable stand-in.)
#[derive(Debug, Clone)]
struct Waker {
    tx: Arc<Mutex<TcpStream>>,
}

impl Waker {
    fn wake(&self) {
        if let Ok(mut tx) = self.tx.lock() {
            let _ = tx.write(&[1u8]);
        }
    }
}

/// Build the waker pair: a transient loopback listener accepts a
/// self-connection, then goes away. The receive side is non-blocking
/// and joins the poll set; any thread holding the [`Waker`] can nudge
/// the loop.
fn wake_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let local = tx.local_addr()?;
    // Accept until we see our own connection (a stranger racing onto
    // the ephemeral port is absurdly unlikely, but cheap to exclude).
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            break rx;
        }
    };
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((
        Waker {
            tx: Arc::new(Mutex::new(tx)),
        },
        rx,
    ))
}

/// A request trace handed back from a worker with its response: the
/// loop parks it on the connection until the response write completes.
#[derive(Debug)]
struct FinishedTrace {
    ctx: TraceCtx,
    path: String,
}

/// Responses finished by pool workers, waiting for the event loop to
/// write them out.
#[derive(Debug)]
struct Completions {
    queue: Mutex<Vec<(Token, Response, Option<FinishedTrace>)>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, token: Token, response: Response, trace: Option<FinishedTrace>) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push((token, response, trace));
        self.waker.wake();
    }

    fn drain(&self) -> Vec<(Token, Response, Option<FinishedTrace>)> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// A running server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    waker: Waker,
    event_loop: JoinHandle<()>,
}

impl Server {
    /// Bind and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/local-addr failures and (when
    /// [`ServerConfig::cache_dir`] is set) cache-store open failures.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(AppState::from_config(&config)?);
        let stop = Arc::new(AtomicBool::new(false));
        let (waker, waker_rx) = wake_pair()?;
        let event_loop = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let completions = Arc::new(Completions {
                queue: Mutex::new(Vec::new()),
                waker: waker.clone(),
            });
            std::thread::Builder::new()
                .name("spire-serve-loop".to_string())
                .spawn(move || {
                    EventLoop {
                        listener,
                        config,
                        state,
                        stop,
                        waker_rx,
                        completions,
                        pool: None,
                        conns: HashMap::new(),
                        next_token: 1,
                        shutdown_deadline: None,
                    }
                    .run();
                })
                .expect("spawning event-loop thread")
        };
        Ok(Server {
            addr,
            state,
            stop,
            waker,
            event_loop,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (cache, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Block on the event loop (serve until process exit).
    pub fn join(self) {
        let _ = self.event_loop.join();
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests and
    /// write their responses, drain the pool, join the loop.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        let _ = self.event_loop.join();
    }
}

/// The loop's tick when no deadline is nearer: bounds how stale the
/// stop-flag check can get.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// How long a draining connection lingers discarding input before the
/// socket closes regardless.
const DRAIN_GRACE: Duration = Duration::from_millis(200);

struct EventLoop {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    waker_rx: TcpStream,
    completions: Arc<Completions>,
    /// Created on entry to `run` (so its Drop-drain runs on the loop
    /// thread), `Option` only to allow construction before then.
    pool: Option<ThreadPool>,
    conns: HashMap<Token, Conn>,
    next_token: Token,
    /// Set when shutdown is first observed; in-flight work past this
    /// instant is abandoned.
    shutdown_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        self.pool = Some(ThreadPool::new(self.config.threads, self.config.backlog));
        loop {
            let stopping = self.stop.load(Ordering::SeqCst);
            if stopping && self.shutdown_drained() {
                break;
            }
            // Poll set layout: waker, then (while accepting) the
            // listener, then every connection that is waiting on its
            // socket. `Processing` connections wait on the completion
            // queue, not the socket, so they are not in the set at all —
            // a hung-up client cannot spin the loop while its request
            // computes.
            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            fds.push(poll::PollFd::new(self.waker_rx.as_raw_fd(), poll::POLLIN));
            let accepting = !stopping;
            if accepting {
                fds.push(poll::PollFd::new(self.listener.as_raw_fd(), poll::POLLIN));
            }
            let base = fds.len();
            let mut tokens: Vec<Token> = Vec::with_capacity(self.conns.len());
            for (&token, conn) in &self.conns {
                let events = match conn.state {
                    ConnState::Reading | ConnState::Draining => poll::POLLIN,
                    ConnState::Writing => poll::POLLOUT,
                    ConnState::Processing => continue,
                };
                tokens.push(token);
                fds.push(poll::PollFd::new(conn.fd(), events));
            }
            // Self-profile each tick: time blocked in poll(2) vs time
            // spent dispatching what it returned. The ratio is the
            // loop's own saturation signal in `/metrics`.
            let poll_start = Instant::now();
            if poll::poll(&mut fds, Some(self.poll_timeout())).is_err() {
                // Transient poll failure (descriptor churn, resource
                // pressure): back off a moment and rebuild the set.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let now = Instant::now();
            let poll_wait_ns = u64::try_from((now - poll_start).as_nanos()).unwrap_or(u64::MAX);
            if fds[0].readable() {
                self.drain_waker();
            }
            if accepting && fds[1].readable() {
                self.accept_ready(now);
            }
            for (i, &token) in tokens.iter().enumerate() {
                if fds[base + i].revents() != 0 {
                    self.conn_ready(token, now);
                }
            }
            self.apply_completions(now);
            self.expire_deadlines(now);
            let busy_ns = u64::try_from(now.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.state.metrics.record_loop_tick(poll_wait_ns, busy_ns);
            let backlog = self.pool.as_ref().map_or(0, ThreadPool::backlog);
            self.state
                .metrics
                .set_loop_gauges(backlog as u64, self.conns.len() as u64);
        }
        self.conns.clear();
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }

    /// Next poll timeout: the nearest connection deadline, capped by the
    /// idle tick.
    fn poll_timeout(&self) -> Duration {
        let now = Instant::now();
        self.conns
            .values()
            .filter(|conn| conn.state != ConnState::Processing)
            .map(|conn| conn.deadline.saturating_duration_since(now))
            .min()
            .map_or(IDLE_TICK, |nearest| nearest.min(IDLE_TICK))
    }

    /// During shutdown: close idle connections immediately, keep ones
    /// mid-exchange until they finish or the grace period ends. Returns
    /// `true` once the loop should exit.
    fn shutdown_drained(&mut self) -> bool {
        let grace = self.config.read_timeout.max(self.config.write_timeout);
        let deadline = *self
            .shutdown_deadline
            .get_or_insert_with(|| Instant::now() + grace);
        self.conns.retain(|_, conn| {
            matches!(
                conn.state,
                ConnState::Processing | ConnState::Writing | ConnState::Draining
            )
        });
        self.conns.is_empty() || Instant::now() >= deadline
    }

    /// Swallow the waker bytes so the socket goes quiet again.
    fn drain_waker(&mut self) {
        use std::io::Read as _;
        let mut sink = [0u8; 64];
        loop {
            match (&self.waker_rx).read(&mut sink) {
                Ok(0) => return, // waker gone; stop flag will end things
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Accept every connection the kernel has queued — stopping at the
    /// first `WouldBlock`, not the first success. Accepting just one
    /// per readiness event made a connection burst wait one poll
    /// round-trip *each*, which is exactly the repeated ~hundreds-of-ms
    /// connection-setup tail the load test used to measure.
    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.config.max_connections {
                        self.shed_connection(stream);
                        continue;
                    }
                    let deadline = now + self.config.read_timeout;
                    if let Ok(conn) = Conn::new(stream, self.config.limits, deadline) {
                        let token = self.next_token;
                        self.next_token += 1;
                        self.conns.insert(token, conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Persistent accept errors (EMFILE, ECONNABORTED
                    // storms): yield briefly instead of spinning at 100%
                    // CPU on a level-triggered listener.
                    std::thread::sleep(Duration::from_millis(1));
                    break;
                }
            }
        }
    }

    /// Refuse a connection over the table cap with a best-effort `503`.
    /// A fresh socket's send buffer swallows the small response, so one
    /// non-blocking write almost always delivers it.
    fn shed_connection(&self, stream: TcpStream) {
        self.state.metrics.record_shed();
        self.state.metrics.record_status(503);
        let response = error_response(503, "server/overloaded", "connection limit reached")
            .with_retry_after(1);
        let _ = stream.set_nonblocking(true);
        let mut stream = stream;
        let _ = stream.write(&http::encode_response(&response, false));
    }

    fn conn_ready(&mut self, token: Token, now: Instant) {
        let Some(state) = self.conns.get(&token).map(|conn| conn.state) else {
            return;
        };
        match state {
            ConnState::Reading => self.read_ready(token, now),
            ConnState::Writing => self.write_ready(token, now),
            ConnState::Draining => {
                let done = self.conns.get_mut(&token).is_none_or(Conn::discard);
                if done {
                    self.conns.remove(&token);
                }
            }
            ConnState::Processing => {}
        }
    }

    fn read_ready(&mut self, token: Token, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let was_mid = conn.parser.mid_request();
        if conn.fill().is_err() {
            self.conns.remove(&token);
            return;
        }
        let conn = self.conns.get_mut(&token).expect("present above");
        if !was_mid && conn.parser.mid_request() {
            // First byte of a new request: the whole request gets one
            // read window. Deliberately not refreshed per byte — a
            // slow-loris trickle exhausts this one window and gets 408,
            // it does not renew its lease a byte at a time.
            conn.deadline = now + self.config.read_timeout;
            // Also the epoch a trace of this request measures from.
            conn.first_byte = Some(now);
        }
        self.advance(token, now);
    }

    /// Try to produce and dispatch the next request on a connection in
    /// `Reading` state (after a read, or after a response finished
    /// writing and pipelined bytes may already be buffered).
    fn advance(&mut self, token: Token, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        match conn.parser.next_request() {
            Ok(Some(request)) => self.dispatch(token, request, now),
            Ok(None) => {
                if conn.peer_closed {
                    // EOF with no complete request buffered: nothing
                    // left to serve on this connection.
                    self.conns.remove(&token);
                }
            }
            Err(error) => {
                let response = match error {
                    ParseError::Malformed(message) => {
                        error_response(400, "request/malformed", message)
                    }
                    ParseError::BodyTooLarge => {
                        error_response(413, "request/body-too-large", "request body exceeds limit")
                    }
                };
                self.fail_connection(token, response, now);
            }
        }
    }

    /// Queue a terminal error response on a connection and move it
    /// toward close (draining unread input first, so the response
    /// survives the close instead of being destroyed by an RST).
    fn fail_connection(&mut self, token: Token, response: Response, now: Instant) {
        self.state.metrics.record_status(response.status);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.drain_before_close = true;
        conn.queue_response(&response, false);
        conn.deadline = now + self.config.write_timeout;
        self.write_ready(token, now);
    }

    fn dispatch(&mut self, token: Token, request: Request, now: Instant) {
        let conn = self.conns.get_mut(&token).expect("dispatch on live conn");
        conn.served += 1;
        conn.wants_close = request.wants_close();
        conn.state = ConnState::Processing;
        // Trace this request if the client asked (`?trace=1`) or
        // sampling picked it. The epoch is the first-byte instant, so
        // the `read_parse` phase recorded here and the handler spans
        // recorded on the worker share one time base.
        let first_byte = conn.first_byte.take().unwrap_or(now);
        let explicit = request.query_param("trace") == Some("1");
        let trace = self.state.begin_trace(explicit, first_byte);
        if let Some(ctx) = &trace {
            let parsed_ns = ctx.now_ns();
            ctx.record_phase(
                "read_parse",
                0,
                parsed_ns,
                &[("bytes", AttrValue::U64(request.body.len() as u64))],
            );
        }
        let path = request.path.clone();
        let state = Arc::clone(&self.state);
        let completions = Arc::clone(&self.completions);
        let enqueued = Instant::now();
        let deadline = self.config.request_deadline;
        let outcome = self
            .pool
            .as_ref()
            .expect("pool lives for the loop")
            .try_execute(move || {
                // Deadline shedding: a request that waited out its
                // deadline in the queue is answered `503` + retry-after
                // instead of burning a worker on a response the client
                // has likely already given up on — under sustained
                // overload this keeps queue wait bounded rather than
                // serving every request arbitrarily late.
                let mut finished = None;
                let response = if enqueued.elapsed() > deadline {
                    state.metrics.record_shed();
                    error_response(
                        503,
                        "server/deadline",
                        "request waited past its deadline in the queue",
                    )
                    .with_retry_after(1)
                } else if let Some(ctx) = trace {
                    // Queue-dwell span, then the handler under an
                    // installed ambient context so every pipeline stage
                    // records into this trace.
                    let queue_end = ctx.now_ns();
                    let waited = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    ctx.record_phase("queue", queue_end.saturating_sub(waited), queue_end, &[]);
                    spire_trace::install(ctx);
                    let handler = spire_trace::span("handler");
                    let response = handle_request(&state, &request);
                    drop(handler);
                    finished = spire_trace::take().map(|ctx| FinishedTrace { ctx, path });
                    response
                } else {
                    handle_request(&state, &request)
                };
                state.metrics.record_status(response.status);
                completions.push(token, response, finished);
            });
        if let Err(rejected) = outcome {
            // Dispatch-time backpressure: the bounded queue is full (or
            // the pool is stopping) — shed the request, keep the rest of
            // the system responsive.
            self.state.metrics.record_shed();
            let message = match rejected {
                Rejected::Full => "request backlog is full",
                Rejected::ShuttingDown => "server is shutting down",
            };
            let response = error_response(503, "server/overloaded", message).with_retry_after(1);
            self.state.metrics.record_status(503);
            let conn = self.conns.get_mut(&token).expect("still live");
            conn.queue_response(&response, false);
            conn.deadline = now + self.config.write_timeout;
            self.write_ready(token, now);
        }
    }

    /// Serialize finished responses onto their connections.
    fn apply_completions(&mut self, now: Instant) {
        for (token, response, trace) in self.completions.drain() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while its request computed
            };
            let keep_alive = !conn.wants_close
                && !conn.peer_closed
                && !self.stop.load(Ordering::SeqCst)
                && conn.served < self.config.max_keepalive_requests;
            // Park the trace on the connection; the `write` phase and
            // the root span are recorded when the flush completes.
            conn.trace = trace.map(|finished| PendingTrace {
                write_start_ns: finished.ctx.now_ns(),
                status: response.status,
                path: finished.path,
                ctx: finished.ctx,
            });
            conn.queue_response(&response, keep_alive);
            conn.deadline = now + self.config.write_timeout;
            self.write_ready(token, now);
        }
    }

    /// Close out a flushed response's trace: record the `write` phase
    /// and the `request` root span, then offer the whole trace to the
    /// slow log.
    fn finish_trace(&self, pending: PendingTrace) {
        let end_ns = pending.ctx.now_ns();
        pending
            .ctx
            .record_phase("write", pending.write_start_ns, end_ns, &[]);
        pending.ctx.record_root(
            end_ns,
            &[("status", AttrValue::U64(u64::from(pending.status)))],
        );
        self.state.slow.offer(SlowEntry {
            trace_id: pending.ctx.trace_id(),
            path: pending.path,
            status: pending.status,
            duration_ns: end_ns,
            records: pending.ctx.records(),
        });
    }

    fn write_ready(&mut self, token: Token, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.flush() {
            Ok(true) => {
                if let Some(pending) = conn.trace.take() {
                    self.finish_trace(pending);
                }
                let conn = self.conns.get_mut(&token).expect("still live");
                if conn.close_after_write {
                    if conn.drain_before_close && !conn.discard() {
                        conn.state = ConnState::Draining;
                        conn.deadline = now + DRAIN_GRACE;
                    } else {
                        self.conns.remove(&token);
                    }
                } else {
                    conn.state = ConnState::Reading;
                    conn.deadline = now + self.config.read_timeout;
                    // Strict serial pipelining: the next request may be
                    // fully buffered already — serve it without waiting
                    // for the socket.
                    self.advance(token, now);
                }
            }
            Ok(false) => {}
            Err(_) => {
                self.conns.remove(&token);
            }
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let expired: Vec<Token> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.state != ConnState::Processing && conn.deadline <= now)
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match conn.state {
                ConnState::Reading if conn.parser.mid_request() => {
                    // Stalled partway through a request: a best-effort
                    // 408 tells the client the half-sent request was
                    // not processed.
                    let response = error_response(408, "request/timeout", "request timed out");
                    self.fail_connection(token, response, now);
                }
                // Idle keep-alive between requests: close quietly.
                ConnState::Reading | ConnState::Writing | ConnState::Draining => {
                    self.conns.remove(&token);
                }
                ConnState::Processing => {}
            }
        }
    }
}

fn handle_request(state: &Arc<AppState>, request: &Request) -> Response {
    let _in_flight = state.metrics.begin_request();
    let timer = Instant::now();
    // A handler panic must cost one 500, not the worker.
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::api::handle(state, request)
    }))
    .unwrap_or_else(|_| error_response(500, "server/internal", "request handler panicked"));
    state
        .metrics
        .latency
        .record_micros(timer.elapsed().as_micros() as u64);
    response
}

fn error_response(status: u16, code: &str, message: &str) -> Response {
    crate::api::ApiError {
        status,
        code: code.to_string(),
        message: message.to_string(),
    }
    .response()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bytes: usize) -> Arc<Json> {
        Arc::new(Json::obj().field("payload", "x".repeat(bytes)).build())
    }

    #[test]
    fn bounded_map_stays_under_budget_and_keeps_hot_keys() {
        let mut map = BoundedJsonMap::new(4096);
        // A cold sentinel ahead of the hot key in clock order: the
        // first full sweep (where every bit is still set) reclaims it,
        // not the hot key.
        map.insert(999, doc(256));
        map.insert(0, doc(256));
        for key in 1..64u128 {
            // Key 0 is touched before every insert: the referenced bit
            // gives it a second chance on each eviction sweep.
            let _ = map.get(0);
            map.insert(key, doc(256));
        }
        assert!(
            map.resident <= 4096,
            "resident {} exceeds budget",
            map.resident
        );
        assert!(map.evictions > 0, "evictions must have occurred");
        assert!(map.get(0).is_some(), "hot key survived the sweeps");
    }

    #[test]
    fn unbounded_map_never_evicts() {
        let mut map = BoundedJsonMap::new(0);
        for key in 0..64u128 {
            map.insert(key, doc(1024));
        }
        assert_eq!(map.entries.len(), 64);
        assert_eq!(map.evictions, 0);
    }

    #[test]
    fn json_weight_scales_with_content() {
        let small = json_weight(&Json::from(1u64));
        let big = json_weight(&doc(10_000));
        assert!(small < 64);
        assert!(big > 10_000);
    }
}
