//! The server: accept loop, connection lifecycle, graceful shutdown.
//!
//! One acceptor thread owns the [`TcpListener`] and hands every accepted
//! connection to the bounded [`ThreadPool`]; a full backlog sheds the
//! connection with `503` instead of queueing unboundedly. Each worker
//! drives one connection's keep-alive loop under per-socket read/write
//! timeouts, so a slow or silent client can hold a worker for at most
//! one timeout, not forever.
//!
//! Shutdown ([`Server::shutdown`]) is graceful: the acceptor stops
//! accepting (woken by a self-connection), workers finish the requests
//! they are serving (plus any already-accepted backlog), and the call
//! returns once every thread has exited. Idle keep-alive connections are
//! abandoned after at most one read timeout.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spire::SingleFlightCache;

use crate::http::{self, Limits, Request, Response};
use crate::metrics::Metrics;
use crate::pool::ThreadPool;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads (connections served concurrently).
    pub threads: usize,
    /// Accepted connections that may wait for a worker before new ones
    /// are shed with `503`.
    pub backlog: usize,
    /// Per-socket read timeout (bounds slow/silent clients).
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Request parsing limits.
    pub limits: Limits,
    /// Requests served per connection before it is closed (bounds how
    /// long one client can pin a worker via keep-alive).
    pub max_keepalive_requests: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: default_threads(),
            backlog: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            max_keepalive_requests: 1000,
        }
    }
}

/// Worker count default: the machine's parallelism, capped small — the
/// service is compile-bound, not I/O-bound, so more threads than cores
/// only add contention.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(16)
}

/// Shared state every request handler sees.
#[derive(Debug)]
pub struct AppState {
    /// The compile path: content-addressed cache + single-flight layer.
    pub compiler: SingleFlightCache,
    /// Service counters and latency histograms.
    pub metrics: Metrics,
}

impl AppState {
    /// Fresh state (empty cache, zeroed metrics).
    pub fn new() -> Self {
        AppState {
            compiler: SingleFlightCache::new(),
            metrics: Metrics::new(),
        }
    }
}

impl Default for AppState {
    fn default() -> Self {
        AppState::new()
    }
}

/// A running server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
}

impl Server {
    /// Bind and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/local-addr failures.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState::new());
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("spire-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &config, &state, &stop))
                .expect("spawning acceptor thread")
        };
        Ok(Server {
            addr,
            state,
            stop,
            acceptor,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (cache, metrics).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Block on the acceptor thread (serve until process exit).
    pub fn join(self) {
        let _ = self.acceptor.join();
    }

    /// Graceful shutdown: stop accepting, drain in-progress work, join
    /// every thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    state: &Arc<AppState>,
    stop: &Arc<AtomicBool>,
) {
    // The pool lives (and dies) with the accept loop: dropping it at the
    // end of this function performs the drain-and-join.
    let pool = ThreadPool::new(config.threads, config.backlog);
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if stop.load(Ordering::SeqCst) => break,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion,
                // ECONNABORTED storms) return immediately; retrying
                // without a pause would pin this thread at 100% CPU in
                // exactly the overload scenario backpressure targets.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a straggler): stop now
        }
        // Backpressure: the acceptor is the queue's only producer, so a
        // backlog check here cannot race another push — a full backlog
        // sheds this connection with a best-effort 503, keeping the
        // accepted-but-unserved set bounded.
        if pool.backlog() >= config.backlog {
            state.metrics.record_shed();
            state.metrics.record_status(503);
            let _ = http::set_timeouts(&stream, config.write_timeout, config.write_timeout);
            let response = error_response(503, "server/overloaded", "connection backlog is full");
            let _ = http::write_response(&mut stream, &response, false);
            continue;
        }
        let state = Arc::clone(state);
        let stop = Arc::clone(stop);
        let config_for_conn = config.clone();
        let _ = pool.try_execute(move || {
            serve_connection(stream, &config_for_conn, &state, &stop);
        });
    }
    pool.shutdown();
}

fn serve_connection(
    mut stream: TcpStream,
    config: &ServerConfig,
    state: &Arc<AppState>,
    stop: &Arc<AtomicBool>,
) {
    if http::set_timeouts(&stream, config.read_timeout, config.write_timeout).is_err() {
        return;
    }
    for served in 0..config.max_keepalive_requests {
        let request = match http::read_request(&mut stream, &config.limits) {
            Ok(request) => request,
            Err(http::ReadError::Closed) => return,
            Err(http::ReadError::Io(_)) => return,
            Err(http::ReadError::TimedOut { mid_request }) => {
                // An idle connection expiring between requests closes
                // quietly; a stall partway through one gets a
                // best-effort 408 so the client knows the half-sent
                // request was not processed.
                if mid_request {
                    let response = error_response(408, "request/timeout", "request timed out");
                    respond_and_close(&mut stream, state, response);
                }
                return;
            }
            Err(http::ReadError::Malformed(message)) => {
                let response = error_response(400, "request/malformed", message);
                respond_and_close(&mut stream, state, response);
                return;
            }
            Err(http::ReadError::BodyTooLarge) => {
                let response =
                    error_response(413, "request/body-too-large", "request body exceeds limit");
                respond_and_close(&mut stream, state, response);
                return;
            }
        };
        let response = handle_request(state, &request);
        state.metrics.record_status(response.status);
        // Stop pinning the worker once shutdown began; the response
        // header tells the client the connection is closing.
        let keep_alive = !request.wants_close()
            && !stop.load(Ordering::SeqCst)
            && served + 1 < config.max_keepalive_requests;
        if http::write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Write a terminal error response, then drain a bounded amount of
/// unread input before the socket drops. Closing with unread bytes in
/// the receive buffer makes the kernel send RST instead of FIN, which
/// can discard the just-written error before the client reads it — the
/// drain lets well-formed-but-rejected requests (unsupported framing,
/// oversized bodies) still see their 4xx.
fn respond_and_close(stream: &mut TcpStream, state: &Arc<AppState>, response: Response) {
    use std::io::Read as _;
    state.metrics.record_status(response.status);
    if http::write_response(stream, &response, false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(n) => drained += n,
            Err(_) => break,
        }
    }
}

fn handle_request(state: &Arc<AppState>, request: &Request) -> Response {
    let _in_flight = state.metrics.begin_request();
    let timer = Instant::now();
    // A handler panic must cost one 500, not the connection or worker.
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::api::handle(state, request)
    }))
    .unwrap_or_else(|_| error_response(500, "server/internal", "request handler panicked"));
    state
        .metrics
        .latency
        .record_micros(timer.elapsed().as_micros() as u64);
    response
}

fn error_response(status: u16, code: &str, message: &str) -> Response {
    crate::api::ApiError {
        status,
        code: code.to_string(),
        message: message.to_string(),
    }
    .response()
}
