//! A circuit breaker over the persistent disk tier.
//!
//! The disk tier is an optimization: when the device under it starts
//! failing (a pulled volume, a full disk, injected faults), every
//! `/compile` miss would otherwise pay a doomed syscall — and worse,
//! a *hanging* device would pay it at device latency. The breaker
//! converts a failing tier into a skipped tier: after
//! [`threshold`](CircuitBreaker::new) **consecutive** I/O errors it
//! *opens* and the serving path stops touching the disk entirely
//! (memory tiers keep answering). After a cooldown one request is let
//! through as a *half-open* probe; its outcome decides whether the
//! breaker closes again or re-opens for another cooldown.
//!
//! Only genuine device errors trip the breaker — a miss, a checksum
//! failure, or an unparsable payload is a *successful* I/O that happened
//! to find nothing servable, and resets the consecutive-failure count.
//!
//! The state machine is the textbook three-state breaker:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ─────────────────────────────────▶ Open
//!     ▲                                        │ cooldown elapses
//!     │ probe succeeds                         ▼
//!     └──────────────────────────────────── HalfOpen
//!                 probe fails: back to Open, new cooldown
//! ```
//!
//! `/healthz` reports `degraded` while the breaker is anything but
//! closed; `/metrics` exposes the full [`BreakerSnapshot`].

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default consecutive-failure threshold before the breaker opens.
pub const DEFAULT_THRESHOLD: u32 = 5;

/// Default time an open breaker waits before allowing a probe.
pub const DEFAULT_COOLDOWN: Duration = Duration::from_secs(2);

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Disk I/O flows normally.
    Closed,
    /// Disk I/O is short-circuited until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides the next
    /// state.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for `/metrics` and `/healthz`.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A point-in-time view of the breaker for metrics/health documents.
#[derive(Debug, Clone, Copy)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures observed while closed (resets on success).
    pub consecutive_failures: u32,
    /// Failure count that opens the breaker.
    pub threshold: u32,
    /// Times the breaker has transitioned to open.
    pub opened_total: u64,
    /// Disk operations short-circuited while open.
    pub rejected: u64,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When an open breaker may release its probe.
    open_until: Instant,
    opened_total: u64,
    rejected: u64,
}

/// The three-state breaker (see module docs). All methods take `&self`;
/// internal state sits behind one mutex touched only on the disk-tier
/// path (never on cache hits).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and probes again `cooldown` after opening. A threshold
    /// of 0 is treated as 1 (a breaker that can never open would be a
    /// no-op).
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Instant::now(),
                opened_total: 0,
                rejected: 0,
            }),
        }
    }

    /// A breaker with the default threshold/cooldown.
    pub fn with_defaults() -> CircuitBreaker {
        CircuitBreaker::new(DEFAULT_THRESHOLD, DEFAULT_COOLDOWN)
    }

    /// Whether the caller may touch the disk tier right now.
    ///
    /// Open → `false` until the cooldown elapses, then the *first*
    /// caller becomes the half-open probe (`true`); concurrent callers
    /// during the probe are rejected so one slow device cannot absorb a
    /// thundering herd of probes. Every `true` must be followed by
    /// [`record_success`](CircuitBreaker::record_success) or
    /// [`record_failure`](CircuitBreaker::record_failure) on the same
    /// request path.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if Instant::now() >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    inner.rejected += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                inner.rejected += 1;
                false
            }
        }
    }

    /// A disk operation completed without a device error (including
    /// misses and checksum rejections — the device answered).
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
    }

    /// A disk operation failed with a device error.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    open(&mut inner, self.cooldown);
                }
            }
            // The probe failed: straight back to open, fresh cooldown.
            BreakerState::HalfOpen => open(&mut inner, self.cooldown),
            BreakerState::Open => {}
        }
    }

    /// Whether the service should report `degraded`: the breaker is
    /// anything but closed.
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().expect("breaker poisoned").state != BreakerState::Closed
    }

    /// Point-in-time view for metrics/health documents.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let inner = self.inner.lock().expect("breaker poisoned");
        BreakerSnapshot {
            state: inner.state,
            consecutive_failures: inner.consecutive_failures,
            threshold: self.threshold,
            opened_total: inner.opened_total,
            rejected: inner.rejected,
        }
    }
}

fn open(inner: &mut Inner, cooldown: Duration) {
    inner.state = BreakerState::Open;
    inner.open_until = Instant::now() + cooldown;
    inner.opened_total += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant() -> CircuitBreaker {
        // Zero cooldown: an open breaker releases its probe immediately,
        // letting tests walk the state machine without sleeping.
        CircuitBreaker::new(3, Duration::from_secs(0))
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let breaker = CircuitBreaker::new(3, Duration::from_secs(60));
        breaker.record_failure();
        breaker.record_failure();
        assert!(breaker.allow(), "below threshold stays closed");
        assert!(!breaker.is_degraded());
        breaker.record_failure();
        assert!(!breaker.allow(), "threshold reached: open");
        assert!(breaker.is_degraded());
        let snap = breaker.snapshot();
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.opened_total, 1);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let breaker = CircuitBreaker::new(3, Duration::from_secs(60));
        breaker.record_failure();
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert!(breaker.allow(), "interleaved successes keep it closed");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let breaker = instant();
        for _ in 0..3 {
            breaker.record_failure();
        }
        // Cooldown is zero: the next allow is the probe.
        assert!(breaker.allow());
        assert_eq!(breaker.snapshot().state, BreakerState::HalfOpen);
        // Concurrent callers during the probe are rejected.
        assert!(!breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.snapshot().state, BreakerState::Closed);
        assert!(breaker.allow());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let breaker = instant();
        for _ in 0..3 {
            breaker.record_failure();
        }
        assert!(breaker.allow(), "probe released");
        breaker.record_failure();
        let snap = breaker.snapshot();
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.opened_total, 2, "probe failure re-opens");
    }
}
