//! # spire-serve: the always-on compile-and-estimate service
//!
//! Large-scale quantum deployments need always-on classical control
//! services that compile and re-cost programs on demand; this crate
//! turns the batch Spire reproduction into that long-running,
//! measurable service. It is dependency-free — HTTP/1.1 directly on
//! [`std::net::TcpListener`] — because the build environment is offline,
//! and because the service's hot path is the compiler, not the protocol.
//!
//! Layers:
//!
//! * [`http`] — the minimal HTTP/1.1 subset: an incremental request
//!   parser (size caps, `Content-Length` bodies only, pipelining),
//!   response encoder, and the small client the load-test harness and
//!   tests use.
//! * [`conn`] — per-connection state for the event loop: non-blocking
//!   reads into the parser, buffered response writes, deadlines.
//! * [`pool`] — a bounded worker thread pool with graceful drain; a full
//!   backlog sheds requests with `503` instead of queueing without
//!   limit.
//! * [`metrics`] — wait-free counters and power-of-two-bucket latency
//!   histograms (interpolated percentiles) behind `GET /metrics`, with
//!   build provenance, the event loop's self-profile, and a Prometheus
//!   text renderer for `?format=prometheus`.
//! * [`slow`] — the slow-request log: the N slowest traced requests
//!   with their full span trees, behind `GET /debug/slow` (JSON or
//!   Chrome `trace_event`).
//! * [`api`] — the endpoints: `POST /compile` (source → T-counts, gate
//!   histogram, optional `.qc` text), `POST /simulate` (sparse-backend
//!   execution with variable bindings), `GET /benchmarks` (the paper's
//!   12 programs through the cache), `GET /metrics`, `GET /healthz`,
//!   `GET /debug/slow` — every failure mapped to a structured JSON body
//!   with a stable machine-readable error code, and `?trace=1` on the
//!   compile endpoints returning the request's span tree inline.
//! * [`server`] — the readiness-driven event loop (over the vendored
//!   `poll` shim): one thread owns the listener and every connection,
//!   CPU work runs on the pool, responses come back through a
//!   completion queue and a loopback waker. Per-request traces
//!   ([`spire_trace`]) are created here, follow the request across
//!   threads, and are finished only when the response has flushed.
//! * [`loadtest`] — a closed- and open-loop load generator over the
//!   benchmark programs that writes the `BENCH_serve.json` perf
//!   trajectory (schema 6, with latency-under-load curves, the
//!   traced-vs-untraced throughput delta, and retry / worker-failure
//!   accounting).
//!
//! The compile path sits on [`spire::SingleFlightCache`]: the
//! content-addressed compile cache (lock-striped) with a single-flight
//! layer, so a thundering herd of identical requests costs exactly one
//! compilation. With [`ServerConfig::cache_dir`] set, `/compile`
//! results additionally persist to an append-only content-addressed
//! store ([`spire::DiskStore`]), so a restarted server answers
//! previously-compiled requests from disk (`"served": "disk"`) without
//! recompiling.
//!
//! See `docs/SERVING.md` for the protocol reference and a worked `curl`
//! session, and `docs/OBSERVABILITY.md` for the tracing and profiling
//! surfaces.
//!
//! # Example
//!
//! ```
//! use spire_serve::http::client_roundtrip;
//! use spire_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let mut conn = std::net::TcpStream::connect(server.addr())?;
//! let (status, body) = client_roundtrip(
//!     &mut conn,
//!     "POST",
//!     "/compile",
//!     Some(r#"{"source":"fun f(x: uint) -> uint { let y <- x + 1; return y; }","entry":"f"}"#),
//! )?;
//! assert_eq!(status, 200);
//! let reply = qcirc::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
//! assert!(reply.get("t_complexity").is_some());
//! drop(conn);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod breaker;
pub mod conn;
pub mod http;
pub mod loadtest;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod slow;

pub use api::ApiError;
pub use breaker::{BreakerSnapshot, BreakerState, CircuitBreaker};
pub use loadtest::{LoadConfig, LoadReport, OpenLoopPoint, TracingReport, WarmupReport};
pub use metrics::{Metrics, ServeHealth};
pub use server::{default_threads, AppState, Server, ServerConfig};
pub use slow::{SlowEntry, SlowLog};
