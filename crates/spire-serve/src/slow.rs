//! The slow-request log: the N slowest traced requests since startup,
//! each with its full span tree, behind `GET /debug/slow`.
//!
//! Only *traced* requests are eligible (the trace is where the span tree
//! comes from), so with sampling off the log fills from `?trace=1`
//! requests only and the untraced hot path stays untouched. Offers are
//! O(N log N) on a small bounded vector under a mutex — this is a debug
//! surface, not a hot path.
//!
//! Two renderings: a JSON document (span trees via
//! [`spire_trace::build_tree`]) and the Chrome `trace_event` format
//! (`?format=chrome`), one lane per captured request, loadable in
//! `chrome://tracing` or Perfetto. The Chrome form is rendered
//! server-side so the `spire trace` CLI and the load tester's
//! `--trace-out` flag just save the response body.

use std::sync::Mutex;

use qcirc::json::Json;
use spire_trace::{build_tree, chrome_trace_json, ChromeGroup, SpanRecord};

/// One captured slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's trace ID.
    pub trace_id: u64,
    /// Request path (e.g. `/compile`).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// End-to-end duration, first byte to response flushed.
    pub duration_ns: u64,
    /// Every span of the trace, as captured at completion.
    pub records: Vec<SpanRecord>,
}

/// A bounded, duration-ordered log of the slowest traced requests.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    /// Sorted by descending duration; ties keep insertion order.
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// An empty log keeping at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// How many entries the log retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a finished traced request; kept if the log has room or the
    /// request outlasted the current fastest entry.
    pub fn offer(&self, entry: SlowEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= self.capacity
            && entries
                .last()
                .is_some_and(|fastest| fastest.duration_ns >= entry.duration_ns)
        {
            return;
        }
        entries.push(entry);
        entries.sort_by_key(|e| std::cmp::Reverse(e.duration_ns));
        entries.truncate(self.capacity);
    }

    /// A snapshot of the current entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries.lock().expect("slow log poisoned").clone()
    }

    /// The `GET /debug/slow` JSON document: capacity, count, and one
    /// object per entry with its full span tree.
    pub fn to_json(&self) -> Json {
        let entries = self.snapshot();
        let rows = entries
            .iter()
            .map(|entry| {
                let tree = build_tree(entry.trace_id, &entry.records);
                let spans = qcirc::json::parse(&tree.to_json())
                    .ok()
                    .and_then(|parsed| parsed.get("spans").cloned())
                    .unwrap_or(Json::Array(Vec::new()));
                Json::obj()
                    .field("trace_id", format!("{:016x}", entry.trace_id))
                    .field("path", entry.path.as_str())
                    .field("status", u64::from(entry.status))
                    .field("duration_ns", entry.duration_ns)
                    .field("spans", spans)
                    .build()
            })
            .collect();
        Json::obj()
            .field("capacity", self.capacity as u64)
            .field("slowest", Json::Array(rows))
            .build()
    }

    /// The `GET /debug/slow?format=chrome` document: Chrome
    /// `trace_event` JSON, one lane per captured request, labelled with
    /// path, trace ID, and duration.
    pub fn to_chrome(&self) -> String {
        let entries = self.snapshot();
        let groups: Vec<ChromeGroup> = entries
            .iter()
            .map(|entry| ChromeGroup {
                label: format!(
                    "{} {:016x} ({:.3} ms)",
                    entry.path,
                    entry.trace_id,
                    entry.duration_ns as f64 / 1e6
                ),
                records: entry.records.clone(),
            })
            .collect();
        chrome_trace_json(&groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, duration_ns: u64) -> SlowEntry {
        SlowEntry {
            trace_id,
            path: "/compile".to_string(),
            status: 200,
            duration_ns,
            records: vec![SpanRecord::new(trace_id, 1, 0, "request", 0, duration_ns)],
        }
    }

    #[test]
    fn keeps_the_slowest_n_in_order() {
        let log = SlowLog::new(3);
        for (id, dur) in [(1, 50), (2, 10), (3, 99), (4, 70), (5, 5)] {
            log.offer(entry(id, dur));
        }
        let kept: Vec<(u64, u64)> = log
            .snapshot()
            .iter()
            .map(|e| (e.trace_id, e.duration_ns))
            .collect();
        assert_eq!(kept, vec![(3, 99), (4, 70), (1, 50)]);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let log = SlowLog::new(0);
        log.offer(entry(1, 100));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn renders_json_and_chrome() {
        let log = SlowLog::new(2);
        log.offer(entry(7, 42));
        let doc = log.to_json().to_string();
        let parsed = qcirc::json::parse(&doc).unwrap();
        let slowest = parsed.get("slowest").and_then(Json::as_array).unwrap();
        assert_eq!(slowest.len(), 1);
        assert_eq!(
            slowest[0].get("trace_id").and_then(Json::as_str),
            Some("0000000000000007")
        );
        assert_eq!(
            slowest[0].get("duration_ns").and_then(Json::as_u64),
            Some(42)
        );
        let chrome = log.to_chrome();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("request"));
        assert!(qcirc::json::parse(&chrome).is_ok(), "chrome JSON parses");
    }
}
