//! Request routing, schemas, and error mapping.
//!
//! Every response body is JSON. Failures are *structured*: the body is
//! `{"error":{"code":..., "message":...}}` where `code` is a stable
//! machine-readable identifier — request-shape problems use the
//! `request/` namespace, service conditions use `server/`, and compiler
//! failures carry [`SpireError::code`]/`TowerError::code` verbatim (so a
//! client can distinguish `tower/parse` from `spire/unsound-allocation`
//! without scraping prose). The HTTP status encodes the class: `400` for
//! malformed requests, `404`/`405` for routing, `413` for oversized
//! bodies, `422` for well-formed requests whose *program* is rejected by
//! the compiler, `500`/`503` for service conditions.

use std::sync::atomic::Ordering;

use qcirc::json::{self, Json};
use qcirc::sim::{BasisState, SparseState, SparseState256};
use qcirc::Circuit;
use spire::{CompileOptions, Compiled, Machine, OptConfig, Served, SpireError};
use tower::WordConfig;

use crate::http::{Request, Response};
use crate::server::AppState;

/// Deepest recursion depth a request may ask for: compilation cost grows
/// quickly with depth, and an unbounded request would let one client
/// stall a worker arbitrarily long. The paper's own sweeps stop at 10.
pub const MAX_DEPTH: i64 = 12;

/// Most input assignments one `/simulate` request may batch via `shots`:
/// the program is compiled and emitted once, but every shot is a full
/// simulation, so an unbounded batch would stall a worker just like an
/// unbounded recursion depth.
pub const MAX_SHOTS: usize = 64;

/// A structured API failure.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    fn new(status: u16, code: impl Into<String>, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code: code.into(),
            message: message.into(),
        }
    }

    /// 400 with a `request/` code.
    pub fn bad_request(code: &str, message: impl Into<String>) -> Self {
        ApiError::new(400, code, message)
    }

    /// 422 from a compiler error, carrying its stable code.
    pub fn from_spire(error: &SpireError) -> Self {
        ApiError::new(422, error.code(), error.to_string())
    }

    /// 422 from a circuit/simulation error, carrying its stable code.
    pub fn from_qcirc(error: &qcirc::QcircError) -> Self {
        ApiError::new(422, error.code(), error.to_string())
    }

    /// The JSON response for this error.
    pub fn response(&self) -> Response {
        let body = Json::obj()
            .field(
                "error",
                Json::obj()
                    .field("code", self.code.as_str())
                    .field("message", self.message.as_str()),
            )
            .build();
        Response::json(self.status, body.to_string())
    }
}

/// Route one request. Infallible: every failure path returns a
/// structured error response.
pub fn handle(state: &AppState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/compile") => {
            state
                .metrics
                .compile
                .requests
                .fetch_add(1, Ordering::Relaxed);
            run(|| compile_endpoint(state, request))
        }
        ("POST", "/simulate") => {
            state
                .metrics
                .simulate
                .requests
                .fetch_add(1, Ordering::Relaxed);
            run(|| simulate_endpoint(state, request))
        }
        ("POST", "/check") => {
            state.metrics.check.requests.fetch_add(1, Ordering::Relaxed);
            run(|| check_endpoint(state, request))
        }
        ("GET", "/benchmarks") => {
            state
                .metrics
                .benchmarks
                .requests
                .fetch_add(1, Ordering::Relaxed);
            run(|| benchmarks_endpoint(state, request))
        }
        ("GET", "/metrics") => {
            state
                .metrics
                .control
                .requests
                .fetch_add(1, Ordering::Relaxed);
            metrics_endpoint(state, request)
        }
        ("GET", "/debug/slow") => {
            state
                .metrics
                .control
                .requests
                .fetch_add(1, Ordering::Relaxed);
            slow_endpoint(state, request)
        }
        ("GET", "/healthz") => {
            state
                .metrics
                .control
                .requests
                .fetch_add(1, Ordering::Relaxed);
            healthz_endpoint(state)
        }
        (
            _,
            "/compile" | "/simulate" | "/check" | "/benchmarks" | "/metrics" | "/debug/slow"
            | "/healthz",
        ) => ApiError::new(
            405,
            "request/method-not-allowed",
            format!(
                "method {} not supported on {}",
                request.method, request.path
            ),
        )
        .response(),
        _ => ApiError::new(
            404,
            "request/unknown-route",
            format!("no route for {}", request.path),
        )
        .response(),
    }
}

fn run(endpoint: impl FnOnce() -> Result<Json, ApiError>) -> Response {
    let result = endpoint();
    let response = match result {
        // An explicit `?trace=1` gets the span tree inline; sampled
        // traces stay out of the body so sampling never changes a
        // response a client did not ask to be different.
        Ok(body) => match spire_trace::active_explicit() {
            Some(_) => Response::json(200, attach_inline_trace(body).to_string()),
            None => Response::json(200, body.to_string()),
        },
        Err(e) => e.response(),
    };
    // Any traced request (explicit or sampled) can be correlated with
    // `/debug/slow` through the trace-id header.
    match spire_trace::active_trace_id() {
        Some(trace_id) => response.with_header("x-spire-trace-id", format!("{trace_id:016x}")),
        None => response,
    }
}

/// Append a `"trace"` field holding the request's span tree to a
/// successful response body. The `handler` span and the `request` root
/// are still open at this point (the handler is *producing* this very
/// response), so in-progress records are synthesized for them — their
/// end timestamps read "so far", and the authoritative closed spans
/// land in the ring (and the slow log) when the response flush
/// completes.
fn attach_inline_trace(body: Json) -> Json {
    let Json::Object(mut fields) = body else {
        return body;
    };
    let Some((trace_id, mut records)) = spire_trace::active_records() else {
        return Json::Object(fields);
    };
    let now_ns = spire_trace::active_now_ns().unwrap_or(0);
    let root_id = spire_trace::active_root_id().unwrap_or(0);
    let handler_id = spire_trace::ambient_parent().unwrap_or(root_id);
    if handler_id != root_id {
        // The handler opened after queue dwell ended.
        let start_ns = records
            .iter()
            .filter(|r| r.parent_id == root_id && r.stage() == "queue")
            .map(|r| r.end_ns)
            .max()
            .unwrap_or(0);
        records.push(spire_trace::SpanRecord::new(
            trace_id, handler_id, root_id, "handler", start_ns, now_ns,
        ));
    }
    records.push(spire_trace::SpanRecord::new(
        trace_id, root_id, 0, "request", 0, now_ns,
    ));
    let tree = spire_trace::build_tree(trace_id, &records);
    let rendered = json::parse(&tree.to_json()).unwrap_or(Json::Null);
    fields.push(("trace".to_string(), rendered));
    Json::Object(fields)
}

/// Parameters shared by `/compile` and `/simulate`.
struct CompileParams {
    source: String,
    entry: String,
    depth: i64,
    config: WordConfig,
    options: CompileOptions,
}

fn parse_body(request: &Request) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("request/invalid-utf8", "body is not UTF-8"))?;
    json::parse(text).map_err(|e| ApiError::bad_request("request/invalid-json", e.to_string()))
}

fn required_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    body.get(key)
        .ok_or_else(|| {
            ApiError::bad_request("request/missing-field", format!("missing field `{key}`"))
        })?
        .as_str()
        .ok_or_else(|| {
            ApiError::bad_request(
                "request/invalid-field",
                format!("field `{key}` must be a string"),
            )
        })
}

fn compile_params(body: &Json) -> Result<CompileParams, ApiError> {
    let source = required_str(body, "source")?.to_string();
    let entry = required_str(body, "entry")?.to_string();
    let depth = match body.get("depth") {
        None => 0,
        Some(value) => value.as_i64().ok_or_else(|| {
            ApiError::bad_request("request/invalid-field", "field `depth` must be an integer")
        })?,
    };
    if !(0..=MAX_DEPTH).contains(&depth) {
        return Err(ApiError::bad_request(
            "request/invalid-field",
            format!("field `depth` must be in 0..={MAX_DEPTH}"),
        ));
    }
    let config = match body.get("word") {
        None => WordConfig::paper_default(),
        Some(word) => {
            let bits = |key: &str, default: u32| -> Result<u32, ApiError> {
                match word.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .and_then(|b| u32::try_from(b).ok())
                        .filter(|&b| (1..=64).contains(&b))
                        .ok_or_else(|| {
                            ApiError::bad_request(
                                "request/invalid-field",
                                format!("field `word.{key}` must be an integer in 1..=64"),
                            )
                        }),
                }
            };
            let paper = WordConfig::paper_default();
            WordConfig {
                uint_bits: bits("uint_bits", paper.uint_bits)?,
                ptr_bits: bits("ptr_bits", paper.ptr_bits)?,
            }
        }
    };
    let opt = match body.get("opt") {
        None => OptConfig::spire(),
        Some(value) => match value.as_str() {
            Some("spire") => OptConfig::spire(),
            Some("cf") => OptConfig::flattening_only(),
            Some("cn") => OptConfig::narrowing_only(),
            Some("none") => OptConfig::none(),
            _ => {
                return Err(ApiError::bad_request(
                    "request/invalid-field",
                    "field `opt` must be one of spire|cf|cn|none",
                ))
            }
        },
    };
    Ok(CompileParams {
        source,
        entry,
        depth,
        config,
        options: CompileOptions::with_opt(opt),
    })
}

fn served_label(served: Served) -> &'static str {
    match served {
        Served::CacheHit => "cache",
        Served::Led => "compiled",
        Served::Coalesced => "coalesced",
    }
}

fn compile_through_cache(
    state: &AppState,
    params: &CompileParams,
) -> Result<(std::sync::Arc<Compiled>, Served, spire::CacheKey), ApiError> {
    let (result, served, key) = state.compiler.get_or_compile_traced(
        &params.source,
        &params.entry,
        params.depth,
        params.config,
        &params.options,
    );
    let compiled = result.map_err(|e| ApiError::from_spire(&e))?;
    Ok((compiled, served, key))
}

/// The response-ready `/compile` document for one compilation — every
/// field the endpoint can return except `served` (which varies per
/// request). The `.qc` text is always included so the persisted form
/// can answer `include_qc` requests; responses strip it unless asked.
/// This is the value the persistent tier stores (as JSON bytes, keyed
/// by the compile [`spire::CacheKey`]): the full [`Compiled`] IR is not
/// serialized — `/simulate` and `/check` need the live structure and
/// always go through the in-memory compile cache.
fn build_artifact(compiled: &Compiled, key: spire::CacheKey) -> Json {
    let hist = compiled.histogram();
    Json::obj()
        .field("key", key.to_string())
        .field("t_complexity", hist.t_complexity())
        .field("mcx_complexity", hist.mcx_complexity())
        .field("toffoli_count", hist.toffoli_count())
        .field("max_controls", hist.max_controls())
        .field("qubits", compiled.qubits())
        .field(
            "qubits_after_decomposition",
            compiled.qubits_after_decomposition(),
        )
        .field("histogram", hist.to_json_value())
        .field("qc", qcirc::qcformat::write(&compiled.emit()))
        .build()
}

/// Splice `served` into an artifact and drop the `.qc` text unless the
/// client asked for it.
fn render_artifact(artifact: &Json, served: &str, include_qc: bool) -> Json {
    let mut fields = vec![("served".to_string(), Json::from(served))];
    if let Some(entries) = artifact.as_object() {
        for (name, value) in entries {
            if name == "qc" && !include_qc {
                continue;
            }
            fields.push((name.clone(), value.clone()));
        }
    }
    Json::Object(fields)
}

/// Persist a freshly built artifact when the disk tier is enabled and
/// does not hold this key yet. Write failures never fail the request —
/// the disk tier is an optimization — but they *are* observed by the
/// circuit breaker, so a failing device stops being poked once the
/// breaker opens. The in-memory `contains` check runs before the
/// breaker gate: it does no I/O, so it must neither consume a half-open
/// probe nor count as a device success.
fn persist_artifact(state: &AppState, key: u128, artifact: &Json) {
    let Some(disk) = state.disk() else { return };
    if disk.contains(key) || !state.breaker.allow() {
        return;
    }
    match disk.put(key, artifact.to_string().as_bytes()) {
        Ok(_) => state.breaker.record_success(),
        Err(_) => state.breaker.record_failure(),
    }
}

fn compile_endpoint(state: &AppState, request: &Request) -> Result<Json, ApiError> {
    let timer = std::time::Instant::now();
    let body = parse_body(request)?;
    let params = compile_params(&body)?;
    let include_qc = matches!(body.get("include_qc"), Some(Json::Bool(true)));
    let key = spire::CacheKey::new(
        &params.source,
        &params.entry,
        params.depth,
        params.config,
        &params.options,
    );
    // Tiered resolution. 1: the in-memory compile cache (the live
    // `Compiled` — also backfills the disk tier for keys first compiled
    // by `/check` or `/simulate`). The rendered artifact is memoized in
    // the artifact map: building one re-emits the circuit and renders
    // its `.qc` text, milliseconds of CPU a cache *hit* must not pay
    // per request.
    let response = if let Some(compiled) = state.compiler.cache().lookup(key) {
        let artifact = match state.artifact(key.value()) {
            Some(artifact) => artifact,
            None => {
                let artifact = std::sync::Arc::new(build_artifact(&compiled, key));
                state.store_artifact(key.value(), std::sync::Arc::clone(&artifact));
                persist_artifact(state, key.value(), &artifact);
                artifact
            }
        };
        render_artifact(&artifact, "cache", include_qc)
    } else if let Some(artifact) = state.artifact(key.value()) {
        // 2: an artifact decoded from an earlier disk hit (or memoized
        // by an earlier tier-1 hit whose live compilation has since
        // been dropped).
        render_artifact(&artifact, "cache", include_qc)
    } else if let Some(artifact) = disk_artifact(state, key.value()) {
        // 3: the persistent tier — a previous process compiled this.
        render_artifact(&artifact, "disk", include_qc)
    } else {
        // 4: compile (deduplicated by the single-flight layer).
        let (compiled, served, _key) = compile_through_cache(state, &params)?;
        // A traced fresh compile also runs the spire-verify checks so
        // the trace covers the full pipeline (parse → … → emit →
        // verify); the report itself is the `/check` endpoint's job.
        if served == Served::Led && spire_trace::is_active() {
            let _ = spire::check_compiled(&compiled, &params.entry);
        }
        let artifact = std::sync::Arc::new(build_artifact(&compiled, key));
        state.store_artifact(key.value(), std::sync::Arc::clone(&artifact));
        persist_artifact(state, key.value(), &artifact);
        render_artifact(&artifact, served_label(served), include_qc)
    };
    state
        .metrics
        .compile_latency
        .record_micros(timer.elapsed().as_micros() as u64);
    Ok(response)
}

/// Fetch and decode an artifact from the persistent tier, remembering
/// the decoded form so repeats skip the disk read and parse. A record
/// whose checksum verified but whose payload does not decode as an
/// artifact object is never served — it is *quarantined* (dropped from
/// the index and counted), so a poisoned record costs one failed parse
/// total instead of one per request.
///
/// The tier is gated by the circuit breaker: index misses cost no I/O
/// and bypass it; actual reads report their outcome, so consecutive
/// device errors open the breaker and later requests skip straight to
/// compilation.
fn disk_artifact(state: &AppState, key: u128) -> Option<std::sync::Arc<Json>> {
    let disk = state.disk()?;
    if !disk.contains(key) {
        return None; // pure index miss: no device I/O to gate or record
    }
    if !state.breaker.allow() {
        return None; // breaker open: skip the tier, memory keeps serving
    }
    match disk.try_get(key) {
        Err(_) => {
            state.breaker.record_failure();
            None
        }
        Ok(None) => {
            // The device answered; the record was corrupt and the store
            // already quarantined it.
            state.breaker.record_success();
            None
        }
        Ok(Some(payload)) => {
            state.breaker.record_success();
            let decoded = std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| json::parse(text).ok())
                .filter(|parsed| parsed.as_object().is_some());
            let Some(parsed) = decoded else {
                disk.quarantine(key);
                return None;
            };
            let artifact = std::sync::Arc::new(parsed);
            state.store_artifact(key, std::sync::Arc::clone(&artifact));
            Some(artifact)
        }
    }
}

/// One input assignment: variable name → classical value.
fn parse_inputs(value: &Json, context: &str) -> Result<Vec<(String, u64)>, ApiError> {
    let fields = value.as_object().ok_or_else(|| {
        ApiError::bad_request(
            "request/invalid-field",
            format!("field `{context}` must be an object"),
        )
    })?;
    let mut inputs = Vec::new();
    for (name, v) in fields {
        let value = v.as_u64().ok_or_else(|| {
            ApiError::bad_request(
                "request/invalid-field",
                format!("input `{name}` must be a non-negative integer"),
            )
        })?;
        inputs.push((name.clone(), value));
    }
    Ok(inputs)
}

fn simulate_endpoint(state: &AppState, request: &Request) -> Result<Json, ApiError> {
    let body = parse_body(request)?;
    let params = compile_params(&body)?;
    // Two request shapes: a single `inputs` object, or a batched `shots`
    // array of input objects sharing one compilation.
    let shots: Vec<Vec<(String, u64)>> = match (body.get("inputs"), body.get("shots")) {
        (Some(_), Some(_)) => {
            return Err(ApiError::bad_request(
                "request/invalid-field",
                "fields `inputs` and `shots` are mutually exclusive",
            ))
        }
        (Some(inputs), None) => vec![parse_inputs(inputs, "inputs")?],
        (None, Some(list)) => {
            let entries = list.as_array().ok_or_else(|| {
                ApiError::bad_request("request/invalid-field", "field `shots` must be an array")
            })?;
            if entries.is_empty() || entries.len() > MAX_SHOTS {
                return Err(ApiError::bad_request(
                    "request/invalid-field",
                    format!("field `shots` must hold 1..={MAX_SHOTS} input objects"),
                ));
            }
            entries
                .iter()
                .map(|entry| parse_inputs(entry, "shots[..]"))
                .collect::<Result<_, _>>()?
        }
        (None, None) => vec![Vec::new()],
    };
    let batched = body.get("shots").is_some();
    let (compiled, served, _key) = compile_through_cache(state, &params)?;
    // Backend tiers by register size: the u64-keyed sparse simulator
    // (full gate set) through 64 qubits, the 256-bit-keyed one through
    // 256, classical reversible simulation beyond. The circuit is
    // emitted once and shared across every shot.
    let total = compiled.layout.total_qubits;
    let circuit = compiled.emit();
    let (backend, results) = if total <= 64 {
        let results = run_shots::<SparseState>(&compiled, &circuit, &shots, |machine| {
            Some(machine.state().support())
        })?;
        ("sparse", results)
    } else if total <= 256 {
        let results = run_shots::<SparseState256>(&compiled, &circuit, &shots, |machine| {
            Some(machine.state().support())
        })?;
        ("sparse-wide", results)
    } else {
        let results = run_shots::<BasisState>(&compiled, &circuit, &shots, |_| None)?;
        ("classical", results)
    };
    let mut response = Json::obj()
        .field("served", served_label(served))
        .field("backend", backend)
        .field("qubits", total);
    if batched {
        let rows = results
            .into_iter()
            .map(|(support, vars)| {
                Json::obj()
                    .field("support", support.map(Json::from))
                    .field("vars", vars)
                    .build()
            })
            .collect();
        response = response.field("shots", Json::Array(rows));
    } else {
        let (support, vars) = results.into_iter().next().expect("one shot ran");
        response = response
            .field("support", support.map(Json::from))
            .field("vars", vars);
    }
    Ok(response.build())
}

/// Run every shot of a batch on one backend against one emitted circuit,
/// returning each shot's final support (where the backend has one) and
/// live-variable values.
fn run_shots<S: qcirc::sim::Simulator>(
    compiled: &Compiled,
    circuit: &Circuit,
    shots: &[Vec<(String, u64)>],
    support_of: impl Fn(&Machine<S>) -> Option<usize>,
) -> Result<Vec<(Option<usize>, Json)>, ApiError> {
    shots
        .iter()
        .map(|inputs| {
            let mut machine: Machine<S> = Machine::with_backend(&compiled.layout);
            for (name, value) in inputs {
                machine
                    .set_var(name, *value)
                    .map_err(|e| ApiError::from_spire(&e))?;
            }
            machine.run(circuit).map_err(|e| ApiError::from_qcirc(&e))?;
            let vars = read_vars(compiled, |name| machine.var(name).ok());
            Ok((support_of(&machine), vars))
        })
        .collect()
}

/// Final values of the program's live variables, in declaration order:
/// the same view `spire-cli compile --simulate` prints. Superposed
/// registers serialize as `null`.
fn read_vars(compiled: &Compiled, read: impl Fn(&str) -> Option<u64>) -> Json {
    let mut seen = std::collections::HashSet::new();
    let mut fields = Vec::new();
    for (var, _ty) in &compiled.types.final_context {
        let name = var.as_str();
        if name.contains('%') {
            continue; // optimizer temporary
        }
        if !seen.insert(name) {
            continue; // re-declarations share one register
        }
        fields.push((name.to_string(), Json::from(read(name))));
    }
    Json::Object(fields)
}

/// `POST /check`: run the `spire-verify` static analyses over the
/// compiled program (same request schema as `/compile`, served through
/// the same cache) and return the diagnostics report — gate-stream
/// well-formedness, ancilla discipline, and the entry function's static
/// T-complexity bounds. A dirty report is still a `200`: the *check*
/// succeeded; `report.clean` says what it found.
fn check_endpoint(state: &AppState, request: &Request) -> Result<Json, ApiError> {
    let body = parse_body(request)?;
    let params = compile_params(&body)?;
    let (compiled, served, key) = compile_through_cache(state, &params)?;
    // The analyses are deterministic over the compiled program, which
    // the content address pins — memoize the rendered report so a warm
    // `/check` costs a lookup, not a re-verification.
    let report = match state.report(key.value()) {
        Some(report) => report,
        None => {
            let report =
                std::sync::Arc::new(spire::check_compiled(&compiled, &params.entry).to_json());
            state.store_report(key.value(), std::sync::Arc::clone(&report));
            report
        }
    };
    Ok(Json::obj()
        .field("key", key.to_string())
        .field("served", served_label(served))
        .field("report", (*report).clone())
        .build())
}

fn benchmarks_endpoint(state: &AppState, request: &Request) -> Result<Json, ApiError> {
    let depth: i64 = match request.query_param("depth") {
        None => 3,
        Some(raw) => raw
            .parse()
            .ok()
            .filter(|d| (0..=MAX_DEPTH).contains(d))
            .ok_or_else(|| {
                ApiError::bad_request(
                    "request/invalid-field",
                    format!("query `depth` must be an integer in 0..={MAX_DEPTH}"),
                )
            })?,
    };
    let mut rows = Vec::new();
    for bench in bench_suite::programs::all_benchmarks() {
        let bench_depth = if bench.constant { 0 } else { depth };
        let (result, served, _key) = state.compiler.get_or_compile_traced(
            &bench.source,
            bench.entry,
            bench_depth,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        );
        let compiled = result.map_err(|e| ApiError::from_spire(&e))?;
        let hist = compiled.histogram();
        rows.push(
            Json::obj()
                .field("name", bench.name)
                .field("group", bench.group)
                .field("entry", bench.entry)
                .field("depth", bench_depth)
                .field("served", served_label(served))
                .field("t_complexity", hist.t_complexity())
                .field("mcx_complexity", hist.mcx_complexity())
                .field("qubits", compiled.qubits())
                .build(),
        );
    }
    Ok(Json::obj()
        .field("depth", depth)
        .field("benchmarks", Json::Array(rows))
        .build())
}

fn metrics_endpoint(state: &AppState, request: &Request) -> Response {
    let cache = state.compiler.cache().stats();
    let flights = state.compiler.flight_stats();
    let disk = state.disk().map(spire::DiskStore::stats);
    let (artifact_bytes, report_bytes, memo_evictions) = state.memo_stats();
    let health = crate::metrics::ServeHealth {
        breaker: state.disk().map(|_| state.breaker.snapshot()),
        faults: state
            .disk()
            .map(spire::DiskStore::faults)
            .filter(|faults| faults.is_active())
            .map(|faults| (faults.label().to_string(), faults.stats())),
        artifact_bytes,
        report_bytes,
        memo_evictions,
    };
    match request.query_param("format") {
        Some("prometheus") => {
            let text = state
                .metrics
                .to_prometheus(&cache, &flights, disk.as_ref(), &health);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: text.into_bytes(),
                retry_after: None,
                extra_headers: Vec::new(),
            }
        }
        Some(other) => ApiError::bad_request(
            "request/invalid-field",
            format!("query `format` must be `prometheus`, got `{other}`"),
        )
        .response(),
        None => {
            let body = state
                .metrics
                .to_json_value(&cache, &flights, disk.as_ref(), &health);
            Response::json(200, body.to_string())
        }
    }
}

/// `GET /debug/slow`: the N slowest traced requests with their full
/// span trees — JSON by default, the Chrome `trace_event` format with
/// `?format=chrome` (rendered server-side so `spire trace` and the
/// load tester save the body as-is).
fn slow_endpoint(state: &AppState, request: &Request) -> Response {
    match request.query_param("format") {
        Some("chrome") => Response::json(200, state.slow_log().to_chrome()),
        Some(other) => ApiError::bad_request(
            "request/invalid-field",
            format!("query `format` must be `chrome`, got `{other}`"),
        )
        .response(),
        None => Response::json(200, state.slow_log().to_json().to_string()),
    }
}

/// `GET /healthz`: liveness plus the degradation ladder. `"ok"` means
/// every configured tier is serving; `"degraded"` means the service is
/// up and answering but the disk tier's circuit breaker is not closed —
/// compiles still succeed from memory, persistence and warm restarts
/// are impaired. Both states are `200`: a degraded server is exactly
/// the one that must keep telling load balancers it is alive.
fn healthz_endpoint(state: &AppState) -> Response {
    let degraded = state.disk().is_some() && state.breaker.is_degraded();
    let mut body = Json::obj()
        .field("status", if degraded { "degraded" } else { "ok" })
        .field("uptime_seconds", state.metrics.uptime_seconds());
    if state.disk().is_some() {
        let snapshot = state.breaker.snapshot();
        body = body.field(
            "disk",
            Json::obj()
                .field("breaker", snapshot.state.label())
                .field(
                    "consecutive_failures",
                    u64::from(snapshot.consecutive_failures),
                )
                .field("opened_total", snapshot.opened_total),
        );
    }
    Response::json(200, body.build().to_string())
}
