//! Service metrics: lock-free counters and a log-bucketed latency
//! histogram, serialized for `GET /metrics`.
//!
//! Everything on the request path is an atomic increment — no locks, no
//! allocation — so metrics collection never becomes the contention point
//! it is supposed to diagnose. The histogram buckets latencies by
//! power-of-two microseconds (64 buckets cover `[1 µs, ~5 × 10¹³ µs)`,
//! far beyond any request this service can serve), and percentiles are
//! reconstructed from the bucket counts by linear interpolation within
//! the bucket holding the requested rank (see
//! [`LatencyHistogram::percentile_micros`] for the exact error bound).
//! That trade — coarse buckets for a wait-free hot path — is the
//! standard one for serving systems.
//!
//! Two export formats share the counters: the JSON document behind
//! `GET /metrics` ([`Metrics::to_json_value`]) and the Prometheus text
//! exposition behind `GET /metrics?format=prometheus`
//! ([`Metrics::to_prometheus`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use qcirc::json::Json;

use crate::breaker::BreakerSnapshot;

/// Serving-health extras for the `/metrics` document: disk-tier breaker
/// state, any active fault injection, and memo-map residency — the
/// observability half of the graceful-degradation story.
#[derive(Debug, Default)]
pub struct ServeHealth {
    /// Breaker snapshot; `None` when the disk tier is disabled.
    pub breaker: Option<BreakerSnapshot>,
    /// Active fault-injection schedule `(label, stats)`; `None` when no
    /// injection is configured (the production case).
    pub faults: Option<(String, spire::FaultStats)>,
    /// Resident bytes of the memoized `/compile` artifact map.
    pub artifact_bytes: u64,
    /// Resident bytes of the memoized `/check` report map.
    pub report_bytes: u64,
    /// Entries evicted from the two memo maps by their byte budgets.
    pub memo_evictions: u64,
}

/// Number of power-of-two latency buckets.
const BUCKETS: usize = 64;

/// A wait-free histogram of microsecond latencies in power-of-two
/// buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one latency.
    pub fn record_micros(&self, micros: u64) {
        // Bucket b holds samples in [2^b, 2^(b+1)); 0 µs lands in b = 0.
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Estimated `p`-th percentile latency in microseconds, for `p` in
    /// `0..=100`. Returns 0 when empty.
    ///
    /// The estimate interpolates linearly inside the bucket holding the
    /// requested rank: bucket `b` covers `[2^b, 2^(b+1))`, and the value
    /// reported is `2^b + 2^b · (rank_in_bucket / bucket_count)`,
    /// rounded to the nearest microsecond. **Error bound:** if samples
    /// are uniformly distributed within their bucket the estimate is
    /// exact in expectation; in the worst case (all bucket samples piled
    /// at one end) the error is strictly less than one bucket width,
    /// i.e. less than the true value itself (2× resolution) — the same
    /// bound the pre-interpolation upper-bound report had, but without
    /// its systematic upward bias of up to 2×.
    ///
    /// Concurrent writers can skew an in-flight snapshot by at most the
    /// samples recorded during the scan; the value is a monitoring
    /// estimate, not an accounting figure.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &n) in counts.iter().enumerate() {
            if seen + n >= rank {
                let lower = lower_bound_micros(bucket) as f64;
                let width = (upper_bound_micros(bucket) - lower_bound_micros(bucket)) as f64;
                let in_bucket = (rank - seen) as f64 / n as f64;
                return (lower + width * in_bucket).round() as u64;
            }
            seen += n;
        }
        upper_bound_micros(BUCKETS - 1)
    }

    /// A relaxed snapshot of every bucket count (index `b` counts
    /// samples in `[2^b, 2^(b+1))` µs; 0 µs lands in bucket 0).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Serialize count/mean/percentiles plus the raw bucket array as a
    /// JSON object. `buckets` always holds all 64 counts so consumers
    /// can re-derive any percentile offline.
    pub fn to_json_value(&self) -> Json {
        let buckets = self
            .bucket_counts()
            .into_iter()
            .map(Json::from)
            .collect::<Vec<_>>();
        Json::obj()
            .field("count", self.count())
            .field("mean_us", self.mean_micros())
            .field("p50_us", self.percentile_micros(50.0))
            .field("p90_us", self.percentile_micros(90.0))
            .field("p99_us", self.percentile_micros(99.0))
            .field("buckets", Json::Array(buckets))
            .build()
    }

    /// Append this histogram to a Prometheus exposition under `name`
    /// (conventional `_bucket`/`_sum`/`_count` series, cumulative `le`
    /// labels in microseconds). Empty trailing buckets collapse into the
    /// final `+Inf` bucket to keep the document small.
    fn render_prometheus(&self, out: &mut String, name: &str, help: &str) {
        use std::fmt::Write as _;
        let counts = self.bucket_counts();
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last = counts.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (bucket, &n) in counts.iter().enumerate().take(last) {
            cumulative += n;
            let le = upper_bound_micros(bucket);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let total = self.count();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
        let sum = self.total_micros.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {total}");
    }
}

/// Inclusive lower bound of bucket `b` in microseconds.
fn lower_bound_micros(bucket: usize) -> u64 {
    1u64 << bucket
}

/// Exclusive upper bound of bucket `b` in microseconds.
fn upper_bound_micros(bucket: usize) -> u64 {
    1u64 << (bucket + 1)
}

/// One endpoint's request counter set.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// Requests routed to the endpoint.
    pub requests: AtomicU64,
}

/// All service metrics, shared across workers.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Requests currently being handled.
    in_flight: AtomicU64,
    /// Per-endpoint request counts.
    pub compile: EndpointCounters,
    /// `/simulate` requests.
    pub simulate: EndpointCounters,
    /// `/check` requests.
    pub check: EndpointCounters,
    /// `/benchmarks` requests.
    pub benchmarks: EndpointCounters,
    /// `/metrics` + `/healthz` requests.
    pub control: EndpointCounters,
    /// Responses by class.
    ok_2xx: AtomicU64,
    client_4xx: AtomicU64,
    server_5xx: AtomicU64,
    /// Connections shed because the worker pool backlog was full.
    shed: AtomicU64,
    /// End-to-end handler latency (all endpoints).
    pub latency: LatencyHistogram,
    /// Handler latency of `/compile` alone (the hot endpoint).
    pub compile_latency: LatencyHistogram,
    /// Event-loop self-profile: total nanoseconds blocked in `poll(2)`.
    poll_wait_ns: AtomicU64,
    /// Event-loop self-profile: total nanoseconds spent dispatching
    /// ready events (everything in a tick that is not the poll wait).
    loop_busy_ns: AtomicU64,
    /// Event-loop iterations (poll wake-ups).
    loop_ticks: AtomicU64,
    /// Requests waiting in the worker-pool queue (gauge, sampled by the
    /// loop each tick).
    queue_depth: AtomicU64,
    /// Open connections in the loop's table (gauge, sampled each tick).
    connections: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            start: Instant::now(),
            in_flight: AtomicU64::new(0),
            compile: EndpointCounters::default(),
            simulate: EndpointCounters::default(),
            check: EndpointCounters::default(),
            benchmarks: EndpointCounters::default(),
            control: EndpointCounters::default(),
            ok_2xx: AtomicU64::new(0),
            client_4xx: AtomicU64::new(0),
            server_5xx: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            compile_latency: LatencyHistogram::new(),
            poll_wait_ns: AtomicU64::new(0),
            loop_busy_ns: AtomicU64::new(0),
            loop_ticks: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh metrics anchored at "now".
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Seconds since the metrics (i.e. the server) started.
    pub fn uptime_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Mark a request in flight; decrements on drop.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Requests currently being handled.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Count a response status.
    pub fn record_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.ok_2xx,
            400..=499 => &self.client_4xx,
            _ => &self.server_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection shed by pool backpressure.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Record one event-loop tick's self-profile: time blocked in
    /// `poll(2)` vs time spent dispatching the readiness it returned.
    pub fn record_loop_tick(&self, poll_wait_ns: u64, busy_ns: u64) {
        self.poll_wait_ns.fetch_add(poll_wait_ns, Ordering::Relaxed);
        self.loop_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        self.loop_ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Sample the worker-queue depth and connection-table size gauges.
    pub fn set_loop_gauges(&self, queue_depth: u64, connections: u64) {
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        self.connections.store(connections, Ordering::Relaxed);
    }

    /// The event-loop self-profile as a JSON object: cumulative
    /// poll-wait and dispatch nanoseconds, tick count, and the sampled
    /// queue-depth and connection gauges.
    fn event_loop_json(&self) -> Json {
        let load = Ordering::Relaxed;
        Json::obj()
            .field("poll_wait_ns", self.poll_wait_ns.load(load))
            .field("busy_ns", self.loop_busy_ns.load(load))
            .field("ticks", self.loop_ticks.load(load))
            .field("queue_depth", self.queue_depth.load(load))
            .field("connections", self.connections.load(load))
            .build()
    }

    /// The `/metrics` document body, combining service counters with the
    /// compile layer's cache and single-flight statistics, (when the
    /// persistent tier is enabled) the disk store's counters, and the
    /// degradation surface: breaker state, active fault injection, and
    /// memory-budget residency.
    pub fn to_json_value(
        &self,
        cache: &spire::CacheStats,
        flights: &spire::FlightStats,
        disk: Option<&spire::DiskStats>,
        health: &ServeHealth,
    ) -> Json {
        let load = Ordering::Relaxed;
        let total_cache = cache.hits + cache.misses;
        let hit_rate = if total_cache == 0 {
            0.0
        } else {
            cache.hits as f64 / total_cache as f64
        };
        Json::obj()
            .field("uptime_seconds", self.uptime_seconds())
            .field(
                "build_info",
                Json::obj()
                    .field("git_hash", build_git_hash())
                    .field("rustc", build_rustc()),
            )
            .field("in_flight", self.in_flight())
            .field("event_loop", self.event_loop_json())
            .field(
                "requests",
                Json::obj()
                    .field("compile", self.compile.requests.load(load))
                    .field("simulate", self.simulate.requests.load(load))
                    .field("check", self.check.requests.load(load))
                    .field("benchmarks", self.benchmarks.requests.load(load))
                    .field("control", self.control.requests.load(load)),
            )
            .field(
                "responses",
                Json::obj()
                    .field("ok_2xx", self.ok_2xx.load(load))
                    .field("client_4xx", self.client_4xx.load(load))
                    .field("server_5xx", self.server_5xx.load(load))
                    .field("shed", self.shed.load(load)),
            )
            .field("latency", self.latency.to_json_value())
            .field("compile_latency", self.compile_latency.to_json_value())
            .field(
                "cache",
                Json::obj()
                    .field("hits", cache.hits)
                    .field("misses", cache.misses)
                    .field("entries", cache.entries)
                    .field("hit_rate", hit_rate)
                    .field("resident_bytes", cache.resident_bytes)
                    .field("evictions", cache.evictions)
                    .field("budget_bytes", cache.budget_bytes),
            )
            .field(
                "memory",
                Json::obj()
                    .field("cache_bytes", cache.resident_bytes)
                    .field("artifact_bytes", health.artifact_bytes)
                    .field("report_bytes", health.report_bytes)
                    .field(
                        "resident_bytes",
                        cache.resident_bytes + health.artifact_bytes + health.report_bytes,
                    )
                    .field("memo_evictions", health.memo_evictions),
            )
            .field(
                "single_flight",
                Json::obj()
                    .field("led", flights.led)
                    .field("coalesced", flights.coalesced),
            )
            .field(
                "disk",
                match disk {
                    None => Json::obj().field("enabled", false),
                    Some(stats) => Json::obj()
                        .field("enabled", true)
                        .field("hits", stats.hits)
                        .field("misses", stats.misses)
                        .field("writes", stats.writes)
                        .field("corrupt_dropped", stats.corrupt_dropped)
                        .field("entries", stats.entries as u64)
                        .field("io_errors", stats.io_errors)
                        .field("garbage_bytes", stats.garbage_bytes)
                        .field("log_bytes", stats.log_bytes)
                        .field("compactions", stats.compactions),
                },
            )
            .field(
                "breaker",
                match &health.breaker {
                    None => Json::obj().field("enabled", false),
                    Some(snapshot) => Json::obj()
                        .field("enabled", true)
                        .field("state", snapshot.state.label())
                        .field(
                            "consecutive_failures",
                            u64::from(snapshot.consecutive_failures),
                        )
                        .field("threshold", u64::from(snapshot.threshold))
                        .field("opened_total", snapshot.opened_total)
                        .field("rejected", snapshot.rejected),
                },
            )
            .field(
                "faults",
                match &health.faults {
                    None => Json::obj().field("injecting", false),
                    Some((label, stats)) => Json::obj()
                        .field("injecting", true)
                        .field("schedule", label.as_str())
                        .field("ops", stats.ops)
                        .field("written_bytes", stats.written_bytes)
                        .field("injected", stats.injected)
                        .field("crashed", stats.crashed),
                },
            )
            .build()
    }

    /// The `/metrics?format=prometheus` document: the same counters as
    /// the JSON form in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` comments, `name{labels} value` samples,
    /// conventional `_total` counters and `_bucket`/`_sum`/`_count`
    /// histograms). One scrape target per process; no timestamps, so
    /// the scraper assigns them.
    pub fn to_prometheus(
        &self,
        cache: &spire::CacheStats,
        flights: &spire::FlightStats,
        disk: Option<&spire::DiskStats>,
        health: &ServeHealth,
    ) -> String {
        use std::fmt::Write as _;
        let load = Ordering::Relaxed;
        let mut out = String::with_capacity(4096);
        let w = &mut out;
        let _ = writeln!(
            w,
            "# HELP spire_build_info Build provenance (value is always 1)."
        );
        let _ = writeln!(w, "# TYPE spire_build_info gauge");
        let _ = writeln!(
            w,
            "spire_build_info{{git_hash=\"{}\",rustc=\"{}\"}} 1",
            prom_label(build_git_hash()),
            prom_label(build_rustc()),
        );
        gauge(
            w,
            "spire_uptime_seconds",
            "Seconds since the server started.",
            &format!("{:.3}", self.uptime_seconds()),
        );
        gauge(
            w,
            "spire_in_flight_requests",
            "Requests currently being handled.",
            &self.in_flight().to_string(),
        );
        let _ = writeln!(
            w,
            "# HELP spire_requests_total Requests routed, by endpoint."
        );
        let _ = writeln!(w, "# TYPE spire_requests_total counter");
        for (endpoint, counters) in [
            ("compile", &self.compile),
            ("simulate", &self.simulate),
            ("check", &self.check),
            ("benchmarks", &self.benchmarks),
            ("control", &self.control),
        ] {
            let _ = writeln!(
                w,
                "spire_requests_total{{endpoint=\"{endpoint}\"}} {}",
                counters.requests.load(load)
            );
        }
        let _ = writeln!(
            w,
            "# HELP spire_responses_total Responses sent, by status class."
        );
        let _ = writeln!(w, "# TYPE spire_responses_total counter");
        for (class, counter) in [
            ("2xx", &self.ok_2xx),
            ("4xx", &self.client_4xx),
            ("5xx", &self.server_5xx),
        ] {
            let _ = writeln!(
                w,
                "spire_responses_total{{class=\"{class}\"}} {}",
                counter.load(load)
            );
        }
        counter_line(
            w,
            "spire_shed_total",
            "Connections or requests shed by backpressure.",
            self.shed.load(load),
        );
        self.latency.render_prometheus(
            w,
            "spire_request_latency_us",
            "End-to-end handler latency in microseconds.",
        );
        self.compile_latency.render_prometheus(
            w,
            "spire_compile_latency_us",
            "Handler latency of /compile in microseconds.",
        );
        counter_line(
            w,
            "spire_eventloop_poll_wait_ns_total",
            "Nanoseconds the event loop spent blocked in poll(2).",
            self.poll_wait_ns.load(load),
        );
        counter_line(
            w,
            "spire_eventloop_busy_ns_total",
            "Nanoseconds the event loop spent dispatching readiness.",
            self.loop_busy_ns.load(load),
        );
        counter_line(
            w,
            "spire_eventloop_ticks_total",
            "Event-loop iterations.",
            self.loop_ticks.load(load),
        );
        gauge(
            w,
            "spire_queue_depth",
            "Requests waiting in the worker-pool queue.",
            &self.queue_depth.load(load).to_string(),
        );
        gauge(
            w,
            "spire_connections",
            "Open connections in the event loop's table.",
            &self.connections.load(load).to_string(),
        );
        counter_line(
            w,
            "spire_cache_hits_total",
            "Compile-cache hits.",
            cache.hits,
        );
        counter_line(
            w,
            "spire_cache_misses_total",
            "Compile-cache misses.",
            cache.misses,
        );
        gauge(
            w,
            "spire_cache_resident_bytes",
            "Resident bytes of the compile cache.",
            &cache.resident_bytes.to_string(),
        );
        counter_line(
            w,
            "spire_cache_evictions_total",
            "Compile-cache evictions.",
            cache.evictions,
        );
        counter_line(
            w,
            "spire_flight_led_total",
            "Requests that led a single-flight compile.",
            flights.led,
        );
        counter_line(
            w,
            "spire_flight_coalesced_total",
            "Requests coalesced onto another request's flight.",
            flights.coalesced,
        );
        counter_line(
            w,
            "spire_memo_evictions_total",
            "Entries evicted from the artifact/report memo maps.",
            health.memo_evictions,
        );
        gauge(
            w,
            "spire_memo_resident_bytes",
            "Resident bytes of the artifact and report memo maps.",
            &(health.artifact_bytes + health.report_bytes).to_string(),
        );
        if let Some(stats) = disk {
            counter_line(
                w,
                "spire_disk_hits_total",
                "Persistent-tier hits.",
                stats.hits,
            );
            counter_line(
                w,
                "spire_disk_misses_total",
                "Persistent-tier misses.",
                stats.misses,
            );
            counter_line(
                w,
                "spire_disk_writes_total",
                "Persistent-tier writes.",
                stats.writes,
            );
            counter_line(
                w,
                "spire_disk_io_errors_total",
                "Persistent-tier I/O errors.",
                stats.io_errors,
            );
            gauge(
                w,
                "spire_disk_log_bytes",
                "Bytes in the persistent store's log.",
                &stats.log_bytes.to_string(),
            );
        }
        if let Some(snapshot) = &health.breaker {
            let _ = writeln!(
                w,
                "# HELP spire_breaker_state Disk breaker state (value 1 on the active state)."
            );
            let _ = writeln!(w, "# TYPE spire_breaker_state gauge");
            for state in ["closed", "open", "half-open"] {
                let active = u64::from(snapshot.state.label() == state);
                let _ = writeln!(w, "spire_breaker_state{{state=\"{state}\"}} {active}");
            }
            counter_line(
                w,
                "spire_breaker_opened_total",
                "Times the disk breaker opened.",
                snapshot.opened_total,
            );
            counter_line(
                w,
                "spire_breaker_rejected_total",
                "Disk operations rejected by an open breaker.",
                snapshot.rejected,
            );
        }
        out
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Emit one `# HELP`/`# TYPE gauge`/sample triple.
fn gauge(out: &mut String, name: &str, help: &str, value: &str) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Emit one `# HELP`/`# TYPE counter`/sample triple.
fn counter_line(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// The short git hash the binary was built from (`"unknown"` outside a
/// checkout). Baked in by `build.rs`.
pub fn build_git_hash() -> &'static str {
    env!("SPIRE_BUILD_GIT_HASH")
}

/// The `rustc --version` string the binary was built with (`"unknown"`
/// when the probe failed). Baked in by `build.rs`.
pub fn build_rustc() -> &'static str {
    env!("SPIRE_BUILD_RUSTC")
}

/// RAII in-flight marker from [`Metrics::begin_request`].
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.percentile_micros(99.0), 0, "empty reports zero");
        // 90 fast samples at ~8 µs, 10 slow at ~4096 µs.
        for _ in 0..90 {
            hist.record_micros(8);
        }
        for _ in 0..10 {
            hist.record_micros(4096);
        }
        assert_eq!(hist.count(), 100);
        // Interpolated percentiles, pinned exactly. p50: rank 50 of 90
        // samples in [8,16) → 8 + 8·(50/90) = 12.44 → 12. p99: rank 9
        // of 10 samples in [4096,8192) → 4096 + 4096·(9/10) = 7782.4 →
        // 7782. p100 is the bucket's upper bound by construction.
        assert_eq!(hist.percentile_micros(50.0), 12);
        assert_eq!(hist.percentile_micros(99.0), 7782);
        assert_eq!(hist.percentile_micros(100.0), 8192);
        let mean = hist.mean_micros();
        assert!((400..=500).contains(&mean), "mean ≈ 416, got {mean}");
        // The raw bucket array is exported and re-derivable.
        let counts = hist.bucket_counts();
        assert_eq!(counts.len(), 64);
        assert_eq!(counts[3], 90);
        assert_eq!(counts[12], 10);
    }

    #[test]
    fn zero_micros_is_representable() {
        let hist = LatencyHistogram::new();
        hist.record_micros(0);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.percentile_micros(100.0), 2);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let metrics = Metrics::new();
        metrics.record_status(200);
        metrics.latency.record_micros(100);
        metrics.record_loop_tick(1_000, 500);
        metrics.set_loop_gauges(3, 7);
        let text = metrics.to_prometheus(
            &spire::CacheStats::default(),
            &spire::FlightStats::default(),
            None,
            &ServeHealth::default(),
        );
        // Every sample line is `name{labels} value` with a numeric value.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
        }
        assert!(text.contains("spire_build_info{"));
        assert!(text.contains("spire_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("spire_request_latency_us_count 1"));
        assert!(text.contains("spire_request_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("spire_queue_depth 3"));
        assert!(text.contains("spire_connections 7"));
        // Histograms are cumulative: the le=128 bucket holds the 100 µs
        // sample and every later bucket at least matches it.
        assert!(text.contains("spire_request_latency_us_bucket{le=\"128\"} 1"));
    }

    #[test]
    fn in_flight_guard_is_balanced() {
        let metrics = Metrics::new();
        {
            let _a = metrics.begin_request();
            let _b = metrics.begin_request();
            assert_eq!(metrics.in_flight(), 2);
        }
        assert_eq!(metrics.in_flight(), 0);
    }

    #[test]
    fn metrics_document_is_parseable() {
        let metrics = Metrics::new();
        metrics.record_status(200);
        metrics.record_status(422);
        metrics.latency.record_micros(120);
        let cache = spire::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            resident_bytes: 2048,
            ..Default::default()
        };
        let flights = spire::FlightStats {
            led: 1,
            coalesced: 2,
        };
        let disk = spire::DiskStats {
            hits: 4,
            misses: 2,
            writes: 5,
            corrupt_dropped: 0,
            entries: 5,
            io_errors: 1,
            ..Default::default()
        };
        let health = ServeHealth {
            breaker: Some(crate::breaker::CircuitBreaker::with_defaults().snapshot()),
            faults: Some(("eio:all".to_string(), spire::FaultStats::default())),
            artifact_bytes: 512,
            report_bytes: 256,
            memo_evictions: 3,
        };
        let doc = metrics
            .to_json_value(&cache, &flights, Some(&disk), &health)
            .to_string();
        let parsed = qcirc::json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(
            parsed
                .get("single_flight")
                .and_then(|c| c.get("coalesced"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("responses")
                .and_then(|c| c.get("client_4xx"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("hits"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("io_errors"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("breaker")
                .and_then(|b| b.get("state"))
                .and_then(Json::as_str),
            Some("closed")
        );
        assert_eq!(
            parsed
                .get("faults")
                .and_then(|f| f.get("schedule"))
                .and_then(Json::as_str),
            Some("eio:all")
        );
        assert_eq!(
            parsed
                .get("memory")
                .and_then(|m| m.get("resident_bytes"))
                .and_then(Json::as_u64),
            Some(2048 + 512 + 256)
        );
    }

    #[test]
    fn disabled_disk_tier_reports_enabled_false() {
        let metrics = Metrics::new();
        let doc = metrics
            .to_json_value(
                &spire::CacheStats::default(),
                &spire::FlightStats::default(),
                None,
                &ServeHealth::default(),
            )
            .to_string();
        let parsed = qcirc::json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("enabled"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            parsed
                .get("breaker")
                .and_then(|b| b.get("enabled"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            parsed
                .get("faults")
                .and_then(|f| f.get("injecting"))
                .and_then(Json::as_bool),
            Some(false)
        );
    }
}
