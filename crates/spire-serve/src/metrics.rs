//! Service metrics: lock-free counters and a log-bucketed latency
//! histogram, serialized for `GET /metrics`.
//!
//! Everything on the request path is an atomic increment — no locks, no
//! allocation — so metrics collection never becomes the contention point
//! it is supposed to diagnose. The histogram buckets latencies by
//! power-of-two microseconds (64 buckets cover `[1 µs, ~5 × 10¹³ µs)`,
//! far beyond any request this service can serve), and percentiles are
//! reconstructed from the bucket counts: a reported `p99` is the upper
//! bound of the bucket containing the 99th-percentile sample, i.e. exact
//! to within the 2× bucket resolution. That trade — coarse buckets for a
//! wait-free hot path — is the standard one for serving systems.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use qcirc::json::Json;

use crate::breaker::BreakerSnapshot;

/// Serving-health extras for the `/metrics` document: disk-tier breaker
/// state, any active fault injection, and memo-map residency — the
/// observability half of the graceful-degradation story.
#[derive(Debug, Default)]
pub struct ServeHealth {
    /// Breaker snapshot; `None` when the disk tier is disabled.
    pub breaker: Option<BreakerSnapshot>,
    /// Active fault-injection schedule `(label, stats)`; `None` when no
    /// injection is configured (the production case).
    pub faults: Option<(String, spire::FaultStats)>,
    /// Resident bytes of the memoized `/compile` artifact map.
    pub artifact_bytes: u64,
    /// Resident bytes of the memoized `/check` report map.
    pub report_bytes: u64,
    /// Entries evicted from the two memo maps by their byte budgets.
    pub memo_evictions: u64,
}

/// Number of power-of-two latency buckets.
const BUCKETS: usize = 64;

/// A wait-free histogram of microsecond latencies in power-of-two
/// buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one latency.
    pub fn record_micros(&self, micros: u64) {
        // Bucket b holds samples in [2^b, 2^(b+1)); 0 µs lands in b = 0.
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// sample, for `p` in `0..=100`. Returns 0 when empty.
    ///
    /// Concurrent writers can skew an in-flight snapshot by at most the
    /// samples recorded during the scan; the value is a monitoring
    /// estimate, not an accounting figure.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_bound_micros(bucket);
            }
        }
        upper_bound_micros(BUCKETS - 1)
    }

    /// Serialize count/mean/percentiles as a JSON object.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .field("count", self.count())
            .field("mean_us", self.mean_micros())
            .field("p50_us", self.percentile_micros(50.0))
            .field("p90_us", self.percentile_micros(90.0))
            .field("p99_us", self.percentile_micros(99.0))
            .build()
    }
}

/// Exclusive upper bound of bucket `b` in microseconds.
fn upper_bound_micros(bucket: usize) -> u64 {
    1u64 << (bucket + 1)
}

/// One endpoint's request counter set.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// Requests routed to the endpoint.
    pub requests: AtomicU64,
}

/// All service metrics, shared across workers.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Requests currently being handled.
    in_flight: AtomicU64,
    /// Per-endpoint request counts.
    pub compile: EndpointCounters,
    /// `/simulate` requests.
    pub simulate: EndpointCounters,
    /// `/check` requests.
    pub check: EndpointCounters,
    /// `/benchmarks` requests.
    pub benchmarks: EndpointCounters,
    /// `/metrics` + `/healthz` requests.
    pub control: EndpointCounters,
    /// Responses by class.
    ok_2xx: AtomicU64,
    client_4xx: AtomicU64,
    server_5xx: AtomicU64,
    /// Connections shed because the worker pool backlog was full.
    shed: AtomicU64,
    /// End-to-end handler latency (all endpoints).
    pub latency: LatencyHistogram,
    /// Handler latency of `/compile` alone (the hot endpoint).
    pub compile_latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            start: Instant::now(),
            in_flight: AtomicU64::new(0),
            compile: EndpointCounters::default(),
            simulate: EndpointCounters::default(),
            check: EndpointCounters::default(),
            benchmarks: EndpointCounters::default(),
            control: EndpointCounters::default(),
            ok_2xx: AtomicU64::new(0),
            client_4xx: AtomicU64::new(0),
            server_5xx: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            compile_latency: LatencyHistogram::new(),
        }
    }
}

impl Metrics {
    /// Fresh metrics anchored at "now".
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Seconds since the metrics (i.e. the server) started.
    pub fn uptime_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Mark a request in flight; decrements on drop.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Requests currently being handled.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Count a response status.
    pub fn record_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.ok_2xx,
            400..=499 => &self.client_4xx,
            _ => &self.server_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a connection shed by pool backpressure.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The `/metrics` document body, combining service counters with the
    /// compile layer's cache and single-flight statistics, (when the
    /// persistent tier is enabled) the disk store's counters, and the
    /// degradation surface: breaker state, active fault injection, and
    /// memory-budget residency.
    pub fn to_json_value(
        &self,
        cache: &spire::CacheStats,
        flights: &spire::FlightStats,
        disk: Option<&spire::DiskStats>,
        health: &ServeHealth,
    ) -> Json {
        let load = Ordering::Relaxed;
        let total_cache = cache.hits + cache.misses;
        let hit_rate = if total_cache == 0 {
            0.0
        } else {
            cache.hits as f64 / total_cache as f64
        };
        Json::obj()
            .field("uptime_seconds", self.uptime_seconds())
            .field("in_flight", self.in_flight())
            .field(
                "requests",
                Json::obj()
                    .field("compile", self.compile.requests.load(load))
                    .field("simulate", self.simulate.requests.load(load))
                    .field("check", self.check.requests.load(load))
                    .field("benchmarks", self.benchmarks.requests.load(load))
                    .field("control", self.control.requests.load(load)),
            )
            .field(
                "responses",
                Json::obj()
                    .field("ok_2xx", self.ok_2xx.load(load))
                    .field("client_4xx", self.client_4xx.load(load))
                    .field("server_5xx", self.server_5xx.load(load))
                    .field("shed", self.shed.load(load)),
            )
            .field("latency", self.latency.to_json_value())
            .field("compile_latency", self.compile_latency.to_json_value())
            .field(
                "cache",
                Json::obj()
                    .field("hits", cache.hits)
                    .field("misses", cache.misses)
                    .field("entries", cache.entries)
                    .field("hit_rate", hit_rate)
                    .field("resident_bytes", cache.resident_bytes)
                    .field("evictions", cache.evictions)
                    .field("budget_bytes", cache.budget_bytes),
            )
            .field(
                "memory",
                Json::obj()
                    .field("cache_bytes", cache.resident_bytes)
                    .field("artifact_bytes", health.artifact_bytes)
                    .field("report_bytes", health.report_bytes)
                    .field(
                        "resident_bytes",
                        cache.resident_bytes + health.artifact_bytes + health.report_bytes,
                    )
                    .field("memo_evictions", health.memo_evictions),
            )
            .field(
                "single_flight",
                Json::obj()
                    .field("led", flights.led)
                    .field("coalesced", flights.coalesced),
            )
            .field(
                "disk",
                match disk {
                    None => Json::obj().field("enabled", false),
                    Some(stats) => Json::obj()
                        .field("enabled", true)
                        .field("hits", stats.hits)
                        .field("misses", stats.misses)
                        .field("writes", stats.writes)
                        .field("corrupt_dropped", stats.corrupt_dropped)
                        .field("entries", stats.entries as u64)
                        .field("io_errors", stats.io_errors)
                        .field("garbage_bytes", stats.garbage_bytes)
                        .field("log_bytes", stats.log_bytes)
                        .field("compactions", stats.compactions),
                },
            )
            .field(
                "breaker",
                match &health.breaker {
                    None => Json::obj().field("enabled", false),
                    Some(snapshot) => Json::obj()
                        .field("enabled", true)
                        .field("state", snapshot.state.label())
                        .field(
                            "consecutive_failures",
                            u64::from(snapshot.consecutive_failures),
                        )
                        .field("threshold", u64::from(snapshot.threshold))
                        .field("opened_total", snapshot.opened_total)
                        .field("rejected", snapshot.rejected),
                },
            )
            .field(
                "faults",
                match &health.faults {
                    None => Json::obj().field("injecting", false),
                    Some((label, stats)) => Json::obj()
                        .field("injecting", true)
                        .field("schedule", label.as_str())
                        .field("ops", stats.ops)
                        .field("written_bytes", stats.written_bytes)
                        .field("injected", stats.injected)
                        .field("crashed", stats.crashed),
                },
            )
            .build()
    }
}

/// RAII in-flight marker from [`Metrics::begin_request`].
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.percentile_micros(99.0), 0, "empty reports zero");
        // 90 fast samples at ~8 µs, 10 slow at ~4096 µs.
        for _ in 0..90 {
            hist.record_micros(8);
        }
        for _ in 0..10 {
            hist.record_micros(4096);
        }
        assert_eq!(hist.count(), 100);
        // p50 falls in the [8,16) bucket, p99 in [4096,8192).
        assert_eq!(hist.percentile_micros(50.0), 16);
        assert_eq!(hist.percentile_micros(99.0), 8192);
        let mean = hist.mean_micros();
        assert!((400..=500).contains(&mean), "mean ≈ 416, got {mean}");
    }

    #[test]
    fn zero_micros_is_representable() {
        let hist = LatencyHistogram::new();
        hist.record_micros(0);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.percentile_micros(100.0), 2);
    }

    #[test]
    fn in_flight_guard_is_balanced() {
        let metrics = Metrics::new();
        {
            let _a = metrics.begin_request();
            let _b = metrics.begin_request();
            assert_eq!(metrics.in_flight(), 2);
        }
        assert_eq!(metrics.in_flight(), 0);
    }

    #[test]
    fn metrics_document_is_parseable() {
        let metrics = Metrics::new();
        metrics.record_status(200);
        metrics.record_status(422);
        metrics.latency.record_micros(120);
        let cache = spire::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            resident_bytes: 2048,
            ..Default::default()
        };
        let flights = spire::FlightStats {
            led: 1,
            coalesced: 2,
        };
        let disk = spire::DiskStats {
            hits: 4,
            misses: 2,
            writes: 5,
            corrupt_dropped: 0,
            entries: 5,
            io_errors: 1,
            ..Default::default()
        };
        let health = ServeHealth {
            breaker: Some(crate::breaker::CircuitBreaker::with_defaults().snapshot()),
            faults: Some(("eio:all".to_string(), spire::FaultStats::default())),
            artifact_bytes: 512,
            report_bytes: 256,
            memo_evictions: 3,
        };
        let doc = metrics
            .to_json_value(&cache, &flights, Some(&disk), &health)
            .to_string();
        let parsed = qcirc::json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(Json::as_f64),
            Some(0.75)
        );
        assert_eq!(
            parsed
                .get("single_flight")
                .and_then(|c| c.get("coalesced"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("responses")
                .and_then(|c| c.get("client_4xx"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("hits"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("io_errors"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("breaker")
                .and_then(|b| b.get("state"))
                .and_then(Json::as_str),
            Some("closed")
        );
        assert_eq!(
            parsed
                .get("faults")
                .and_then(|f| f.get("schedule"))
                .and_then(Json::as_str),
            Some("eio:all")
        );
        assert_eq!(
            parsed
                .get("memory")
                .and_then(|m| m.get("resident_bytes"))
                .and_then(Json::as_u64),
            Some(2048 + 512 + 256)
        );
    }

    #[test]
    fn disabled_disk_tier_reports_enabled_false() {
        let metrics = Metrics::new();
        let doc = metrics
            .to_json_value(
                &spire::CacheStats::default(),
                &spire::FlightStats::default(),
                None,
                &ServeHealth::default(),
            )
            .to_string();
        let parsed = qcirc::json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("disk")
                .and_then(|d| d.get("enabled"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            parsed
                .get("breaker")
                .and_then(|b| b.get("enabled"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            parsed
                .get("faults")
                .and_then(|f| f.get("injecting"))
                .and_then(Json::as_bool),
            Some(false)
        );
    }
}
