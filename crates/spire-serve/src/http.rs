//! Minimal HTTP/1.1 on `std::net`: incremental request parser, response
//! writer, and a small client used by the load-test harness.
//!
//! This is deliberately not a general HTTP implementation — it is the
//! subset the service needs, hardened where the input is untrusted:
//! header and body sizes are capped, `Content-Length` is required for
//! bodies (no chunked transfer), and the event loop bounds every
//! connection's worst case with deadlines. Keep-alive and pipelining are
//! honored so a closed-loop load-test worker can reuse one connection
//! per request chain.
//!
//! The server side parses **incrementally**: the event loop feeds a
//! [`RequestParser`] whatever bytes the socket yields — a byte at a
//! time, a request and a half, three pipelined requests — and the parser
//! produces complete [`Request`]s as they become available, keeping any
//! remainder buffered for the next one. Chunking is unobservable: any
//! split of a byte stream yields exactly the same requests as feeding it
//! whole (pinned by a property test).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body ([`Limits::max_body_bytes`]).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Per-connection parsing limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string split off.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Value of one `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a byte stream failed to parse as a request. Terminal for the
/// connection: the server answers (400 or 413) and closes, because the
/// framing can no longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The bytes were not a well-formed request. Answered with 400.
    Malformed(&'static str),
    /// `Content-Length` exceeded [`Limits::max_body_bytes`]. Answered
    /// with 413.
    BodyTooLarge,
}

/// A parsed request head plus how many body bytes follow it.
#[derive(Debug)]
struct ParsedHead {
    request: Request,
    content_length: usize,
    head_len: usize,
}

/// Parse a complete `…\r\n\r\n`-terminated head (`head` includes the
/// terminator).
fn parse_head(head: &[u8], limits: &Limits) -> Result<ParsedHead, ParseError> {
    let head_len = head.len();
    let head = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head not UTF-8"))?;
    let mut lines = head.trim_end().lines();
    let request_line = lines.next().ok_or(ParseError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // No chunked transfer: bodies are framed by Content-Length only.
    // Silently ignoring Transfer-Encoding would desync the keep-alive
    // stream (the chunk framing would be read as the next request), so
    // reject it outright.
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Malformed(
            "transfer-encoding is not supported; send a content-length body",
        ));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    Ok(ParsedHead {
        request: Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        content_length,
        head_len,
    })
}

/// Incremental request parser: feed it bytes as they arrive, take
/// complete requests out as they become available.
///
/// The parser owns a buffer that always begins at a request boundary.
/// [`RequestParser::feed`] appends bytes; [`RequestParser::next_request`]
/// scans for the head terminator (resuming where the last scan stopped,
/// so trickled input costs amortized O(n), not O(n²)), parses the head
/// once it is complete, waits for `Content-Length` body bytes, and
/// drains the consumed prefix — leaving any pipelined follow-up request
/// buffered for the next call.
///
/// Memory per connection is bounded: an unterminated head beyond
/// [`MAX_HEAD_BYTES`] or a declared body beyond [`Limits::max_body_bytes`]
/// is rejected before more input is buffered.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    /// Where the CRLFCRLF scan resumes (nothing before it can end a
    /// terminator that was not already found).
    scan: usize,
    /// Parsed head awaiting its body (avoids reparsing on every feed).
    pending: Option<ParsedHead>,
    /// Set once a parse error occurred; the stream is poisoned.
    failed: Option<ParseError>,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: Limits) -> RequestParser {
        RequestParser {
            limits,
            buf: Vec::new(),
            scan: 0,
            pending: None,
            failed: None,
        }
    }

    /// Append bytes received from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a request is partially buffered (bytes arrived, but no
    /// complete request yet) — drives the 408-on-stall decision.
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to produce the next complete request.
    ///
    /// `Ok(Some(_))` — a full request was parsed and consumed;
    /// `Ok(None)` — more bytes are needed;
    /// `Err(_)` — the stream is not valid HTTP (terminal; repeated calls
    /// return the same error).
    ///
    /// # Errors
    ///
    /// See [`ParseError`].
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        if let Some(error) = self.failed {
            return Err(error);
        }
        match self.try_next() {
            Err(error) => {
                self.failed = Some(error);
                Err(error)
            }
            ok => ok,
        }
    }

    fn try_next(&mut self) -> Result<Option<Request>, ParseError> {
        let head = match self.pending.take() {
            Some(head) => head,
            None => {
                let Some(head_end) = self.find_head_end() else {
                    if self.buf.len() > MAX_HEAD_BYTES {
                        return Err(ParseError::Malformed("request head too large"));
                    }
                    return Ok(None);
                };
                if head_end > MAX_HEAD_BYTES {
                    return Err(ParseError::Malformed("request head too large"));
                }
                parse_head(&self.buf[..head_end], &self.limits)?
            }
        };
        let total = head.head_len + head.content_length;
        if self.buf.len() < total {
            // Body still arriving; stash the parsed head.
            self.pending = Some(head);
            return Ok(None);
        }
        let mut request = head.request;
        request.body = self.buf[head.head_len..total].to_vec();
        // Drain the consumed request; the remainder (if any) is the next
        // pipelined request, and the scan restarts at the new origin.
        self.buf.drain(..total);
        self.scan = 0;
        Ok(Some(request))
    }

    /// Find the end of the head (index just past `\r\n\r\n`), resuming
    /// the scan where the previous attempt left off.
    fn find_head_end(&mut self) -> Option<usize> {
        let start = self.scan.saturating_sub(3);
        let found = self.buf[start..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|i| start + i + 4);
        if found.is_none() {
            self.scan = self.buf.len();
        }
        found
    }
}

/// Whole-buffer reference parse: run a fresh parser over `bytes` in one
/// feed and collect every complete request plus the terminal state. The
/// chunking-invariance property test compares arbitrary splits against
/// this.
///
/// # Errors
///
/// Returns the requests parsed before the first [`ParseError`], plus the
/// error, when the bytes are not valid HTTP.
pub fn parse_whole_buffer(
    bytes: &[u8],
    limits: &Limits,
) -> (Vec<Request>, Option<ParseError>, bool) {
    let mut parser = RequestParser::new(*limits);
    parser.feed(bytes);
    let mut requests = Vec::new();
    loop {
        match parser.next_request() {
            Ok(Some(request)) => requests.push(request),
            Ok(None) => return (requests, None, parser.mid_request()),
            Err(error) => return (requests, Some(error), parser.mid_request()),
        }
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Seconds for a `retry-after` header, when load shedding wants to
    /// pace the client's retry instead of inviting an immediate one.
    pub retry_after: Option<u64>,
    /// Additional `(name, value)` headers appended verbatim to the head
    /// (e.g. `x-spire-trace-id` on traced responses). Names are static
    /// because the server only ever emits a closed set of them.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
            extra_headers: Vec::new(),
        }
    }

    /// Attach a `retry-after: seconds` header (used on `503` sheds).
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Attach an arbitrary response header. The value must not contain
    /// CR/LF (the server only passes identifiers it minted itself).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Serialize `response` into the bytes that go on the wire, head and
/// body in one buffer: two small writes on a Nagle-enabled socket
/// interact with delayed ACK into ~40 ms stalls per response, which
/// would dominate every latency percentile the service reports.
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut retry_after = match response.retry_after {
        Some(seconds) => format!("retry-after: {seconds}\r\n"),
        None => String::new(),
    };
    for (name, value) in &response.extra_headers {
        retry_after.push_str(name);
        retry_after.push_str(": ");
        retry_after.push_str(value);
        retry_after.push_str("\r\n");
    }
    let mut message = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}connection: {}\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        retry_after,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    message.extend_from_slice(&response.body);
    message
}

/// Serialize `response` onto the stream (one write; see
/// [`encode_response`]).
///
/// # Errors
///
/// Propagates socket write failures (including write timeouts).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&encode_response(response, keep_alive))?;
    stream.flush()
}

/// A minimal client: send one request on an open connection and read the
/// response. Used by the load-test harness and the integration tests;
/// reuses the connection (keep-alive) across calls.
///
/// # Errors
///
/// Propagates socket errors; a malformed response is an
/// `io::ErrorKind::InvalidData` error.
pub fn client_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Vec<u8>)> {
    let (status, body, _keep_alive) = client_roundtrip_keepalive(stream, method, path, body)?;
    Ok((status, body))
}

/// [`client_roundtrip`], also reporting whether the server left the
/// connection open (`connection: keep-alive`). A `false` means the
/// caller must reconnect before the next request — reusing the stream
/// would be a transport error, not a server failure.
///
/// # Errors
///
/// See [`client_roundtrip`].
pub fn client_roundtrip_keepalive(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Vec<u8>, bool)> {
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    read_client_response(stream)
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Read one response (status + body + keep-alive flag) from the stream.
/// Public so protocol-level tests can send hand-crafted (torn, pipelined,
/// malformed) request bytes and still read well-formed responses back.
///
/// # Errors
///
/// Propagates socket errors; a malformed response is an
/// `io::ErrorKind::InvalidData` error.
pub fn read_client_response(stream: &mut TcpStream) -> io::Result<(u16, Vec<u8>, bool)> {
    let (status, _headers, body, keep_alive) = read_client_response_full(stream)?;
    Ok((status, body, keep_alive))
}

/// What [`read_client_response_full`] returns: status, lower-cased
/// `(name, value)` header pairs, body, and the keep-alive flag.
pub type FullResponse = (u16, Vec<(String, String)>, Vec<u8>, bool);

/// [`read_client_response`], also returning the response headers as
/// lower-cased `(name, value)` pairs — the trace tests read
/// `x-spire-trace-id` back, and the `spire trace` CLI needs nothing
/// else from the head.
///
/// # Errors
///
/// See [`read_client_response`].
pub fn read_client_response_full(stream: &mut TcpStream) -> io::Result<FullResponse> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-response"));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(invalid("response head too large"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| invalid("response head not UTF-8"))?;
    let mut lines = head.trim_end().lines();
    let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
            } else if name == "connection" {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
            headers.push((name, value.to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok((status, headers, body, keep_alive))
}

/// Configure both socket timeouts on a stream, and disable Nagle: the
/// request/response ping-pong of a keep-alive connection is exactly the
/// small-write pattern that Nagle + delayed ACK turns into ~40 ms
/// stalls.
///
/// # Errors
///
/// Propagates `set_read_timeout`/`set_write_timeout` failures.
pub fn set_timeouts(stream: &TcpStream, read: Duration, write: Duration) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(read))?;
    stream.set_write_timeout(Some(write))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(Limits::default())
    }

    #[test]
    fn whole_request_parses_in_one_feed() {
        let mut p = parser();
        p.feed(b"POST /compile?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 2\r\n\r\nhi");
        let request = p.next_request().unwrap().expect("complete request");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/compile");
        assert_eq!(request.query_param("x"), Some("1"));
        assert_eq!(request.header("host"), Some("a"));
        assert_eq!(request.body, b"hi");
        assert!(!p.mid_request());
        assert!(matches!(p.next_request(), Ok(None)));
    }

    #[test]
    fn trickled_bytes_parse_identically() {
        let bytes = b"get /healthz HTTP/1.1\r\nhost: b\r\n\r\n";
        let mut p = parser();
        for byte in bytes {
            assert!(matches!(p.next_request(), Ok(None) | Ok(Some(_))));
            p.feed(&[*byte]);
        }
        let request = p.next_request().unwrap().expect("complete request");
        assert_eq!(request.method, "GET"); // upper-cased
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = parser();
        p.feed(
            b"POST /a HTTP/1.1\r\ncontent-length: 1\r\n\r\nXGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
        );
        let a = p.next_request().unwrap().expect("first");
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", &b"X"[..]));
        let b = p.next_request().unwrap().expect("second");
        assert_eq!(b.path, "/b");
        let c = p.next_request().unwrap().expect("third");
        assert_eq!(c.path, "/c");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(!p.mid_request());
    }

    #[test]
    fn body_split_across_feeds_is_reassembled() {
        let mut p = parser();
        p.feed(b"POST /a HTTP/1.1\r\ncontent-length: 5\r\n\r\nwor");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(p.mid_request());
        p.feed(b"ld");
        let request = p.next_request().unwrap().expect("complete");
        assert_eq!(request.body, b"world");
    }

    #[test]
    fn unterminated_oversized_head_is_rejected() {
        let mut p = parser();
        p.feed(b"GET /a HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 16];
        p.feed(&filler);
        assert_eq!(
            p.next_request().unwrap_err(),
            ParseError::Malformed("request head too large")
        );
    }

    #[test]
    fn declared_oversized_body_is_rejected_before_buffering() {
        let limits = Limits { max_body_bytes: 8 };
        let mut p = RequestParser::new(limits);
        p.feed(b"POST /a HTTP/1.1\r\ncontent-length: 9\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err(), ParseError::BodyTooLarge);
    }

    #[test]
    fn errors_poison_the_parser() {
        let mut p = parser();
        p.feed(b"NOT A REQUEST\r\n\r\n");
        let first = p.next_request().unwrap_err();
        // Feeding a perfectly good request afterwards changes nothing:
        // the framing is untrusted once it failed.
        p.feed(b"GET /ok HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err(), first);
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let mut p = parser();
        p.feed(b"POST /a HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
        assert!(matches!(p.next_request(), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn retry_after_header_is_emitted_only_when_set() {
        let shed = Response::json(503, "{}").with_retry_after(2);
        let wire = String::from_utf8(encode_response(&shed, false)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(wire.contains("\r\nretry-after: 2\r\n"), "wire: {wire}");
        let ok = Response::json(200, "{}");
        let wire = String::from_utf8(encode_response(&ok, true)).unwrap();
        assert!(!wire.contains("retry-after"), "wire: {wire}");
    }

    #[test]
    fn extra_headers_are_emitted_in_the_head() {
        let traced = Response::json(200, "{}").with_header("x-spire-trace-id", "00ab");
        let wire = String::from_utf8(encode_response(&traced, true)).unwrap();
        let head_end = wire.find("\r\n\r\n").unwrap();
        assert!(
            wire[..head_end].contains("\r\nx-spire-trace-id: 00ab"),
            "wire: {wire}"
        );
    }

    #[test]
    fn whole_buffer_reference_matches_streaming() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /partial HTT";
        let (requests, error, mid) = parse_whole_buffer(bytes, &Limits::default());
        assert_eq!(requests.len(), 2);
        assert!(error.is_none());
        assert!(
            mid,
            "trailing partial request leaves the parser mid-request"
        );
    }
}
