//! Minimal HTTP/1.1 on `std::net`: request reader, response writer, and
//! a small client used by the load-test harness.
//!
//! This is deliberately not a general HTTP implementation — it is the
//! subset the service needs, hardened where the input is untrusted:
//! header and body sizes are capped, `Content-Length` is required for
//! bodies (no chunked transfer), and socket read/write timeouts bound
//! every connection's worst case. Keep-alive is honored so a closed-loop
//! load-test worker can reuse one connection per request chain.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body ([`Limits::max_body_bytes`]).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Per-connection parsing limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body_bytes: MAX_BODY_BYTES,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string split off.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Value of one `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line
    /// (normal end of a keep-alive session).
    Closed,
    /// An I/O failure or timeout mid-request.
    Io(io::Error),
    /// The bytes were not a well-formed request. The server answers 400
    /// with this message and closes.
    Malformed(&'static str),
    /// `Content-Length` exceeded [`Limits::max_body_bytes`]. Answered
    /// with 413.
    BodyTooLarge,
    /// The socket read timeout expired. `mid_request` distinguishes a
    /// stall partway through a request (answered with a best-effort
    /// 408) from an idle keep-alive connection that never started one
    /// (closed quietly).
    TimedOut {
        /// Whether any request bytes had already arrived.
        mid_request: bool,
    },
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        if is_timeout(&e) {
            // Only body reads convert implicitly (via `?` after the head
            // completed), so the request was underway.
            ReadError::TimedOut { mid_request: true }
        } else {
            ReadError::Io(e)
        }
    }
}

/// Whether an I/O error is a socket-timeout expiry (spelled differently
/// across platforms).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one request from the stream.
///
/// # Errors
///
/// See [`ReadError`]; `Closed` at a request boundary is the normal end
/// of a keep-alive connection, everything else ends the connection.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: requests are small (the cap is
    // 16 KiB) and this keeps any over-read out of the body accounting.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("connection closed mid-header"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if is_timeout(&e) => {
                return Err(ReadError::TimedOut {
                    mid_request: !head.is_empty(),
                })
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| ReadError::Malformed("head not UTF-8"))?;
    let mut lines = head.trim_end().lines();
    let request_line = lines.next().ok_or(ReadError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ReadError::Malformed("missing path"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // No chunked transfer: bodies are framed by Content-Length only.
    // Silently ignoring Transfer-Encoding would desync the keep-alive
    // stream (the chunk framing would be read as the next request), so
    // reject it outright.
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Malformed(
            "transfer-encoding is not supported; send a content-length body",
        ));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Serialize `response` onto the stream.
///
/// # Errors
///
/// Propagates socket write failures (including write timeouts).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    // One write for head + body: two small writes on a Nagle-enabled
    // socket interact with delayed ACK into ~40 ms stalls per response,
    // which would dominate every latency percentile the service reports.
    let mut message = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    message.extend_from_slice(&response.body);
    stream.write_all(&message)?;
    stream.flush()
}

/// A minimal client: send one request on an open connection and read the
/// response. Used by the load-test harness and the integration tests;
/// reuses the connection (keep-alive) across calls.
///
/// # Errors
///
/// Propagates socket errors; a malformed response is an
/// `io::ErrorKind::InvalidData` error.
pub fn client_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Vec<u8>)> {
    let (status, body, _keep_alive) = client_roundtrip_keepalive(stream, method, path, body)?;
    Ok((status, body))
}

/// [`client_roundtrip`], also reporting whether the server left the
/// connection open (`connection: keep-alive`). A `false` means the
/// caller must reconnect before the next request — reusing the stream
/// would be a transport error, not a server failure.
///
/// # Errors
///
/// See [`client_roundtrip`].
pub fn client_roundtrip_keepalive(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, Vec<u8>, bool)> {
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    read_client_response(stream)
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Read one response (status + body + keep-alive flag) from the stream.
fn read_client_response(stream: &mut TcpStream) -> io::Result<(u16, Vec<u8>, bool)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-response"));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(invalid("response head too large"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| invalid("response head not UTF-8"))?;
    let mut lines = head.trim_end().lines();
    let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok((status, body, keep_alive))
}

/// Configure both socket timeouts on a stream, and disable Nagle: the
/// request/response ping-pong of a keep-alive connection is exactly the
/// small-write pattern that Nagle + delayed ACK turns into ~40 ms
/// stalls.
///
/// # Errors
///
/// Propagates `set_read_timeout`/`set_write_timeout` failures.
pub fn set_timeouts(stream: &TcpStream, read: Duration, write: Duration) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(read))?;
    stream.set_write_timeout(Some(write))
}
