//! A bounded worker thread pool with graceful shutdown.
//!
//! The server's accept loop hands each connection to this pool. The
//! queue is *bounded*: when every worker is busy and the backlog is
//! full, [`ThreadPool::try_execute`] rejects instead of queueing without
//! limit, and the server turns the rejection into `503` — explicit
//! backpressure rather than unbounded memory growth under overload.
//!
//! Shutdown is graceful: workers finish the job they are running and
//! drain the already-accepted backlog, then exit;
//! [`ThreadPool::shutdown`] blocks until every worker has stopped.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is queued or shutdown starts.
    wake: Condvar,
    capacity: usize,
}

/// A fixed-size worker pool over a bounded job queue.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The backlog is at capacity (overload; the caller should shed).
    Full,
    /// The pool is shutting down.
    ShuttingDown,
}

impl ThreadPool {
    /// Spawn `threads` workers sharing a queue of at most `capacity`
    /// pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `capacity` is zero.
    pub fn new(threads: usize, capacity: usize) -> ThreadPool {
        assert!(threads > 0, "pool needs at least one worker");
        assert!(capacity > 0, "pool needs a nonzero backlog");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            wake: Condvar::new(),
            capacity,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spire-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning worker thread")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Queue a job, or reject it when the backlog is full or the pool is
    /// stopping.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] under overload, [`Rejected::ShuttingDown`]
    /// after [`ThreadPool::shutdown`] began.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Rejected> {
        let mut state = self.shared.state.lock().expect("pool poisoned");
        if state.shutting_down {
            return Err(Rejected::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(Rejected::Full);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs currently queued (not counting ones already running).
    pub fn backlog(&self) -> usize {
        self.shared.state.lock().expect("pool poisoned").queue.len()
    }

    /// Begin a graceful shutdown and wait for every worker to finish the
    /// backlog and exit.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool poisoned");
            state.shutting_down = true;
        }
        self.shared.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Shutdown-by-drop: same protocol, ignoring join results.
        {
            if let Ok(mut state) = self.shared.state.lock() {
                state.shutting_down = true;
            }
        }
        self.shared.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.wake.wait(state).expect("pool poisoned");
            }
        };
        // A panicking job must not take the worker down with it: abort
        // the one request, keep serving. The closure owns everything it
        // touches, so unwind safety is a formality here.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let pool = ThreadPool::new(2, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.try_execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10, "backlog drains");
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        let pool = ThreadPool::new(1, 2);
        let gate = Arc::new(Barrier::new(2));
        // Occupy the single worker...
        let held = Arc::clone(&gate);
        pool.try_execute(move || {
            held.wait();
        })
        .unwrap();
        // ...then fill the backlog. Queue slots free up as the worker
        // dequeues the blocking job, so retry on Full until both fit.
        let mut accepted = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while accepted < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never picked up"
            );
            match pool.try_execute(|| {}) {
                Ok(()) => accepted += 1,
                Err(Rejected::Full) => std::thread::yield_now(),
                Err(e) => panic!("unexpected rejection {e:?} after {accepted}"),
            }
        }
        // The worker is parked on the barrier and the backlog is full:
        // the next job must be shed, deterministically.
        assert_eq!(pool.backlog(), 2);
        assert_eq!(pool.try_execute(|| {}), Err(Rejected::Full));
        gate.wait();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.try_execute(|| panic!("request handler blew up"))
            .unwrap();
        let c = Arc::clone(&counter);
        pool.try_execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
