//! Per-connection state for the event loop: non-blocking socket I/O,
//! the incremental request parser, and the buffered response being
//! written.
//!
//! A [`Conn`] is a small state machine driven entirely by the event
//! loop (`server.rs`); it owns the mechanics — reading until
//! `WouldBlock`, feeding the parser, flushing the write buffer — while
//! the loop owns the policy (dispatching requests, deadlines, closing).
//! Every method is non-blocking: `WouldBlock` is a normal return, never
//! an error, so one slow client can never stall the loop.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Instant;

use spire_trace::TraceCtx;

use crate::http::{self, Limits, RequestParser, Response};

/// A finished request trace parked on its connection while the response
/// flushes: the event loop records the terminal `write` phase and the
/// `request` root span (and offers the trace to the slow log) only once
/// the last byte is accepted by the socket, so the trace covers the
/// response write too.
#[derive(Debug)]
pub struct PendingTrace {
    /// The trace context, carried back from the worker thread.
    pub ctx: TraceCtx,
    /// Request path, for the slow-log entry.
    pub path: String,
    /// Response status, for the root span and the slow-log entry.
    pub status: u16,
    /// Trace-relative instant the response was queued for writing.
    pub write_start_ns: u64,
}

/// Identity of a connection in the event loop's table. Tokens are never
/// reused within one server, so a stale completion (for a connection
/// that died while its request was being processed) can never be
/// delivered to a different client.
pub type Token = u64;

/// What a connection is currently waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) a request; polled for readability.
    Reading,
    /// A request is in the worker pool; not polled at all — the
    /// completion queue wakes the loop when the response is ready.
    Processing,
    /// A response is buffered and not fully written; polled for
    /// writability.
    Writing,
    /// A terminal error response was written; the client's unread input
    /// is discarded briefly so the close is an orderly FIN rather than
    /// an RST that could destroy the response in flight.
    Draining,
}

/// Largest number of bytes read from one socket per readiness event.
/// Level-triggered polling re-reports the descriptor if more is queued,
/// so the cap costs nothing but bounds how long one firehosing client
/// can hold the loop.
const READ_BUDGET: usize = 64 * 1024;

/// Cap on bytes discarded in [`ConnState::Draining`] before giving up
/// and closing anyway.
const DRAIN_LIMIT: usize = 256 * 1024;

/// One client connection owned by the event loop.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Current state; transitions are made by the event loop.
    pub state: ConnState,
    /// Incremental request parser holding any partial or pipelined
    /// input.
    pub parser: RequestParser,
    /// Serialized response being written.
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` is fully flushed (error response, keep-alive
    /// budget spent, client asked, or shutdown).
    pub close_after_write: bool,
    /// Enter [`ConnState::Draining`] instead of closing outright after
    /// the final write (set for error responses that may race client
    /// input).
    pub drain_before_close: bool,
    /// The dispatched request carried `connection: close`.
    pub wants_close: bool,
    /// Requests dispatched on this connection (keep-alive budget).
    pub served: usize,
    /// When the current state expires: the idle or per-request read
    /// window, the write window, or the drain grace period.
    pub deadline: Instant,
    /// The peer closed its write side (EOF seen). A complete buffered
    /// request is still served; anything less closes the connection.
    pub peer_closed: bool,
    /// When the first byte of the request currently being parsed
    /// arrived — the epoch a trace of that request measures from. Taken
    /// at dispatch; `None` between requests.
    pub first_byte: Option<Instant>,
    /// Trace of the request whose response is currently flushing.
    pub trace: Option<PendingTrace>,
    drained: usize,
}

impl Conn {
    /// Adopt an accepted stream: switch it to non-blocking, disable
    /// Nagle (the request/response ping-pong is exactly the small-write
    /// pattern that Nagle + delayed ACK stalls), and start in
    /// [`ConnState::Reading`] with `deadline` as the idle cutoff.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failure (the loop cannot safely poll
    /// a blocking socket).
    pub fn new(stream: TcpStream, limits: Limits, deadline: Instant) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            state: ConnState::Reading,
            parser: RequestParser::new(limits),
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            drain_before_close: false,
            wants_close: false,
            served: 0,
            deadline,
            peer_closed: false,
            first_byte: None,
            trace: None,
            drained: 0,
        })
    }

    /// The raw descriptor, for the poll set.
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Read whatever the socket has (up to the per-event budget) into
    /// the parser. EOF sets [`Conn::peer_closed`] instead of erroring.
    ///
    /// # Errors
    ///
    /// A transport failure; the caller should drop the connection.
    pub fn fill(&mut self) -> io::Result<()> {
        let mut buf = [0u8; 8 * 1024];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.parser.feed(&buf[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Buffer `response` for writing and transition to
    /// [`ConnState::Writing`]. The caller still has to flush (usually
    /// optimistically right away — the socket buffer is almost always
    /// writable, saving a poll round-trip per response).
    pub fn queue_response(&mut self, response: &Response, keep_alive: bool) {
        self.out = http::encode_response(response, keep_alive);
        self.out_pos = 0;
        self.close_after_write = !keep_alive;
        self.state = ConnState::Writing;
    }

    /// Write as much of the buffered response as the socket accepts.
    /// `Ok(true)` means fully flushed.
    ///
    /// # Errors
    ///
    /// A transport failure; the caller should drop the connection.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Discard pending client input ([`ConnState::Draining`]). Returns
    /// `true` when the drain is finished (EOF, error, or the discard cap
    /// reached) and the connection should close now; `false` while the
    /// socket simply has nothing more to discard yet.
    pub fn discard(&mut self) -> bool {
        let mut buf = [0u8; 4 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return true,
                Ok(n) => {
                    self.drained += n;
                    if self.drained >= DRAIN_LIMIT {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn fill_parses_a_request_written_by_the_peer() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Limits::default(), Instant::now()).unwrap();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        // Non-blocking read may race the kernel delivering the bytes.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            conn.fill().unwrap();
            match conn.parser.next_request().unwrap() {
                Some(request) => {
                    assert_eq!(request.path, "/healthz");
                    break;
                }
                None => assert!(Instant::now() < deadline, "request never arrived"),
            }
        }
        assert!(!conn.peer_closed);
    }

    #[test]
    fn fill_reports_eof_without_erroring() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, Limits::default(), Instant::now()).unwrap();
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !conn.peer_closed {
            conn.fill().unwrap();
            assert!(Instant::now() < deadline, "EOF never observed");
        }
    }

    #[test]
    fn queue_and_flush_delivers_the_response() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Limits::default(), Instant::now()).unwrap();
        conn.queue_response(&Response::text(200, "hi"), false);
        assert!(conn.close_after_write);
        assert_eq!(conn.state, ConnState::Writing);
        assert!(conn.flush().unwrap(), "tiny response flushes in one call");
        drop(conn);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert!(got.starts_with("HTTP/1.1 200"), "{got}");
        assert!(got.ends_with("hi"), "{got}");
    }
}
