//! Warm-restart end-to-end: a server with a cache directory persists
//! `/compile` results, and a *fresh process-equivalent* server over the
//! same directory serves them from disk — no recompilation, visible in
//! both the response's `served` label and the `/metrics` disk counters.

use std::net::TcpStream;
use std::path::Path;

use qcirc::json::{parse, Json};
use spire_serve::http::client_roundtrip;
use spire_serve::{Server, ServerConfig};

const SOURCE: &str = "fun f(x: uint) -> uint { let y <- x + 1; return y; }";

fn compile_body() -> String {
    Json::obj()
        .field("source", SOURCE)
        .field("entry", "f")
        .field("depth", 2i64)
        .build()
        .to_string()
}

fn start_with_dir(dir: &Path) -> Server {
    Server::start(ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("server boots with cache dir")
}

fn post_compile(server: &Server) -> Json {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let (status, body) =
        client_roundtrip(&mut stream, "POST", "/compile", Some(&compile_body())).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    parse(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn scrape_metrics(server: &Server) -> Json {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let (status, body) = client_roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    parse(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn counter(doc: &Json, path: &[&str]) -> u64 {
    let mut value = doc;
    for step in path {
        value = value.get(step).unwrap_or_else(|| panic!("missing {step}"));
    }
    value
        .as_u64()
        .unwrap_or_else(|| panic!("{path:?} not a u64"))
}

#[test]
fn warm_restart_serves_prior_compiles_from_disk() {
    let dir = std::env::temp_dir().join(format!("spire-persist-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Life 1: a cold server compiles and (transparently) persists.
    let first = start_with_dir(&dir);
    let reply = post_compile(&first);
    assert_eq!(reply.get("served").and_then(Json::as_str), Some("compiled"));
    let t_complexity = reply.get("t_complexity").and_then(Json::as_u64).unwrap();
    let metrics = scrape_metrics(&first);
    assert_eq!(counter(&metrics, &["disk", "writes"]), 1);
    assert_eq!(
        metrics.get("disk").and_then(|d| d.get("enabled")),
        Some(&Json::Bool(true))
    );
    first.shutdown();

    // Life 2: a brand-new server over the same directory. Its in-memory
    // compile cache is empty — the only place the answer can come from
    // without recompiling is the disk tier.
    let second = start_with_dir(&dir);
    let reply = post_compile(&second);
    assert_eq!(
        reply.get("served").and_then(Json::as_str),
        Some("disk"),
        "restarted server must answer from the persistent tier"
    );
    assert_eq!(
        reply.get("t_complexity").and_then(Json::as_u64),
        Some(t_complexity),
        "the persisted answer must match the originally compiled one"
    );

    let metrics = scrape_metrics(&second);
    assert_eq!(counter(&metrics, &["disk", "hits"]), 1);
    assert_eq!(
        counter(&metrics, &["cache", "misses"]),
        0,
        "a disk-served reply must not touch the compile pipeline"
    );
    assert_eq!(counter(&metrics, &["single_flight", "led"]), 0);

    // A third request on the same (running) server is a memory hit: the
    // decoded artifact is retained, so the disk is read exactly once.
    let reply = post_compile(&second);
    assert_eq!(reply.get("served").and_then(Json::as_str), Some("cache"));
    let metrics = scrape_metrics(&second);
    assert_eq!(counter(&metrics, &["disk", "hits"]), 1);
    second.shutdown();

    // Life 3: include_qc against a disk-warm server — the persisted
    // artifact carries the circuit text even though life 1 never asked
    // for it.
    let third = start_with_dir(&dir);
    let mut stream = TcpStream::connect(third.addr()).unwrap();
    let body = Json::obj()
        .field("source", SOURCE)
        .field("entry", "f")
        .field("depth", 2i64)
        .field("include_qc", true)
        .build()
        .to_string();
    let (status, reply) = client_roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
    assert_eq!(status, 200);
    let reply = parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(reply.get("served").and_then(Json::as_str), Some("disk"));
    let qc = reply.get("qc").and_then(Json::as_str).expect("qc text");
    assert!(!qc.is_empty());
    third.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_tier_is_invisible_when_disabled() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let reply = post_compile(&server);
    assert_eq!(reply.get("served").and_then(Json::as_str), Some("compiled"));
    let metrics = scrape_metrics(&server);
    assert_eq!(
        metrics.get("disk").and_then(|d| d.get("enabled")),
        Some(&Json::Bool(false))
    );
    server.shutdown();
}
