//! Graceful-degradation end-to-end: a server whose disk tier fails
//! every I/O keeps answering `/compile` from memory, flips `/healthz`
//! to `degraded` once the circuit breaker opens, and reports the
//! breaker + fault-injection state in `/metrics`. A second test pins
//! the resource-governance acceptance: sustained distinct-source
//! traffic under `cache_bytes` holds resident bytes within budget.

use std::net::TcpStream;
use std::time::Duration;

use qcirc::json::{parse, Json};
use spire::FaultSchedule;
use spire_serve::http::client_roundtrip;
use spire_serve::{Server, ServerConfig};

fn source(k: usize) -> String {
    format!("fun f(x: uint) -> uint {{ let y <- x + {k}; return y; }}")
}

fn compile_body(k: usize) -> String {
    Json::obj()
        .field("source", source(k))
        .field("entry", "f")
        .field("depth", 2i64)
        .build()
        .to_string()
}

fn get_json(server: &Server, path: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let (status, body) = client_roundtrip(&mut stream, "GET", path, None).unwrap();
    let doc = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    (status, doc)
}

fn post_compile(server: &Server, k: usize) -> Json {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let (status, body) =
        client_roundtrip(&mut stream, "POST", "/compile", Some(&compile_body(k))).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    parse(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spire-degrade-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn always_failing_disk_degrades_to_memory_only() {
    let dir = tempdir("eio");
    let server = Server::start(ServerConfig {
        cache_dir: Some(dir.clone()),
        disk_faults: Some(FaultSchedule::parse("eio:all").unwrap()),
        disk_failure_threshold: 2,
        // Long enough that the breaker cannot slip into half-open and
        // back to closed mid-test.
        disk_cooldown: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("server must boot even when every disk I/O will fail");

    // Before any disk traffic the breaker is closed and health is ok.
    let (status, health) = get_json(&server, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // Distinct sources force a persist attempt per request; every
    // attempt fails, yet every request is answered from the compiler.
    for k in 0..4 {
        let reply = post_compile(&server, k);
        assert_eq!(reply.get("served").and_then(Json::as_str), Some("compiled"));
    }

    // The breaker opened after the configured threshold and /healthz
    // says so — while still returning 200, because the service as a
    // whole is up, just degraded.
    let (status, health) = get_json(&server, "/healthz");
    assert_eq!(status, 200, "degraded health must not fail the probe");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    let disk = health.get("disk").expect("disk block when tier enabled");
    assert_eq!(disk.get("breaker").and_then(Json::as_str), Some("open"));
    assert!(disk.get("opened_total").and_then(Json::as_u64).unwrap() >= 1);

    // /metrics exposes the full degradation story: breaker state, the
    // injected-fault accounting, and the disk error counters.
    let (_, metrics) = get_json(&server, "/metrics");
    let breaker = metrics.get("breaker").expect("breaker block");
    assert_eq!(breaker.get("enabled"), Some(&Json::Bool(true)));
    assert_eq!(breaker.get("state").and_then(Json::as_str), Some("open"));
    let faults = metrics.get("faults").expect("faults block");
    assert_eq!(faults.get("injecting"), Some(&Json::Bool(true)));
    assert_eq!(
        faults.get("schedule").and_then(Json::as_str),
        Some("eio:all")
    );
    assert!(faults.get("injected").and_then(Json::as_u64).unwrap() >= 2);
    let disk = metrics.get("disk").expect("disk block");
    assert!(disk.get("io_errors").and_then(Json::as_u64).unwrap() >= 2);
    assert_eq!(disk.get("writes").and_then(Json::as_u64), Some(0));

    // Memory-only service keeps working: a repeat of an already-compiled
    // source is a cache hit, with zero server errors along the way.
    let reply = post_compile(&server, 0);
    assert_eq!(reply.get("served").and_then(Json::as_str), Some("cache"));
    let (_, metrics) = get_json(&server, "/metrics");
    assert_eq!(
        metrics
            .get("responses")
            .and_then(|r| r.get("server_5xx"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        0,
        "disk faults must never surface as 5xx to clients"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_source_traffic_stays_under_cache_budget() {
    const BUDGET: u64 = 64 * 1024;
    let server = Server::start(ServerConfig {
        cache_bytes: Some(BUDGET),
        ..ServerConfig::default()
    })
    .unwrap();

    for k in 0..48 {
        let reply = post_compile(&server, k);
        assert_eq!(reply.get("served").and_then(Json::as_str), Some("compiled"));
        // The governed invariant, checked under sustained load rather
        // than only at the end: resident bytes never exceed the slice
        // of the budget given to the compile cache.
        let (_, metrics) = get_json(&server, "/metrics");
        let cache = metrics.get("cache").expect("cache block");
        let resident = cache.get("resident_bytes").and_then(Json::as_u64).unwrap();
        let budget = cache.get("budget_bytes").and_then(Json::as_u64).unwrap();
        assert!(budget > 0, "budget must be configured");
        assert!(
            resident <= budget,
            "resident {resident} exceeds budget {budget} after {k} distinct sources"
        );
        // The whole governed footprint — compile cache plus the two
        // memo maps — fits the configured budget (split B/2 + B/4 + B/4).
        let memory = metrics.get("memory").expect("memory block");
        let total = memory.get("resident_bytes").and_then(Json::as_u64).unwrap();
        assert!(
            total <= BUDGET,
            "total resident {total} exceeds --cache-bytes {BUDGET}"
        );
    }

    // The budget was actually exercised, not merely configured: with 48
    // distinct programs something must have been evicted.
    let (_, metrics) = get_json(&server, "/metrics");
    let evictions = metrics
        .get("cache")
        .and_then(|c| c.get("evictions"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        evictions > 0,
        "48 distinct sources against a 64 KiB budget must evict"
    );
    server.shutdown();
}
