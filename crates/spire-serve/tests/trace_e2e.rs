//! End-to-end tests of the tracing surfaces: a real server on an
//! ephemeral port, driven over real sockets.
//!
//! The load-bearing assertions:
//!
//! * `?trace=1` returns the span tree inline with a schema-stable shape
//!   (trace ID, nested spans with stage/timing fields) and echoes the
//!   trace ID in the `x-spire-trace-id` response header;
//! * a traced fresh compile's tree covers every pipeline stage, and the
//!   direct children of the root account for (nearly) all of its wall
//!   time;
//! * two servers booted with the same trace seed produce byte-identical
//!   span trees (after timing normalization) for the same request;
//! * untraced requests carry no trace field and no trace header;
//! * sampled traces (`trace_sample`) tag the response header but never
//!   change the body, and land in `/debug/slow` in both JSON and Chrome
//!   `trace_event` form.

use std::net::TcpStream;

use qcirc::json::{parse, Json};
use spire_serve::http::{client_roundtrip, read_client_response_full};
use spire_serve::{Server, ServerConfig};

const COUNT_SRC: &str = r#"
fun count[n](acc: uint, flag: bool) -> uint {
    if flag {
        let r <- acc + 1;
        let out <- count[n-1](r, flag);
    } else {
        let out <- acc;
    }
    return out;
}
"#;

fn compile_body(depth: i64) -> String {
    Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("depth", depth)
        .build()
        .to_string()
}

/// One request, returning status, lower-cased response headers, and the
/// parsed JSON body.
fn request_full(
    server: &Server,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, Json) {
    use std::io::Write;
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    let body = body.unwrap_or("");
    let message = format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    conn.write_all(message.as_bytes()).expect("send");
    let (status, headers, body, _keep_alive) =
        read_client_response_full(&mut conn).expect("response");
    let text = String::from_utf8(body).expect("UTF-8 response");
    let json = parse(&text).unwrap_or_else(|e| panic!("unparseable response `{text}`: {e}"));
    (status, headers, json)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Collect every stage name in a span tree.
fn stages(span: &Json, out: &mut Vec<String>) {
    if let Some(stage) = span.get("stage").and_then(Json::as_str) {
        out.push(stage.to_string());
    }
    if let Some(Json::Array(children)) = span.get("children") {
        for child in children {
            stages(child, out);
        }
    }
}

/// Canonical rendering of a span tree with every timing field zeroed;
/// two traces of the same request from same-seeded servers must agree
/// on this byte-for-byte (same span IDs, same structure, same attrs).
fn normalized(value: &Json) -> Json {
    match value {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .map(|(k, v)| {
                    if k == "start_ns" || k == "dur_ns" {
                        (k.clone(), Json::UInt(0))
                    } else if k == "attrs" {
                        // Attribute values (gate counts are stable, but
                        // queue depths etc. are not) normalize too;
                        // keys must match exactly.
                        match v {
                            Json::Object(attrs) => (
                                k.clone(),
                                Json::Object(
                                    attrs
                                        .iter()
                                        .map(|(ak, _)| (ak.clone(), Json::UInt(0)))
                                        .collect(),
                                ),
                            ),
                            other => (k.clone(), other.clone()),
                        }
                    } else {
                        (k.clone(), normalized(v))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(normalized).collect()),
        other => other.clone(),
    }
}

#[test]
fn traced_compile_returns_span_tree_and_header() {
    let server = Server::start(ServerConfig::default()).expect("server starts");
    let (status, headers, body) =
        request_full(&server, "POST", "/compile?trace=1", Some(&compile_body(3)));
    assert_eq!(status, 200, "body: {body}");

    // Schema-stable trace shape.
    let trace = body.get("trace").expect("trace field on ?trace=1");
    let trace_id = trace
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("trace_id string");
    assert_eq!(trace_id.len(), 16, "16 hex digits: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(
        header(&headers, "x-spire-trace-id"),
        Some(trace_id),
        "header echoes the trace ID"
    );

    let spans = trace.get("spans").expect("spans array");
    let root = spans.item(0).expect("exactly one root");
    assert_eq!(root.get("stage").and_then(Json::as_str), Some("request"));
    for key in ["span_id", "parent_id", "start_ns", "dur_ns", "children"] {
        assert!(root.get(key).is_some(), "root span has `{key}`");
    }

    // A fresh traced compile covers the whole pipeline, including the
    // serving phases and the spire-verify checks.
    let mut seen = Vec::new();
    stages(root, &mut seen);
    // The circuit-level `qopt` passes are not part of the serving
    // pipeline (they belong to the optimizer-comparison experiments,
    // where `qopt::run_traced` records `qopt:<pass>` spans); everything
    // the serving compile does run must be here.
    for stage in [
        "read_parse",
        "queue",
        "handler",
        "flight",
        "parse",
        "inline",
        "lower",
        "typecheck",
        "optimize",
        "recheck",
        "expand",
        "layout",
        "select",
        "emit",
        "verify",
        "check_circuit",
        "check_ancillas",
        "t_bounds",
    ] {
        assert!(
            seen.iter().any(|s| s == stage),
            "stage `{stage}` missing from trace: {seen:?}"
        );
    }

    // The root's direct children partition the request: their summed
    // duration accounts for (nearly) all of the root's wall time. The
    // `write` phase is recorded after the response flushes, so it is
    // legitimately absent from the inline tree — the remaining phases
    // must still cover the time up to response serialization.
    let root_dur = root.get("dur_ns").and_then(Json::as_u64).expect("dur_ns");
    let Some(Json::Array(children)) = root.get("children") else {
        panic!("root has children");
    };
    let covered: u64 = children
        .iter()
        .filter_map(|c| c.get("dur_ns").and_then(Json::as_u64))
        .sum();
    assert!(
        covered as f64 >= root_dur as f64 * 0.9,
        "phases cover {covered} of {root_dur} ns (< 90%)"
    );
}

#[test]
fn same_seed_gives_byte_identical_normalized_traces() {
    let config = || ServerConfig {
        trace_seed: 0xD5EED,
        ..ServerConfig::default()
    };
    let trace_of = |server: &Server| {
        let (status, _, body) =
            request_full(server, "POST", "/compile?trace=1", Some(&compile_body(3)));
        assert_eq!(status, 200, "body: {body}");
        normalized(body.get("trace").expect("trace field")).to_string()
    };
    let a = Server::start(config()).expect("server a");
    let b = Server::start(config()).expect("server b");
    // Same seed, same first request: identical trace/span IDs and tree.
    assert_eq!(trace_of(&a), trace_of(&b));

    // A different seed diverges (the IDs are seed-derived, not global).
    let c = Server::start(ServerConfig {
        trace_seed: 0xD5EED + 1,
        ..ServerConfig::default()
    })
    .expect("server c");
    assert_ne!(trace_of(&a), trace_of(&c));
}

#[test]
fn untraced_requests_carry_no_trace_surface() {
    let server = Server::start(ServerConfig::default()).expect("server starts");
    let (status, headers, body) = request_full(&server, "POST", "/compile", Some(&compile_body(3)));
    assert_eq!(status, 200);
    assert!(body.get("trace").is_none(), "no trace field uninvited");
    assert_eq!(header(&headers, "x-spire-trace-id"), None);

    // With sampling off (the default), nothing reaches the slow log.
    let (status, slow) = {
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        let (status, body) =
            client_roundtrip(&mut conn, "GET", "/debug/slow", None).expect("roundtrip");
        (status, parse(&String::from_utf8(body).unwrap()).unwrap())
    };
    assert_eq!(status, 200);
    assert_eq!(
        slow.get("slowest").and_then(|s| match s {
            Json::Array(items) => Some(items.len()),
            _ => None,
        }),
        Some(0)
    );
}

#[test]
fn sampled_traces_tag_the_header_and_fill_the_slow_log() {
    let server = Server::start(ServerConfig {
        trace_sample: 1, // every request
        ..ServerConfig::default()
    })
    .expect("server starts");
    let (status, headers, body) = request_full(&server, "POST", "/compile", Some(&compile_body(3)));
    assert_eq!(status, 200);
    let trace_id = header(&headers, "x-spire-trace-id")
        .expect("sampled request is tagged")
        .to_string();
    assert!(
        body.get("trace").is_none(),
        "sampling must never change the response body"
    );

    // The trace is recorded server-side: /debug/slow has it, in both
    // JSON and Chrome trace_event form.
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    let (status, slow) = client_roundtrip(&mut conn, "GET", "/debug/slow", None).expect("slow");
    assert_eq!(status, 200);
    let slow = parse(&String::from_utf8(slow).unwrap()).unwrap();
    let entry = slow
        .get("slowest")
        .and_then(|s| s.item(0))
        .expect("one slow entry");
    assert_eq!(
        entry.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str())
    );
    assert_eq!(entry.get("path").and_then(Json::as_str), Some("/compile"));
    assert!(entry.get("spans").is_some());

    let (status, chrome) =
        client_roundtrip(&mut conn, "GET", "/debug/slow?format=chrome", None).expect("chrome");
    assert_eq!(status, 200);
    let chrome = parse(&String::from_utf8(chrome).unwrap()).unwrap();
    let events = chrome.get("traceEvents").expect("traceEvents");
    let Json::Array(events) = events else {
        panic!("traceEvents is an array");
    };
    assert!(!events.is_empty(), "chrome export has events");
}
