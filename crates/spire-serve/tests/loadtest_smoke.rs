//! Smoke test for the load harness: a quick run against an in-process
//! server produces a well-formed `BENCH_serve.json` with nonzero
//! throughput, coherent request accounting, and a latency-under-load
//! curve from the open-loop sweep.

use std::time::Duration;

use qcirc::json::{parse, Json};
use spire_serve::loadtest::{self, LoadConfig};

#[test]
fn quick_loadtest_produces_a_well_formed_report() {
    let trace_out = std::env::temp_dir().join(format!(
        "spire-serve-smoke-trace-{}.json",
        std::process::id()
    ));
    let config = LoadConfig {
        workers: 2,
        duration: Duration::from_millis(600),
        trace_out: Some(trace_out.clone()),
        ..LoadConfig::quick()
    };
    let report = loadtest::run(&config).expect("load test completes");

    // The traced pass filled the slow log, and --trace-out exported it
    // as Chrome trace_event JSON.
    let chrome = std::fs::read_to_string(&trace_out).expect("trace_out written");
    std::fs::remove_file(&trace_out).ok();
    let chrome = parse(&chrome).expect("chrome trace parses");
    assert!(matches!(
        chrome.get("traceEvents"),
        Some(Json::Array(events)) if !events.is_empty()
    ));

    assert!(report.total > 0, "no requests completed");
    assert!(report.throughput_rps > 0.0);
    assert_eq!(report.transport_errors, 0, "local sockets must not fail");
    assert_eq!(report.server_errors, 0, "benchmark mix must be accepted");
    assert_eq!(report.total, report.ok + report.client_errors);
    assert_eq!(
        report.total,
        report.compile_requests + report.simulate_requests + report.check_requests
    );
    assert!(report.check_requests > 0, "the mix must exercise /check");
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);

    // Steady-state tail sanity: after warmup, no single request may cost
    // a large multiple of the p99 — a blown-out max means some request
    // stalled behind connection setup or a head-of-line block rather
    // than doing proportionate work. (The floor keeps sub-millisecond
    // p99s from turning scheduler jitter into flakes.)
    let tail_cap = (report.p99_us * 20).max(100_000);
    assert!(
        report.max_us < tail_cap,
        "steady-state max {} µs exceeds 20×p99 ({} µs)",
        report.max_us,
        report.p99_us
    );

    // The open-loop sweep ran and produced a coherent curve.
    assert!(
        !report.open_loop.is_empty(),
        "open-loop sweep must run when the closed loop measured capacity"
    );
    for point in &report.open_loop {
        assert!(point.target_rps > 0.0);
        assert!(point.requests > 0, "open-loop point sent no requests");
        assert!(point.ok > 0, "open-loop point got no 2xx responses");
        assert!(point.p50_us <= point.p99_us && point.p99_us <= point.max_us);
    }

    // The serialized document parses and carries the schema the CI
    // artifact consumers read.
    let doc = parse(report.to_json().trim()).expect("report JSON parses");
    assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(6));
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("quick"));
    assert!(doc.get("throughput_rps").and_then(Json::as_f64).unwrap() > 0.0);
    let latency = doc.get("latency_us").expect("latency section");
    assert!(latency.get("p99").and_then(Json::as_u64).is_some());

    // The cold-start pass ran before the timers and is reported
    // separately: every distinct body in the mix (benchmarks through
    // /compile and /check, plus the /simulate probe) exactly once.
    let warmup = doc.get("warmup").expect("warmup section");
    let warm_requests = warmup.get("requests").and_then(Json::as_u64).unwrap();
    assert_eq!(
        warm_requests,
        2 * bench_suite::programs::all_benchmarks().len() as u64 + 1
    );
    let cold = warmup.get("latency_us").expect("warmup latency section");
    let cold_p50 = cold.get("p50").and_then(Json::as_u64).unwrap();
    let cold_max = cold.get("max").and_then(Json::as_u64).unwrap();
    assert!(cold_p50 <= cold_max);
    assert!(cold_max > 0, "cold requests take measurable time");

    // The embedded server-side view: the cache saw real traffic, and
    // after warmup the hit rate is high (each worker re-requests the
    // same 12 programs).
    let cache = doc
        .get("server")
        .and_then(|s| s.get("cache"))
        .expect("server cache metrics");
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
    assert!(misses > 0, "at least the first compiles miss");
    assert!(hits > 0, "repeats must hit the cache");
    assert!(
        doc.get("server")
            .and_then(|s| s.get("single_flight"))
            .and_then(|f| f.get("led"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // The serialized open-loop curve mirrors the in-memory points.
    let curve = doc
        .get("open_loop")
        .and_then(Json::as_array)
        .expect("open_loop array");
    assert_eq!(curve.len(), report.open_loop.len());
    for point in curve {
        assert!(point.get("target_rps").and_then(Json::as_f64).unwrap() > 0.0);
        let lat = point.get("latency_us").expect("point latency section");
        assert!(lat.get("p99").and_then(Json::as_u64).is_some());
    }

    // The tracing-overhead pair ran: both passes measured real
    // throughput, and the deltas are finite percentages. (The quick
    // windows are too short to assert a tight overhead bound here —
    // CI asserts the < 5% sampling-off bound on the full artifact.)
    let tracing = doc.get("tracing").expect("tracing section");
    assert!(tracing.get("untraced_rps").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(tracing.get("traced_rps").and_then(Json::as_f64).unwrap() > 0.0);
    for key in ["overhead_pct", "sampled_off_overhead_pct"] {
        let pct = tracing.get(key).and_then(Json::as_f64).unwrap();
        assert!((0.0..=100.0).contains(&pct), "{key} = {pct}");
    }

    // The disk tier is off by default and reported as such.
    let disk = doc
        .get("server")
        .and_then(|s| s.get("disk"))
        .expect("disk section");
    assert_eq!(disk.get("enabled"), Some(&Json::Bool(false)));

    // Writing the artifact works and round-trips.
    let dir = std::env::temp_dir().join(format!("spire-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = report.write_json(&dir).unwrap();
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written, report.to_json());
    std::fs::remove_dir_all(&dir).ok();
}
