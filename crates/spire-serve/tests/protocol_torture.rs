//! Protocol torture suite: adversarial and degenerate byte streams
//! against a live event-loop server. Every test speaks raw TCP — no
//! client helper decides the framing — so the server's incremental
//! parser, deadlines, and backpressure face exactly the torn, trickled,
//! stalled, and oversized input a hostile or broken peer produces.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use spire_serve::http::{client_roundtrip, read_client_response, set_timeouts};
use spire_serve::{Server, ServerConfig};

/// A server with short deadlines so stall tests run in test time, not
/// production time.
fn torture_server() -> Server {
    Server::start(ServerConfig {
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("server boots")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    set_timeouts(&stream, Duration::from_secs(10), Duration::from_secs(10)).unwrap();
    stream
}

const HEALTHZ: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";

#[test]
fn trickled_request_one_byte_per_write_is_served() {
    let server = torture_server();
    let mut stream = connect(&server);
    // One byte per write, but steadily — the per-request read window
    // (400ms) comfortably covers the whole trickle.
    for byte in HEALTHZ {
        stream.write_all(&[*byte]).unwrap();
        stream.flush().unwrap();
    }
    let (status, body, _) = read_client_response(&mut stream).expect("response");
    assert_eq!(status, 200);
    assert!(!body.is_empty());
    server.shutdown();
}

#[test]
fn requests_split_at_every_tearing_point_are_served() {
    let server = torture_server();
    // Tear one request at each possible boundary, including inside the
    // terminator, on a fresh connection each time.
    for cut in 1..HEALTHZ.len() {
        let mut stream = connect(&server);
        stream.write_all(&HEALTHZ[..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&HEALTHZ[cut..]).unwrap();
        let (status, _, _) =
            read_client_response(&mut stream).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(status, 200, "cut at {cut}");
    }
    server.shutdown();
}

#[test]
fn pipelined_burst_gets_every_response_in_order() {
    let server = torture_server();
    let mut stream = connect(&server);
    // Eight back-to-back requests in a single write: the parser must
    // drain them all without waiting for more socket readiness.
    let mut burst = Vec::new();
    for _ in 0..8 {
        burst.extend_from_slice(HEALTHZ);
    }
    stream.write_all(&burst).unwrap();
    for i in 0..8 {
        let (status, _, keep_alive) =
            read_client_response(&mut stream).unwrap_or_else(|e| panic!("response {i}: {e}"));
        assert_eq!(status, 200, "response {i}");
        assert!(keep_alive, "response {i} must keep the pipeline open");
    }
    server.shutdown();
}

#[test]
fn oversized_head_is_rejected_with_400() {
    let server = torture_server();
    let mut stream = connect(&server);
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // An unterminated header block past the 16 KiB cap: the server must
    // refuse to buffer it forever.
    let filler = vec![b'x'; 32 * 1024];
    let _ = stream.write_all(&filler); // may fail once the server closes
    let Ok((status, body, keep_alive)) = read_client_response(&mut stream) else {
        // Equally acceptable: the server already closed the connection.
        server.shutdown();
        return;
    };
    assert_eq!(status, 400);
    assert!(!keep_alive, "a poisoned stream must not stay open");
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("request/malformed"), "body: {text}");
    server.shutdown();
}

#[test]
fn oversized_declared_body_is_rejected_with_413_before_upload() {
    let server = torture_server();
    let mut stream = connect(&server);
    // Declare a 100 MiB body but send none of it: the verdict must come
    // from the header alone.
    stream
        .write_all(b"POST /compile HTTP/1.1\r\nhost: t\r\ncontent-length: 104857600\r\n\r\n")
        .unwrap();
    let (status, body, keep_alive) = read_client_response(&mut stream).expect("response");
    assert_eq!(status, 413);
    assert!(!keep_alive);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("request/body-too-large"), "body: {text}");
    server.shutdown();
}

#[test]
fn slow_loris_gets_408_and_never_starves_healthy_clients() {
    let server = torture_server();
    // The attacker: starts a request and stalls forever mid-head.
    let mut loris = connect(&server);
    loris.write_all(b"GET /healthz HTT").unwrap();
    loris.flush().unwrap();

    // While the attacker holds its connection, healthy clients keep
    // getting served — the event loop owes the stalled socket nothing
    // but its deadline.
    let healthy_started = Instant::now();
    for _ in 0..5 {
        let mut stream = connect(&server);
        let (status, _) = client_roundtrip(&mut stream, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }
    assert!(
        healthy_started.elapsed() < Duration::from_secs(5),
        "healthy clients were starved behind a slow-loris connection"
    );

    // The stalled connection is eventually answered with 408 and closed
    // — not silently dropped mid-request, not kept alive.
    let (status, body, keep_alive) = read_client_response(&mut loris).expect("408 response");
    assert_eq!(status, 408);
    assert!(!keep_alive);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("request/timeout"), "body: {text}");
    server.shutdown();
}

#[test]
fn stalled_request_window_is_not_refreshed_by_dribbling_bytes() {
    let server = torture_server();
    let mut stream = connect(&server);
    // Send one byte every 100ms: each write alone is well inside the
    // 400ms window, but the *request* never completes. If the server
    // refreshed the deadline per byte this would hold a connection
    // open forever — the window must run from the request's first byte.
    let started = Instant::now();
    let mut verdict = None;
    for byte in b"GET /healthz HTTP/1.1\r" {
        if stream
            .write_all(&[*byte])
            .and_then(|()| stream.flush())
            .is_err()
        {
            break; // server already gave up on us — also acceptable
        }
        std::thread::sleep(Duration::from_millis(100));
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
    }
    if let Ok((status, _, _)) = read_client_response(&mut stream) {
        verdict = Some(status);
    }
    // Either a 408 arrived or the connection died; both prove the
    // deadline fired. What must NOT happen is the loop above finishing
    // its dribble unbothered for multiples of the window.
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "server tolerated a dribbled request far past its read window"
    );
    if let Some(status) = verdict {
        assert_eq!(status, 408);
    }
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_quietly() {
    let server = torture_server();
    let mut stream = connect(&server);
    // No bytes at all: an idle connection is closed without a response
    // (there is no request to answer) once the read window lapses. The
    // 2s client timeout turns "never reaped" into a test failure rather
    // than a hang.
    set_timeouts(&stream, Duration::from_secs(2), Duration::from_secs(2)).unwrap();
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("EOF, not a read timeout");
    assert_eq!(n, 0, "idle close must not fabricate a response");
    server.shutdown();
}

#[test]
fn garbage_preamble_is_rejected_not_crashed() {
    let server = torture_server();
    for garbage in [
        &b"\x00\x01\x02\x03\x04\r\n\r\n"[..],
        &b"BROKEN\r\n\r\n"[..],
        &b"GET /x HTTP/9.9\r\n\r\n"[..],
        &b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"[..],
    ] {
        let mut stream = connect(&server);
        stream.write_all(garbage).unwrap();
        let Ok((status, _, keep_alive)) = read_client_response(&mut stream) else {
            continue; // closing without a response is acceptable for garbage
        };
        assert_eq!(status, 400, "garbage {garbage:?}");
        assert!(!keep_alive);
    }
    // The server survived all of it.
    let mut stream = connect(&server);
    let (status, _) = client_roundtrip(&mut stream, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}
