//! Chunking-invariance property for the incremental request parser: any
//! split of a byte stream into TCP-sized fragments yields exactly the
//! same requests, the same terminal error, and the same mid-request
//! state as feeding the whole buffer at once. This is the contract the
//! event loop relies on — the kernel decides where reads tear, and the
//! server must not be able to observe it.

use proptest::collection::vec;
use proptest::prelude::*;
use spire_serve::http::{parse_whole_buffer, Limits, ParseError, Request, RequestParser};

/// A generated request as raw bytes: sometimes well-formed (with or
/// without a body), sometimes deliberately broken, so the invariance is
/// checked on error paths too.
fn arb_request_bytes() -> BoxedStrategy<Vec<u8>> {
    // `shape` 0..=9: 0-7 well-formed (varying path), 8-9 broken — an 80/20
    // mix, so error paths get exercised without dominating.
    (0u8..10, vec(0u8..=255, 0..24), any::<bool>())
        .prop_map(|(shape, body, keep_alive)| match shape {
            8 => BROKEN[body.len() % BROKEN.len()].to_vec(),
            9 => BROKEN[(body.len() + 1) % BROKEN.len()].to_vec(),
            _ => {
                let path = ["/healthz", "/compile", "/benchmarks?depth=3"][shape as usize % 3];
                let connection = if keep_alive { "keep-alive" } else { "close" };
                let mut bytes = format!(
                    "POST {path} HTTP/1.1\r\nhost: x\r\nconnection: {connection}\r\ncontent-length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes();
                bytes.extend_from_slice(&body);
                bytes
            }
        })
        .boxed()
}

const BROKEN: &[&[u8]] = &[
    b"BROKEN\r\n\r\n",
    b"GET /x HTTP/9.9\r\n\r\n",
    b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
    b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
];

/// A byte stream of several concatenated requests, possibly truncated
/// mid-request at the end.
fn arb_stream() -> BoxedStrategy<Vec<u8>> {
    (vec(arb_request_bytes(), 1..4), 0usize..64)
        .prop_map(|(requests, cut)| {
            let mut bytes: Vec<u8> = requests.into_iter().flatten().collect();
            let keep = bytes.len().saturating_sub(cut % bytes.len().max(1));
            bytes.truncate(keep.max(1));
            bytes
        })
        .boxed()
}

fn run_chunked(bytes: &[u8], cuts: &[usize]) -> (Vec<Request>, Option<ParseError>, bool) {
    let mut parser = RequestParser::new(Limits::default());
    let mut requests = Vec::new();
    let mut error = None;
    // Split `bytes` at the (sorted, deduped) cut points and feed each
    // fragment separately, draining completed requests between feeds —
    // exactly the event loop's read pattern.
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    points.sort_unstable();
    points.dedup();
    let mut start = 0;
    for end in points.into_iter().chain(std::iter::once(bytes.len())) {
        if end < start {
            continue;
        }
        parser.feed(&bytes[start..end]);
        start = end;
        if error.is_some() {
            continue;
        }
        loop {
            match parser.next_request() {
                Ok(Some(request)) => requests.push(request),
                Ok(None) => break,
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
    }
    (requests, error, parser.mid_request())
}

fn assert_same_requests(streamed: &[Request], whole: &[Request]) {
    assert_eq!(streamed.len(), whole.len());
    for (s, w) in streamed.iter().zip(whole) {
        assert_eq!(s.method, w.method);
        assert_eq!(s.path, w.path);
        assert_eq!(s.query, w.query);
        assert_eq!(s.headers, w.headers);
        assert_eq!(s.body, w.body);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunking_is_unobservable(stream in arb_stream(), cuts in vec(0usize..4096, 0..12)) {
        let (whole, whole_error, whole_mid) = parse_whole_buffer(&stream, &Limits::default());
        let (streamed, streamed_error, streamed_mid) = run_chunked(&stream, &cuts);
        assert_same_requests(&streamed, &whole);
        prop_assert_eq!(streamed_error, whole_error);
        prop_assert_eq!(streamed_mid, whole_mid);
    }

    #[test]
    fn byte_at_a_time_equals_whole_buffer(stream in arb_stream()) {
        let (whole, whole_error, whole_mid) = parse_whole_buffer(&stream, &Limits::default());
        let every_byte: Vec<usize> = (0..stream.len()).collect();
        let (streamed, streamed_error, streamed_mid) = run_chunked(&stream, &every_byte);
        assert_same_requests(&streamed, &whole);
        prop_assert_eq!(streamed_error, whole_error);
        prop_assert_eq!(streamed_mid, whole_mid);
    }
}
