//! End-to-end integration tests: a real server on an ephemeral port,
//! driven over real sockets.
//!
//! The load-bearing assertions mirror the service's contract:
//!
//! * `/compile` and `/simulate` answers are **identical** to direct
//!   `spire::pipeline` calls — same T-counts, same `.qc` text bytes,
//!   same simulated variable values;
//! * a repeated identical request is served from the cache, observable
//!   through `/metrics`;
//! * concurrent requests all succeed and agree;
//! * failures come back as structured JSON with stable error codes.

use std::net::TcpStream;
use std::sync::Arc;

use qcirc::json::{parse, Json};
use qcirc::sim::SparseState;
use spire::{compile_source, CompileOptions, Machine};
use spire_serve::http::client_roundtrip;
use spire_serve::{Server, ServerConfig};
use tower::WordConfig;

const COUNT_SRC: &str = r#"
fun count[n](acc: uint, flag: bool) -> uint {
    if flag {
        let r <- acc + 1;
        let out <- count[n-1](r, flag);
    } else {
        let out <- acc;
    }
    return out;
}
"#;

fn start_server() -> Server {
    Server::start(ServerConfig::default()).expect("server starts on an ephemeral port")
}

fn request(server: &Server, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    let (status, body) = client_roundtrip(&mut conn, method, path, body).expect("roundtrip");
    let text = String::from_utf8(body).expect("UTF-8 response");
    let json = parse(&text).unwrap_or_else(|e| panic!("unparseable response `{text}`: {e}"));
    (status, json)
}

fn compile_body(depth: i64, include_qc: bool) -> String {
    Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("depth", depth)
        .field("include_qc", include_qc)
        .build()
        .to_string()
}

#[test]
fn compile_matches_direct_pipeline_byte_for_byte() {
    let server = start_server();
    let (status, reply) = request(&server, "POST", "/compile", Some(&compile_body(5, true)));
    assert_eq!(status, 200, "{reply}");

    let direct = compile_source(
        COUNT_SRC,
        "count",
        5,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let hist = direct.histogram();
    assert_eq!(
        reply.get("t_complexity").and_then(Json::as_u64),
        Some(hist.t_complexity())
    );
    assert_eq!(
        reply.get("mcx_complexity").and_then(Json::as_u64),
        Some(hist.mcx_complexity())
    );
    assert_eq!(
        reply.get("qubits").and_then(Json::as_u64),
        Some(direct.qubits() as u64)
    );
    // The returned .qc text is byte-identical to a direct emission.
    assert_eq!(
        reply.get("qc").and_then(Json::as_str),
        Some(qcirc::qcformat::write(&direct.emit()).as_str())
    );
    // And the embedded histogram is the same serialization qcirc produces.
    assert_eq!(
        reply.get("histogram").map(std::string::ToString::to_string),
        Some(hist.to_json())
    );
    server.shutdown();
}

#[test]
fn simulate_matches_direct_machine_run() {
    let server = start_server();
    let body = Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("depth", 4i64)
        .field(
            "word",
            Json::obj().field("uint_bits", 4u64).field("ptr_bits", 2u64),
        )
        .field("inputs", Json::obj().field("acc", 3u64).field("flag", 0u64))
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&body));
    assert_eq!(status, 200, "{reply}");

    // Direct execution of the same request.
    let config = WordConfig {
        uint_bits: 4,
        ptr_bits: 2,
    };
    let compiled = compile_source(COUNT_SRC, "count", 4, config, &CompileOptions::spire()).unwrap();
    let mut machine: Machine<SparseState> = Machine::with_backend(&compiled.layout);
    machine.set_var("acc", 3).unwrap();
    machine.set_var("flag", 0).unwrap();
    machine.run(&compiled.emit()).unwrap();

    assert_eq!(reply.get("backend").and_then(Json::as_str), Some("sparse"));
    assert_eq!(
        reply.get("qubits").and_then(Json::as_u64),
        Some(compiled.layout.total_qubits as u64)
    );
    let vars = reply.get("vars").expect("vars object");
    // count(3, false) takes the base case immediately: out = acc = 3 —
    // identical through the server and the direct machine.
    assert_eq!(machine.var("out").unwrap(), 3);
    assert_eq!(vars.get("out").and_then(Json::as_u64), Some(3));
    // Every live variable the machine reports classically matches.
    for (name, value) in vars.as_object().unwrap() {
        assert_eq!(
            value.as_u64(),
            machine.var(name).ok(),
            "variable `{name}` diverges"
        );
    }
    server.shutdown();
}

#[test]
fn repeated_request_is_served_from_cache() {
    let server = start_server();
    let body = compile_body(3, false);
    let (status, first) = request(&server, "POST", "/compile", Some(&body));
    assert_eq!(status, 200);
    assert_eq!(
        first.get("served").and_then(Json::as_str),
        Some("compiled"),
        "first request compiles"
    );
    let (_, second) = request(&server, "POST", "/compile", Some(&body));
    assert_eq!(
        second.get("served").and_then(Json::as_str),
        Some("cache"),
        "repeat is a cache hit"
    );
    assert_eq!(
        first.get("t_complexity").and_then(Json::as_u64),
        second.get("t_complexity").and_then(Json::as_u64),
    );

    // The hit is observable in /metrics, and the stats snapshot is
    // coherent: one miss, one hit, one entry.
    let (_, metrics) = request(&server, "GET", "/metrics", None);
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.5));
    assert_eq!(
        metrics
            .get("requests")
            .and_then(|r| r.get("compile"))
            .and_then(Json::as_u64),
        Some(2)
    );
    server.shutdown();
}

#[test]
fn concurrent_compile_and_simulate_agree_with_direct_calls() {
    let server = Arc::new(start_server());
    let direct = compile_source(
        COUNT_SRC,
        "count",
        6,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let expected_t = direct.histogram().t_complexity();

    let threads: Vec<_> = (0..8)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    let (status, reply) =
                        request(&server, "POST", "/compile", Some(&compile_body(6, false)));
                    assert_eq!(status, 200, "{reply}");
                    reply.get("t_complexity").and_then(Json::as_u64).unwrap()
                } else {
                    let body = Json::obj()
                        .field("source", COUNT_SRC)
                        .field("entry", "count")
                        .field("depth", 6i64)
                        .field("inputs", Json::obj().field("acc", 9u64))
                        .build()
                        .to_string();
                    let (status, reply) = request(&server, "POST", "/simulate", Some(&body));
                    assert_eq!(status, 200, "{reply}");
                    // flag defaults to 0: the base case copies acc out.
                    assert_eq!(
                        reply
                            .get("vars")
                            .and_then(|v| v.get("out"))
                            .and_then(Json::as_u64),
                        Some(9)
                    );
                    expected_t
                }
            })
        })
        .collect();
    for handle in threads {
        assert_eq!(handle.join().unwrap(), expected_t);
    }

    // All compile-path requests resolved one underlying compilation:
    // /compile and /simulate share the content-addressed key.
    let (_, metrics) = request(&server, "GET", "/metrics", None);
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));

    Arc::try_unwrap(server)
        .expect("all clients done")
        .shutdown();
}

#[test]
fn check_endpoint_verifies_through_the_cache() {
    let server = start_server();
    let body = compile_body(4, false);
    let (status, first) = request(&server, "POST", "/check", Some(&body));
    assert_eq!(status, 200, "{first}");
    let report = first.get("report").expect("report object");
    assert_eq!(report.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(report.get("errors").and_then(Json::as_u64), Some(0));

    // The T-bound row matches a direct compile + check of the same
    // program.
    let direct = compile_source(
        COUNT_SRC,
        "count",
        4,
        WordConfig::paper_default(),
        &CompileOptions::spire(),
    )
    .unwrap();
    let expected_t = direct.histogram().t_complexity();
    let functions = report
        .get("functions")
        .and_then(Json::as_array)
        .expect("function bounds");
    let row = &functions[0];
    assert_eq!(row.get("function").and_then(Json::as_str), Some("count"));
    assert_eq!(row.get("t_actual").and_then(Json::as_u64), Some(expected_t));
    assert_eq!(row.get("holds").and_then(Json::as_bool), Some(true));

    // /check rides the same content-addressed cache as /compile: a
    // repeat is a hit, and the request counter is its own metrics line.
    let (_, second) = request(&server, "POST", "/check", Some(&body));
    assert_eq!(
        second.get("served").and_then(Json::as_str),
        Some("cache"),
        "repeat is a cache hit"
    );
    let (_, metrics) = request(&server, "GET", "/metrics", None);
    assert_eq!(
        metrics
            .get("requests")
            .and_then(|r| r.get("check"))
            .and_then(Json::as_u64),
        Some(2)
    );
    server.shutdown();
}

#[test]
fn benchmarks_endpoint_compiles_the_paper_programs() {
    let server = start_server();
    let (status, reply) = request(&server, "GET", "/benchmarks?depth=2", None);
    assert_eq!(status, 200, "{reply}");
    let rows = reply
        .get("benchmarks")
        .and_then(Json::as_array)
        .expect("benchmark rows");
    assert_eq!(rows.len(), bench_suite::programs::all_benchmarks().len());
    for row in rows {
        assert!(row.get("t_complexity").and_then(Json::as_u64).unwrap() > 0);
    }
    // A second sweep is fully cache-served.
    let (_, again) = request(&server, "GET", "/benchmarks?depth=2", None);
    for row in again.get("benchmarks").and_then(Json::as_array).unwrap() {
        assert_eq!(row.get("served").and_then(Json::as_str), Some("cache"));
    }
    server.shutdown();
}

#[test]
fn failures_are_structured_with_stable_codes() {
    let server = start_server();
    let cases: Vec<(&str, &str, Option<String>, u16, &str)> = vec![
        ("POST", "/compile", Some("{not json".into()), 400, "request/invalid-json"),
        ("POST", "/compile", Some("{}".into()), 400, "request/missing-field"),
        (
            "POST",
            "/compile",
            Some(r#"{"source":"fun f() -> () { }","entry":"f","depth":99}"#.into()),
            400,
            "request/invalid-field",
        ),
        (
            "POST",
            "/compile",
            Some(r#"{"source":"fun broken(","entry":"broken"}"#.into()),
            422,
            "tower/parse",
        ),
        (
            "POST",
            "/compile",
            Some(
                r#"{"source":"fun f(x: uint) -> uint { let y <- x; return y; }","entry":"missing"}"#
                    .into(),
            ),
            422,
            "tower/unknown-fun",
        ),
        (
            "POST",
            "/simulate",
            Some(
                Json::obj()
                    .field("source", COUNT_SRC)
                    .field("entry", "count")
                    .field("depth", 2i64)
                    .field("inputs", Json::obj().field("no_such_var", 1u64))
                    .build()
                    .to_string(),
            ),
            422,
            "spire/no-register",
        ),
        ("GET", "/nope", None, 404, "request/unknown-route"),
        ("GET", "/compile", None, 405, "request/method-not-allowed"),
    ];
    for (method, path, body, expected_status, expected_code) in cases {
        let (status, reply) = request(&server, method, path, body.as_deref());
        assert_eq!(status, expected_status, "{method} {path}: {reply}");
        let error = reply.get("error").expect("structured error body");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some(expected_code),
            "{method} {path}: {reply}"
        );
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| !m.is_empty()));
    }
    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    use std::io::{Read, Write};
    let server = start_server();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    // Announce a body over the limit; the server must reject from the
    // header alone, before any body bytes arrive.
    conn.write_all(b"POST /compile HTTP/1.1\r\nhost: test\r\ncontent-length: 2097152\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap(); // server closes after the 413
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    assert!(response.contains("request/body-too-large"), "{response}");
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_rejected_not_desynced() {
    use std::io::{Read, Write};
    let server = start_server();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    // A chunked body would desync the keep-alive stream if the framing
    // were ignored; the server must reject it from the headers alone.
    conn.write_all(
        b"POST /compile HTTP/1.1\r\nhost: test\r\ntransfer-encoding: chunked\r\n\r\n\
          5\r\nhello\r\n0\r\n\r\n",
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap(); // server closes after the 400
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("request/malformed"), "{response}");
    server.shutdown();
}

#[test]
fn healthz_reports_ok_and_keepalive_reuses_the_connection() {
    let server = start_server();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    // Three requests down one connection.
    for _ in 0..3 {
        let (status, body) = client_roundtrip(&mut conn, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let json = parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
        assert!(json.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    }
    drop(conn);
    server.shutdown();
}

#[test]
fn batched_shots_share_one_compilation_and_match_single_runs() {
    let server = start_server();
    let shots: Vec<Json> = [(3u64, 1u64), (5, 1), (7, 0)]
        .iter()
        .map(|&(acc, flag)| Json::obj().field("acc", acc).field("flag", flag).build())
        .collect();
    let body = Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("depth", 4i64)
        .field(
            "word",
            Json::obj().field("uint_bits", 4u64).field("ptr_bits", 2u64),
        )
        .field("shots", Json::Array(shots))
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&body));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("backend").and_then(Json::as_str), Some("sparse"));
    let rows = reply
        .get("shots")
        .and_then(Json::as_array)
        .expect("shots array");
    assert_eq!(rows.len(), 3);
    // Every shot matches a direct machine run of the same assignment.
    let config = WordConfig {
        uint_bits: 4,
        ptr_bits: 2,
    };
    let compiled = compile_source(COUNT_SRC, "count", 4, config, &CompileOptions::spire()).unwrap();
    let circuit = compiled.emit();
    for (row, &(acc, flag)) in rows.iter().zip(&[(3u64, 1u64), (5, 1), (7, 0)]) {
        let mut machine: Machine<SparseState> = Machine::with_backend(&compiled.layout);
        machine.set_var("acc", acc).unwrap();
        machine.set_var("flag", flag).unwrap();
        machine.run(&circuit).unwrap();
        assert_eq!(
            row.get("vars")
                .and_then(|v| v.get("out"))
                .and_then(Json::as_u64),
            machine.var("out").ok(),
            "{row}"
        );
        assert_eq!(row.get("support").and_then(Json::as_u64), Some(1));
    }

    // The whole batch resolved one compilation (one cache miss), and a
    // single-input request for one of the same assignments agrees with
    // its batched row.
    let (_, metrics) = request(&server, "GET", "/metrics", None);
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    let single = Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("depth", 4i64)
        .field(
            "word",
            Json::obj().field("uint_bits", 4u64).field("ptr_bits", 2u64),
        )
        .field("inputs", Json::obj().field("acc", 5u64).field("flag", 1u64))
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&single));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        reply.get("vars").map(std::string::ToString::to_string),
        rows[1].get("vars").map(std::string::ToString::to_string),
        "single-input run disagrees with its batched row"
    );
    server.shutdown();
}

#[test]
fn simulate_rejects_malformed_shot_batches() {
    let server = start_server();
    // `shots` and `inputs` together are ambiguous.
    let both = Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("inputs", Json::obj().field("acc", 1u64))
        .field("shots", Json::Array(vec![Json::obj().build()]))
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&both));
    assert_eq!(status, 400, "{reply}");
    // An empty batch does no work and is rejected rather than answered.
    let empty = Json::obj()
        .field("source", COUNT_SRC)
        .field("entry", "count")
        .field("shots", Json::Array(Vec::new()))
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&empty));
    assert_eq!(status, 400, "{reply}");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("request/invalid-field")
    );
    server.shutdown();
}

#[test]
fn wide_layouts_are_served_by_the_wide_sparse_backend() {
    let server = start_server();
    // 24-bit uints push the layout (registers plus adder scratch) past
    // 64 qubits but inside the 256-qubit reach of the wide-keyed sparse
    // backend.
    let source = r#"
fun widen(a: uint, b: uint) -> uint {
    let s <- a + b;
    return s;
}
"#;
    let body = Json::obj()
        .field("source", source)
        .field("entry", "widen")
        .field(
            "word",
            Json::obj()
                .field("uint_bits", 24u64)
                .field("ptr_bits", 2u64),
        )
        .field(
            "inputs",
            Json::obj().field("a", 123_456u64).field("b", 1u64),
        )
        .build()
        .to_string();
    let (status, reply) = request(&server, "POST", "/simulate", Some(&body));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        reply.get("backend").and_then(Json::as_str),
        Some("sparse-wide"),
        "{reply}"
    );
    let qubits = reply.get("qubits").and_then(Json::as_u64).unwrap();
    assert!((65..=256).contains(&qubits), "qubits {qubits}");
    // The wide backend still tracks support (the run stays classical
    // here, so it is exactly 1) and computes the sum.
    assert_eq!(reply.get("support").and_then(Json::as_u64), Some(1));
    assert_eq!(
        reply
            .get("vars")
            .and_then(|v| v.get("s"))
            .and_then(Json::as_u64),
        Some(123_457)
    );
    server.shutdown();
}
