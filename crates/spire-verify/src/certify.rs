//! Optimizer pass certification: re-verify every rewritten circuit.
//!
//! The optimizer's correctness argument is equivalence-preservation, but its
//! *output discipline* — structurally sound gate streams with intact
//! footprints, never more expensive than the input — is checkable without a
//! simulator. [`certify_pass`] runs the structural audit on a pass's output
//! and checks the T-count non-increase invariant every pass in this
//! workspace promises; `qopt` calls it on each pass application behind
//! `debug_assertions` or an explicit opt-in.

use qcirc::Circuit;

use crate::codes;
use crate::diag::Diagnostic;
use crate::wellformed;

/// Certify the output of one optimizer pass.
///
/// Checks that `after` is structurally well-formed (audit included) and that
/// the pass did not increase the circuit's T-count relative to `before`.
/// Returns one diagnostic per violated obligation; an empty vector certifies
/// the application.
pub fn certify_pass(pass: &str, before: &Circuit, after: &Circuit) -> Vec<Diagnostic> {
    let mut diags = wellformed::check_circuit(after, None);
    for d in &mut diags {
        d.message = format!("after pass `{pass}`: {}", d.message);
    }
    let (t_before, t_after) = (before.t_count(), after.t_count());
    if t_after > t_before {
        diags.push(Diagnostic::error(
            codes::PASS_T_INCREASE,
            format!("pass `{pass}` raised the T-count from {t_before} to {t_after}"),
        ));
    }
    diags
}

/// Panic with a readable report unless `certify_pass` returns no findings.
///
/// This is the hook optimizer pipelines call under `debug_assertions`: a
/// certification failure is always a compiler bug, so failing fast with the
/// full diagnostic list beats threading a `Result` through every rewrite.
///
/// # Panics
///
/// Panics if any certification obligation is violated.
pub fn assert_certified(pass: &str, before: &Circuit, after: &Circuit) {
    let diags = certify_pass(pass, before, after);
    assert!(
        diags.is_empty(),
        "pass `{pass}` failed certification:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::mcx(vec![0, 1, 2], 3));
        c.push(Gate::toffoli(0, 1, 2));
        c
    }

    #[test]
    fn identity_rewrite_certifies() {
        let c = sample();
        assert!(certify_pass("noop", &c, &c).is_empty());
        assert_certified("noop", &c, &c);
    }

    #[test]
    fn t_reduction_certifies() {
        let before = sample();
        let mut after = Circuit::new(4);
        after.push(Gate::toffoli(0, 1, 2));
        assert!(certify_pass("cancel", &before, &after).is_empty());
    }

    #[test]
    fn t_increase_is_reported() {
        let before = Circuit::new(4);
        let after = sample();
        let diags = certify_pass("bloat", &before, &after);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::PASS_T_INCREASE);
    }

    #[test]
    fn structural_damage_is_reported_with_pass_context() {
        let before = sample();
        let mut after = sample();
        after.corrupt_footprint_for_test(0, 0);
        let diags = certify_pass("mangle", &before, &after);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::FOOTPRINT_MISMATCH);
        assert!(diags[0].message.contains("mangle"));
    }

    #[test]
    #[should_panic(expected = "failed certification")]
    fn assert_certified_panics_on_violation() {
        let before = Circuit::new(4);
        assert_certified("bloat", &before, &sample());
    }
}
