//! Ancilla-discipline checking: symbolic dataflow over the permutation
//! fragment.
//!
//! The paper's Bennett-style uncomputation discipline requires every ancilla
//! to be returned to |0⟩ before release. This analysis proves it statically
//! with an abstract interpretation of the X/CX/CCX/MCX fragment in a
//! *term-graph* domain: each qubit's value is an XOR-set of hash-consed
//! terms, where a term is either an initial qubit value, the constant 1, or
//! an interned product of control values. Products are never expanded into
//! algebraic normal form — a multiply-controlled NOT XORs a single product
//! term into its target, and the *uncompute* of that gate (same controls,
//! restored to the same symbolic values) XORs the syntactically identical
//! term back out. That is precisely the discipline Bennett-style circuits
//! follow, so the domain is exact on everything the Tower pipeline emits
//! while staying linear in circuit size.
//!
//! CNOT is handled linearly (the target absorbs the source's whole XOR-set),
//! so Cuccaro carry chains, register copies, and swap conjugations cancel
//! exactly. Phase gates (T/S/Z and adjoints) are diagonal and never move
//! basis-state mass: they are identities here. Hadamard creates
//! superposition and havocs its target to ⊤; anything ⊤ feeds becomes ⊤. The
//! abstraction is therefore sound on arbitrary Clifford+T streams and exact
//! on the measurement-free permutation circuits of the benchmarks.
//!
//! Verdicts per ancilla at the end of the stream:
//!
//! * empty XOR-set — clean (provably |0⟩ on every input);
//! * nonempty XOR-set — `verify/leaked-ancilla` (not returned to |0⟩; exact
//!   up to XOR-cancellation, which the pipeline's circuits always exhibit);
//! * ⊤ — `verify/ancilla-indeterminate` (a warning: precision was lost, the
//!   property is unproven but not refuted).
//!
//! Along the way, reading an ancilla as a control *after* it was uncomputed
//! back to |0⟩ (and before any recompute) is flagged as
//! `verify/use-after-uncompute`: such a control provably reads |0⟩, so the
//! gate is dead — always a compiler bug in this pipeline.

use std::collections::HashMap;

use qcirc::{Circuit, GateKind, Qubit};

use crate::codes;
use crate::diag::Diagnostic;

/// Cap on the number of XOR-terms a single qubit may accumulate before the
/// analysis gives up on it and widens to ⊤. Compiled circuits stay far
/// below this; only adversarial streams hit it.
const TERM_CAP: usize = 1 << 14;

/// Identifier of an interned term.
type TermId = u32;
/// Identifier of an interned value (a sorted XOR-set of terms).
type ValueId = u32;

/// A hash-consed term: structural equality is id equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Term {
    /// The constant 1 (introduced by uncontrolled X gates).
    One,
    /// The initial value of a (non-ancilla) qubit.
    Leaf(Qubit),
    /// A product of control values, by interned value id (sorted, deduped).
    Product(Vec<ValueId>),
}

#[derive(Debug, Default)]
struct Interner {
    terms: Vec<Term>,
    term_ids: HashMap<Term, TermId>,
    value_ids: HashMap<Vec<TermId>, ValueId>,
    next_value: ValueId,
}

impl Interner {
    fn term(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.term_ids.get(&t) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(t.clone());
        self.term_ids.insert(t, id);
        id
    }

    /// Intern an XOR-set (must be sorted and duplicate-free).
    fn value(&mut self, set: &[TermId]) -> ValueId {
        if let Some(&id) = self.value_ids.get(set) {
            return id;
        }
        let id = self.next_value;
        self.next_value += 1;
        self.value_ids.insert(set.to_vec(), id);
        id
    }
}

/// Abstract value of one qubit: a sorted XOR-set of term ids, or ⊤.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AbsVal {
    /// XOR of the listed terms; the empty set is the constant 0.
    Set(Vec<TermId>),
    /// Unknown (behind a Hadamard frontier or past the term cap).
    Top,
}

impl AbsVal {
    fn is_zero(&self) -> bool {
        matches!(self, AbsVal::Set(s) if s.is_empty())
    }
}

/// XOR two sorted term sets (symmetric difference, stays sorted).
fn xor_sets(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Which qubits of a circuit are ancillae, and what to call them in
/// diagnostics.
#[derive(Debug, Clone, Default)]
pub struct AncillaSpec {
    /// `(qubit, label)` pairs; each listed qubit starts in |0⟩ and must be
    /// provably back in |0⟩ when the stream ends.
    pub ancillas: Vec<(Qubit, String)>,
}

impl AncillaSpec {
    /// Spec over a contiguous range `lo..hi`, labelled `"{label} qubit {q}"`.
    pub fn range(lo: Qubit, hi: Qubit, label: &str) -> AncillaSpec {
        AncillaSpec {
            ancillas: (lo..hi)
                .map(|q| (q, format!("{label} qubit {q}")))
                .collect(),
        }
    }

    /// Add one labelled ancilla.
    pub fn push(&mut self, qubit: Qubit, label: impl Into<String>) {
        self.ancillas.push((qubit, label.into()));
    }

    /// Merge another spec's ancillae into this one.
    pub fn extend(&mut self, other: AncillaSpec) {
        self.ancillas.extend(other.ancillas);
    }
}

/// Lifecycle of an ancilla, for use-after-uncompute detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Never held a nonzero value.
    Fresh,
    /// Currently possibly nonzero.
    Active,
    /// Was active, then provably uncomputed back to |0⟩.
    Released,
}

/// Run the ancilla-discipline analysis over a gate stream.
///
/// Every qubit listed in `spec` starts as the constant-0 value; every other
/// qubit starts as an opaque initial-value term. Works at any gate level
/// (MCX streams and Toffoli/Clifford+T streams alike) and at any width —
/// the term domain has no 64-qubit limit, unlike the simulators.
pub fn check_ancillas(circuit: &Circuit, spec: &AncillaSpec) -> Vec<Diagnostic> {
    // A corrupted operand arena makes the gate views themselves
    // unreadable; the well-formedness audit owns that finding, and this
    // analysis must not iterate a stream it cannot trust.
    if !circuit.audit_raw().is_empty() {
        return Vec::new();
    }
    let n = circuit.num_qubits() as usize;

    // Last gate index that writes each qubit. A read of a released ancilla
    // that a *later* gate recomputes is the degenerate arm of a conjugation
    // template — provably dead but benign (compilers legitimately emit
    // these at small word widths, where an operand collapses to a constant).
    // A read after the ancilla's final write can never fire for the rest of
    // the circuit: that is the classic stale-read bug, reported as an error.
    let mut last_write: Vec<usize> = vec![0; n];
    for (index, view) in circuit.iter().enumerate() {
        if !view.kind.is_phase() && (view.target as usize) < n {
            last_write[view.target as usize] = index;
        }
    }

    let mut diags = Vec::new();
    let mut label_of: Vec<Option<&str>> = vec![None; n];
    for (q, label) in &spec.ancillas {
        if (*q as usize) < n {
            label_of[*q as usize] = Some(label.as_str());
        }
        // Ancillae past the circuit's width are untouched, hence still |0⟩.
    }

    let mut interner = Interner::default();
    let one = interner.term(Term::One);
    let mut values: Vec<AbsVal> = (0..n as u32)
        .map(|q| {
            if label_of[q as usize].is_some() {
                AbsVal::Set(Vec::new())
            } else {
                let leaf = interner.term(Term::Leaf(q));
                AbsVal::Set(vec![leaf])
            }
        })
        .collect();
    let mut phases: Vec<Phase> = vec![Phase::Fresh; n];

    for (index, view) in circuit.iter().enumerate() {
        // Phase gates are diagonal: they never change basis values, so the
        // abstraction ignores them entirely.
        if view.kind.is_phase() {
            continue;
        }

        // Pass 1 over the controls: flag dead reads of released ancillae and
        // detect provable no-ops (any identically-zero control kills the
        // gate, even when other controls are ⊤).
        let mut dead = false;
        let mut any_top = false;
        for &c in view.controls {
            if let Some(label) = label_of.get(c as usize).copied().flatten() {
                if phases[c as usize] == Phase::Released {
                    let diag = if last_write[c as usize] > index {
                        Diagnostic::warning(
                            codes::USE_AFTER_UNCOMPUTE,
                            format!(
                                "gate {index} reads {label} as a control while it \
                                 is uncomputed to |0⟩ (the gate is provably dead; \
                                 the ancilla is recomputed later)"
                            ),
                        )
                    } else {
                        Diagnostic::error(
                            codes::USE_AFTER_UNCOMPUTE,
                            format!(
                                "gate {index} reads {label} as a control after its \
                                 final uncompute to |0⟩ (stale read: the gate can \
                                 never fire)"
                            ),
                        )
                    };
                    diags.push(diag.at_gate(index));
                }
            }
            match values.get(c as usize) {
                Some(AbsVal::Set(s)) if s.is_empty() => dead = true,
                Some(AbsVal::Set(_)) => {}
                Some(AbsVal::Top) | None => any_top = true,
            }
        }
        if dead {
            continue;
        }

        let t = view.target as usize;
        if t >= n {
            continue; // out-of-range target: wellformedness reports it
        }

        let update_phase = |phases: &mut Vec<Phase>, values: &[AbsVal], t: usize| {
            phases[t] = if values[t].is_zero() {
                match phases[t] {
                    Phase::Fresh => Phase::Fresh,
                    Phase::Active | Phase::Released => Phase::Released,
                }
            } else {
                Phase::Active
            };
        };

        if view.kind == GateKind::Mch || any_top {
            values[t] = AbsVal::Top;
            if label_of[t].is_some() {
                update_phase(&mut phases, &values, t);
            }
            continue;
        }

        // All controls are concrete sets. Fold them into the XOR-set to add
        // to the target: drop constant-1 controls, treat a single remaining
        // control linearly, intern a product term for two or more.
        let mut factor_ids: Vec<ValueId> = Vec::with_capacity(view.controls.len());
        let mut linear: Option<Vec<TermId>> = None;
        for &c in view.controls {
            let AbsVal::Set(s) = &values[c as usize] else {
                unreachable!("⊤ controls handled above")
            };
            if s.as_slice() == [one] {
                continue; // multiplying by the constant 1
            }
            linear = Some(s.clone());
            factor_ids.push(interner.value(s));
        }
        factor_ids.sort_unstable();
        factor_ids.dedup();
        let addend: Vec<TermId> = match factor_ids.len() {
            0 => vec![one],
            1 => linear.expect("one non-trivial control"),
            _ => vec![interner.term(Term::Product(factor_ids))],
        };

        let AbsVal::Set(old) = &values[t] else {
            // A ⊤ target stays ⊤ under XOR updates.
            continue;
        };
        let next = xor_sets(old, &addend);
        values[t] = if next.len() > TERM_CAP {
            AbsVal::Top
        } else {
            AbsVal::Set(next)
        };
        if label_of[t].is_some() {
            update_phase(&mut phases, &values, t);
        }
    }

    for (q, label) in &spec.ancillas {
        let Some(value) = values.get(*q as usize) else {
            continue;
        };
        match value {
            AbsVal::Set(s) if s.is_empty() => {}
            AbsVal::Set(s) => {
                diags.push(Diagnostic::error(
                    codes::LEAKED_ANCILLA,
                    format!(
                        "{label} is not returned to |0⟩ ({} residual symbolic \
                         term{})",
                        s.len(),
                        if s.len() == 1 { "" } else { "s" }
                    ),
                ));
            }
            AbsVal::Top => {
                diags.push(Diagnostic::warning(
                    codes::ANCILLA_INDETERMINATE,
                    format!(
                        "{label} crossed a Hadamard or precision frontier; the \
                         analysis cannot prove it returns to |0⟩"
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;

    fn spec(qs: &[Qubit]) -> AncillaSpec {
        let mut s = AncillaSpec::default();
        for &q in qs {
            s.push(q, format!("ancilla {q}"));
        }
        s
    }

    #[test]
    fn compute_uncompute_pair_is_clean() {
        // Bennett pattern: compute a AND b into ancilla 2, use it, uncompute.
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::cnot(2, 3));
        c.push(Gate::toffoli(0, 1, 2));
        assert!(check_ancillas(&c, &spec(&[2])).is_empty());
    }

    #[test]
    fn leaked_ancilla_is_an_error() {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(0, 1, 2)); // never uncomputed
        let diags = check_ancillas(&c, &spec(&[2]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::LEAKED_ANCILLA);
    }

    #[test]
    fn leak_by_cancellation_is_still_clean() {
        // a⊕b computed twice cancels even though no gate pair is adjacent.
        let mut c = Circuit::new(3);
        c.push(Gate::cnot(0, 2));
        c.push(Gate::cnot(1, 2));
        c.push(Gate::cnot(0, 2));
        c.push(Gate::cnot(1, 2));
        assert!(check_ancillas(&c, &spec(&[2])).is_empty());
    }

    #[test]
    fn x_conjugation_cancels() {
        // X flips around a Toffoli pair: constant-1 terms cancel, and both
        // product terms see the same flipped control value.
        let mut c = Circuit::new(4);
        c.push(Gate::x(0));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::cnot(2, 3));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::x(0));
        assert!(check_ancillas(&c, &spec(&[2])).is_empty());
    }

    #[test]
    fn use_after_uncompute_is_flagged() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 2)); // compute
        c.push(Gate::toffoli(0, 1, 2)); // uncompute
        c.push(Gate::cnot(2, 3)); // dead read of released ancilla
        let diags = check_ancillas(&c, &spec(&[2]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::USE_AFTER_UNCOMPUTE);
        assert_eq!(diags[0].severity, crate::Severity::Error);
        assert_eq!(diags[0].gate, Some(2));
    }

    #[test]
    fn transient_zero_read_is_a_warning() {
        // The read is dead, but the ancilla is recomputed afterwards: the
        // degenerate arm of a conjugation template, not a stale-read bug.
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 2)); // compute
        c.push(Gate::toffoli(0, 1, 2)); // uncompute
        c.push(Gate::cnot(2, 3)); // dead read of the released ancilla
        c.push(Gate::toffoli(0, 1, 2)); // recompute
        c.push(Gate::toffoli(0, 1, 2)); // release again
        let diags = check_ancillas(&c, &spec(&[2]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::USE_AFTER_UNCOMPUTE);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert_eq!(diags[0].gate, Some(2));
    }

    #[test]
    fn zero_controls_make_gates_dead_not_leaky() {
        // Ancilla 2 stays identically 0, so CNOT(2→3) never fires and
        // ancilla 3 stays clean; reading a *fresh* (never-computed) ancilla
        // is not use-after-uncompute.
        let mut c = Circuit::new(4);
        c.push(Gate::cnot(2, 3));
        assert!(check_ancillas(&c, &spec(&[2, 3])).is_empty());
    }

    #[test]
    fn hadamard_frontier_degrades_to_warning() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(1));
        let diags = check_ancillas(&c, &spec(&[1]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::ANCILLA_INDETERMINATE);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn top_control_taints_targets_but_zero_control_still_kills() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(0));
        // Controls {0 (⊤), 2 (zero ancilla)}: provably dead despite ⊤.
        c.push(Gate::mcx(vec![0, 2], 3));
        assert!(check_ancillas(&c, &spec(&[2, 3])).is_empty());
        // Without the zero control, ⊤ taints the target.
        let mut c2 = Circuit::new(3);
        c2.push(Gate::h(0));
        c2.push(Gate::cnot(0, 2));
        let diags = check_ancillas(&c2, &spec(&[2]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::ANCILLA_INDETERMINATE);
    }

    #[test]
    fn phase_gates_are_transparent() {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::T(2));
        c.push(Gate::Tdg(2));
        c.push(Gate::toffoli(0, 1, 2));
        assert!(check_ancillas(&c, &spec(&[2])).is_empty());
    }

    #[test]
    fn recompute_after_release_is_allowed() {
        // V-chain style reuse: compute, uncompute, recompute, uncompute.
        let mut c = Circuit::new(3);
        for _ in 0..2 {
            c.push(Gate::toffoli(0, 1, 2));
            c.push(Gate::toffoli(0, 1, 2));
        }
        assert!(check_ancillas(&c, &spec(&[2])).is_empty());
    }

    #[test]
    fn barenco_vchain_is_clean() {
        // The Figure-5 shape: chain products into fresh ancillae, use the
        // top, then unwind. Nested product terms must cancel exactly.
        let mut c = Circuit::new(7);
        c.push(Gate::toffoli(0, 1, 4));
        c.push(Gate::toffoli(2, 4, 5));
        c.push(Gate::toffoli(3, 5, 6));
        c.push(Gate::toffoli(3, 5, 6)); // stand-in for the final use
        c.push(Gate::toffoli(2, 4, 5));
        c.push(Gate::toffoli(0, 1, 4));
        assert!(check_ancillas(&c, &spec(&[4, 5, 6])).is_empty());
    }

    #[test]
    fn carry_chain_cancels_linearly() {
        // Cuccaro-style MAJ/UMA pairs: CNOT-heavy compute/uncompute with the
        // carry rippling through; everything must cancel.
        let mut c = Circuit::new(9);
        let (a, b, carry) = ([0, 1, 2], [3, 4, 5], [6, 7, 8]);
        for i in 0..3 {
            c.push(Gate::cnot(a[i], b[i]));
            if i > 0 {
                c.push(Gate::cnot(carry[i - 1], carry[i]));
            }
            c.push(Gate::toffoli(a[i], b[i], carry[i]));
        }
        for i in (0..3).rev() {
            c.push(Gate::toffoli(a[i], b[i], carry[i]));
            if i > 0 {
                c.push(Gate::cnot(carry[i - 1], carry[i]));
            }
            c.push(Gate::cnot(a[i], b[i]));
        }
        assert!(check_ancillas(&c, &spec(&[6, 7, 8])).is_empty());
    }

    #[test]
    fn analysis_scales_past_sixty_four_qubits() {
        // Footprints fold at 64 qubits and the dense simulators stop far
        // earlier; the term domain does not care.
        let mut c = Circuit::new(130);
        c.push(Gate::toffoli(0, 100, 129));
        c.push(Gate::toffoli(0, 100, 129));
        assert!(check_ancillas(&c, &spec(&[129])).is_empty());
    }
}
