//! Diagnostics, reports, and their JSON serialization.

use qcirc::json::Json;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The analysis could not decide; the property may still hold.
    Warning,
    /// The property is provably violated.
    Error,
}

impl Severity {
    /// The lowercase label used in JSON and human-readable output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `verify/…` code (see [`crate::codes`]).
    pub code: &'static str,
    /// Whether the property is violated or merely unproven.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Index of the offending gate in the gate stream, when the finding is
    /// anchored to a specific gate.
    pub gate: Option<usize>,
    /// Byte span in the source program, when the finding is locatable.
    pub span: Option<(usize, usize)>,
}

impl Diagnostic {
    /// An error diagnostic with no location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            gate: None,
            span: None,
        }
    }

    /// A warning diagnostic with no location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attach a gate index.
    pub fn at_gate(mut self, index: usize) -> Diagnostic {
        self.gate = Some(index);
        self
    }

    /// Attach a source byte span.
    pub fn with_span(mut self, span: (usize, usize)) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Serialize to the workspace JSON model.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("code", self.code)
            .field("severity", self.severity.label())
            .field("message", self.message.as_str());
        if let Some(gate) = self.gate {
            obj = obj.field("gate", gate);
        }
        if let Some((start, end)) = self.span {
            obj = obj.field("span", Json::obj().field("start", start).field("end", end));
        }
        obj.build()
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} [{}]",
            self.severity.label(),
            self.message,
            self.code
        )?;
        if let Some(gate) = self.gate {
            write!(f, " (gate {gate})")?;
        }
        if let Some((start, end)) = self.span {
            write!(f, " (bytes {start}..{end})")?;
        }
        Ok(())
    }
}

/// Static T-count interval versus the actual compiled count for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionBounds {
    /// Function name as written in the source program.
    pub name: String,
    /// Statically predicted minimum T-count.
    pub min: u64,
    /// Statically predicted maximum T-count.
    pub max: u64,
    /// T-count of the actually compiled circuit.
    pub actual: u64,
}

impl FunctionBounds {
    /// Whether the compiled count falls inside the predicted interval.
    pub fn holds(&self) -> bool {
        self.min <= self.actual && self.actual <= self.max
    }

    /// Serialize to the workspace JSON model.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("function", self.name.as_str())
            .field("t_min", self.min)
            .field("t_max", self.max)
            .field("t_actual", self.actual)
            .field("holds", self.holds())
            .build()
    }
}

/// One `verify/t-bound-violation` error per row whose compiled T-count
/// falls outside its static interval.
pub fn bound_violations(rows: &[FunctionBounds]) -> Vec<Diagnostic> {
    rows.iter()
        .filter(|row| !row.holds())
        .map(|row| {
            Diagnostic::error(
                crate::codes::T_BOUND_VIOLATION,
                format!(
                    "function `{}` compiled to {} T gates, outside the static \
                     interval [{}, {}]",
                    row.name, row.actual, row.min, row.max
                ),
            )
        })
        .collect()
}

/// Aggregated result of running the verifier over one compiled program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-function static T-bounds with the compiled counts they predict.
    pub functions: Vec<FunctionBounds>,
}

impl Report {
    /// Whether no analysis reported an [`Severity::Error`] finding.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Serialize to the workspace JSON model.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("clean", self.is_clean())
            .field("errors", self.error_count())
            .field(
                "diagnostics",
                self.diagnostics
                    .iter()
                    .map(Diagnostic::to_json)
                    .collect::<Json>(),
            )
            .field(
                "functions",
                self.functions
                    .iter()
                    .map(FunctionBounds::to_json)
                    .collect::<Json>(),
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;

    #[test]
    fn report_json_shape_is_stable() {
        let mut report = Report::default();
        report
            .diagnostics
            .push(Diagnostic::error(codes::LEAKED_ANCILLA, "ancilla 3 leaks").at_gate(7));
        report.functions.push(FunctionBounds {
            name: "length".into(),
            min: 10,
            max: 20,
            actual: 15,
        });
        let json = report.to_json();
        assert_eq!(json.get("clean").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("errors").and_then(Json::as_u64), Some(1));
        let diag = json.get("diagnostics").and_then(|d| d.item(0)).unwrap();
        assert_eq!(
            diag.get("code").and_then(Json::as_str),
            Some(codes::LEAKED_ANCILLA)
        );
        assert_eq!(diag.get("gate").and_then(Json::as_u64), Some(7));
        let fun = json.get("functions").and_then(|f| f.item(0)).unwrap();
        assert_eq!(fun.get("holds").and_then(Json::as_bool), Some(true));
        // Round-trips through the workspace JSON parser.
        let mut text = String::new();
        json.write(&mut text);
        assert_eq!(qcirc::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn warnings_do_not_dirty_a_report() {
        let mut report = Report::default();
        report.diagnostics.push(Diagnostic::warning(
            codes::ANCILLA_INDETERMINATE,
            "unproven",
        ));
        assert!(report.is_clean());
        assert_eq!(report.error_count(), 0);
    }
}
