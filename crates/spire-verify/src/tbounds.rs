//! Static T-complexity bounds: interval analysis over the Tower core IR.
//!
//! An independent reimplementation of the compiler's cost model (paper
//! Figure 20's `c^MCX` judgments composed with the MCX→Clifford+T T-cost
//! formula): the walk mirrors instruction selection — the quantum-`if`
//! control stack, `with-do` expansion `s₁; s₂; I[s₁]`, conjugation
//! instructions that carry no `if`-controls — but runs on the *core IR*
//! only, before layout, selection, or decomposition exist.
//!
//! The single source of imprecision is the control-stack depth `k` of an
//! instruction: selection deduplicates condition *qubits*, which this
//! analysis cannot see. It brackets `k` between the number of *distinct*
//! condition symbols on the stack (a lower bound, since distinct live
//! condition variables occupy distinct registers) and the raw stack depth
//! (an upper bound). Every per-instruction T-cost is monotone in `k`, so
//! evaluating the closed forms at both ends yields a sound `[min, max]`
//! interval for the whole function. The compiled count landing inside the
//! interval is the cross-check (`verify/t-bound-violation` when it does
//! not), exercised over all 12 paper benchmarks.

use qcirc::{t_of_mch, t_of_mcx};
use tower::{CoreBinOp, CoreExpr, CoreStmt, CoreValue, Symbol, TowerError, TypeInfo, TypeTable};

/// A statically predicted T-count interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TBound {
    /// Inclusive lower bound on the T-count of the compiled function.
    pub min: u64,
    /// Inclusive upper bound on the T-count of the compiled function.
    pub max: u64,
}

impl TBound {
    /// Whether `actual` falls inside the interval.
    pub fn contains(&self, actual: u64) -> bool {
        self.min <= actual && actual <= self.max
    }
}

/// Predict the `[min, max]` T-count of a typechecked core-IR function.
///
/// `stmt` is the inlined function body, `types`/`table` the typing
/// information the compiler produced for it — the same inputs instruction
/// selection consumes.
///
/// # Errors
///
/// Propagates [`TowerError`] for unbound variables or unresolvable types;
/// a typechecked program never triggers either.
pub fn bound_function(
    stmt: &CoreStmt,
    types: &TypeInfo,
    table: &TypeTable,
) -> Result<TBound, TowerError> {
    let mut walker = Walker {
        types,
        table,
        conds: Vec::new(),
        lo: 0,
        hi: 0,
    };
    walker.stmt(stmt)?;
    Ok(TBound {
        min: walker.lo,
        max: walker.hi,
    })
}

struct Walker<'a> {
    types: &'a TypeInfo,
    table: &'a TypeTable,
    /// Raw stack of enclosing `if` condition symbols (duplicates kept).
    conds: Vec<Symbol>,
    lo: u64,
    hi: u64,
}

impl Walker<'_> {
    /// `[k_min, k_max]` for the current control-stack depth.
    fn k_bounds(&self) -> (usize, usize) {
        let distinct = {
            let mut seen: Vec<&Symbol> = Vec::with_capacity(self.conds.len());
            for c in &self.conds {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
            seen.len()
        };
        (distinct, self.conds.len())
    }

    /// Add `count` MCX gates whose arity is `extra` plus the control depth.
    fn add_mcx(&mut self, extra: usize, count: u64) {
        let (k_lo, k_hi) = self.k_bounds();
        self.lo += count * t_of_mcx(extra + k_lo);
        self.hi += count * t_of_mcx(extra + k_hi);
    }

    /// Add `count` MCX gates of fixed arity, independent of control depth.
    fn add_mcx_fixed(&mut self, arity: usize, count: u64) {
        let cost = count * t_of_mcx(arity);
        self.lo += cost;
        self.hi += cost;
    }

    fn width_of(&self, var: &Symbol) -> Result<u32, TowerError> {
        let ty = self
            .types
            .var_types
            .get(var)
            .ok_or_else(|| TowerError::UnboundVar { var: var.clone() })?;
        self.table.width(ty)
    }

    fn stmt(&mut self, stmt: &CoreStmt) -> Result<(), TowerError> {
        match stmt {
            CoreStmt::Skip => Ok(()),
            CoreStmt::Seq(ss) => {
                for s in ss {
                    self.stmt(s)?;
                }
                Ok(())
            }
            CoreStmt::If { cond, body } => {
                self.conds.push(cond.clone());
                self.stmt(body)?;
                self.conds.pop();
                Ok(())
            }
            // Straightforward strategy s₁; s₂; I[s₁]: the setup's cost is
            // paid twice; reversal never changes a histogram.
            CoreStmt::With { setup, body } => {
                self.stmt(setup)?;
                self.stmt(body)?;
                self.stmt(setup)
            }
            // Un-assignment emits the reversed instructions of the matching
            // assignment — identical cost.
            CoreStmt::Assign { var, expr } | CoreStmt::Unassign { var, expr } => {
                self.assign(var, expr)
            }
            CoreStmt::Hadamard(_) => {
                let (k_lo, k_hi) = self.k_bounds();
                self.lo += t_of_mch(k_lo);
                self.hi += t_of_mch(k_hi);
                Ok(())
            }
            CoreStmt::Swap(a, b) => {
                if a == b {
                    return Ok(());
                }
                let w = u64::from(self.width_of(a)?);
                if w > 0 {
                    self.add_mcx_fixed(1, 2 * w);
                    self.add_mcx(1, w);
                }
                Ok(())
            }
            CoreStmt::MemSwap { ptr, val } => {
                let p = self.width_of(ptr)?;
                let data_width = u64::from(self.width_of(val)?);
                if data_width == 0 {
                    return Ok(());
                }
                let num_cells = 1u64 << self.table.config().ptr_bits;
                let cells = num_cells - 1;
                self.add_mcx_fixed(p as usize, 2 * cells);
                self.add_mcx_fixed(1, 2 * data_width * cells);
                self.add_mcx(2, data_width * cells);
                Ok(())
            }
            // Alloc and dealloc both emit the stack-pop circuit (one of them
            // reversed); the cost is identical.
            CoreStmt::Alloc { var, .. } | CoreStmt::Dealloc { var, .. } => {
                let p = self.table.config().ptr_bits;
                let dst_width = self.width_of(var).unwrap_or(p);
                // Decrement chain.
                self.add_mcx(0, 1);
                for i in 1..p {
                    self.add_mcx(i as usize, 1);
                }
                // Slot scan.
                let slots = 1u64 << p;
                let w = u64::from(p.min(dst_width));
                self.add_mcx_fixed(p as usize, 2 * slots);
                self.add_mcx_fixed(1, 2 * w * slots);
                self.add_mcx(2, w * slots);
                Ok(())
            }
        }
    }

    fn assign(&mut self, var: &Symbol, expr: &CoreExpr) -> Result<(), TowerError> {
        let dst_width = self.width_of(var)?;
        match expr {
            CoreExpr::Value(value) => match value {
                CoreValue::Unit | CoreValue::Null(_) | CoreValue::ZeroOf(_) => Ok(()),
                CoreValue::UInt(n) | CoreValue::PtrLit(_, n) => {
                    if *n == 0 || dst_width == 0 {
                        return Ok(());
                    }
                    self.add_mcx(0, u64::from(masked_popcount(*n, dst_width)));
                    Ok(())
                }
                CoreValue::Bool(b) => {
                    if *b {
                        self.add_mcx(0, 1);
                    }
                    Ok(())
                }
                CoreValue::Pair(x, y) => {
                    let wx = u64::from(self.width_of(x)?);
                    let wy = u64::from(self.width_of(y)?);
                    if wx > 0 {
                        self.add_mcx(1, wx);
                    }
                    if wy > 0 {
                        self.add_mcx(1, wy);
                    }
                    Ok(())
                }
            },
            CoreExpr::Var(_) => {
                if dst_width > 0 {
                    self.add_mcx(1, u64::from(dst_width));
                }
                Ok(())
            }
            CoreExpr::Proj1(_) | CoreExpr::Proj2(_) => {
                // Selection slices the source; the copy width is the
                // destination's (the projected component's) width.
                if dst_width > 0 {
                    self.add_mcx(1, u64::from(dst_width));
                }
                Ok(())
            }
            CoreExpr::Not(_) => {
                self.add_mcx(1, 1);
                self.add_mcx(0, 1);
                Ok(())
            }
            CoreExpr::Test(x) => {
                let src_width = self.width_of(x)?;
                self.add_mcx(src_width as usize, 1);
                self.add_mcx(0, 1);
                Ok(())
            }
            CoreExpr::Bin(op, a, b) => {
                match op {
                    CoreBinOp::And | CoreBinOp::Or if a == b => {
                        if dst_width > 0 {
                            self.add_mcx(1, u64::from(dst_width));
                        }
                    }
                    CoreBinOp::And => self.add_mcx(2, 1),
                    CoreBinOp::Or => {
                        self.add_mcx(2, 1);
                        self.add_mcx(0, 1);
                    }
                    CoreBinOp::Sub if a == b => {}
                    CoreBinOp::Add | CoreBinOp::Sub | CoreBinOp::Mul => {
                        let w = u64::from(dst_width);
                        if *op == CoreBinOp::Mul {
                            let m_sum = w * (w + 1) / 2;
                            self.add_mcx_fixed(3, 4 * m_sum);
                            self.add_mcx_fixed(2, 8 * m_sum);
                            self.add_mcx(1, w);
                        } else if w == 1 {
                            self.add_mcx(1, 2);
                        } else if *op == CoreBinOp::Add {
                            self.add_mcx_fixed(2, 6 * w - 10);
                            self.add_mcx(1, 3 * w - 1);
                        } else {
                            self.add_mcx_fixed(2, 6 * (w - 1));
                            self.add_mcx(1, 3 * w);
                        }
                        // Same-operand arithmetic duplicates one operand
                        // through scratch: two uncontrolled register copies
                        // (conjugation, k = 0 — and CNOTs cost no T anyway).
                        if a == b {
                            let wa = u64::from(self.width_of(a)?);
                            self.add_mcx_fixed(1, 2 * wa);
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Popcount of `value` restricted to the low `width` bits.
fn masked_popcount(value: u64, width: u32) -> u32 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (value & mask).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tower::{typecheck, Type, WordConfig};

    fn bound(stmt: &CoreStmt, inputs: &[(Symbol, Type)]) -> TBound {
        let table = TypeTable::new(WordConfig::paper_default());
        let info = typecheck(stmt, inputs, &table).expect("typechecks");
        bound_function(stmt, &info, &table).expect("bounds")
    }

    fn assign_and(dst: &str, a: &str, b: &str) -> CoreStmt {
        CoreStmt::Assign {
            var: Symbol::new(dst),
            expr: CoreExpr::Bin(CoreBinOp::And, Symbol::new(a), Symbol::new(b)),
        }
    }

    #[test]
    fn uncontrolled_and_costs_one_toffoli() {
        let inputs = vec![
            (Symbol::new("a"), Type::Bool),
            (Symbol::new("b"), Type::Bool),
        ];
        let b = bound(&assign_and("x", "a", "b"), &inputs);
        assert_eq!(b, TBound { min: 7, max: 7 });
    }

    #[test]
    fn duplicate_condition_widens_the_interval() {
        // if c { if c { x <- a && b } }: selection deduplicates the
        // condition qubit (actual arity 3) but the raw stack depth says 4.
        let inner = assign_and("x", "a", "b");
        let stmt = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::If {
                cond: Symbol::new("c"),
                body: Box::new(inner),
            }),
        };
        let inputs = vec![
            (Symbol::new("a"), Type::Bool),
            (Symbol::new("b"), Type::Bool),
            (Symbol::new("c"), Type::Bool),
        ];
        let b = bound(&stmt, &inputs);
        assert_eq!(b.min, t_of_mcx(3));
        assert_eq!(b.max, t_of_mcx(4));
        assert!(b.min < b.max);
    }

    #[test]
    fn with_pays_setup_twice() {
        let setup = assign_and("t", "a", "b");
        let body = assign_and("x", "a", "b");
        let stmt = CoreStmt::With {
            setup: Box::new(setup.clone()),
            body: Box::new(body.clone()),
        };
        let inputs = vec![
            (Symbol::new("a"), Type::Bool),
            (Symbol::new("b"), Type::Bool),
        ];
        assert_eq!(bound(&stmt, &inputs), TBound { min: 21, max: 21 });
    }

    #[test]
    fn unassign_costs_the_same_as_assign() {
        let a = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Value(CoreValue::UInt(5)),
        };
        let inputs: Vec<(Symbol, Type)> = Vec::new();
        let cost_a = bound(&a, &inputs);
        let both = CoreStmt::seq(vec![a.clone(), a.reversed()]);
        let cost_both = bound(&both, &inputs);
        assert_eq!(cost_both.min, 2 * cost_a.min);
        assert_eq!(cost_both.max, 2 * cost_a.max);
    }

    #[test]
    fn constant_and_zero_assignments_are_free() {
        let stmt = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(0)),
            },
            CoreStmt::Assign {
                var: Symbol::new("y"),
                expr: CoreExpr::Value(CoreValue::UInt(0b101)),
            },
            CoreStmt::Assign {
                var: Symbol::new("z"),
                expr: CoreExpr::Var(Symbol::new("y")),
            },
        ]);
        // XorConst is plain X gates and XorReg is CNOTs: no T cost at all.
        assert_eq!(bound(&stmt, &[]), TBound { min: 0, max: 0 });
    }
}
