//! The stable `verify/…` diagnostic-code namespace.
//!
//! Codes are part of the tool's public contract: CI goldens, the negative
//! fixture corpus, and `POST /check` clients all match on them, so a code is
//! never renamed or reused once published. New analyses append new codes.

/// Operand-arena slice of an MCX lies outside the arena.
pub const ARENA_OUT_OF_BOUNDS: &str = "verify/arena-out-of-bounds";
/// Control list of a gate is not strictly sorted (unordered or duplicated).
pub const UNSORTED_CONTROLS: &str = "verify/unsorted-controls";
/// A gate's target also appears among its controls.
pub const CONTROL_TARGET_OVERLAP: &str = "verify/control-target-overlap";
/// A gate touches a qubit index at or beyond the allocated width.
pub const QUBIT_OUT_OF_RANGE: &str = "verify/qubit-out-of-range";
/// A gate's stored footprint mask differs from the recomputed mask.
pub const FOOTPRINT_MISMATCH: &str = "verify/footprint-mismatch";
/// An ancilla is provably not |0⟩ when the circuit ends.
pub const LEAKED_ANCILLA: &str = "verify/leaked-ancilla";
/// An ancilla is read as a control after it was uncomputed back to |0⟩.
pub const USE_AFTER_UNCOMPUTE: &str = "verify/use-after-uncompute";
/// The analysis lost precision and cannot prove the ancilla returns to |0⟩.
pub const ANCILLA_INDETERMINATE: &str = "verify/ancilla-indeterminate";
/// A compiled T-count falls outside the statically predicted interval.
pub const T_BOUND_VIOLATION: &str = "verify/t-bound-violation";
/// An optimizer pass increased the T-count of the circuit it rewrote.
pub const PASS_T_INCREASE: &str = "verify/pass-t-increase";

/// Every published code, in publication order.
pub const ALL: &[&str] = &[
    ARENA_OUT_OF_BOUNDS,
    UNSORTED_CONTROLS,
    CONTROL_TARGET_OVERLAP,
    QUBIT_OUT_OF_RANGE,
    FOOTPRINT_MISMATCH,
    LEAKED_ANCILLA,
    USE_AFTER_UNCOMPUTE,
    ANCILLA_INDETERMINATE,
    T_BOUND_VIOLATION,
    PASS_T_INCREASE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    /// The code namespace is a stable contract: prefixed, kebab-case, unique.
    #[test]
    fn codes_are_stable_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ALL {
            let suffix = code
                .strip_prefix("verify/")
                .unwrap_or_else(|| panic!("{code}: missing verify/ prefix"));
            assert!(
                !suffix.is_empty()
                    && suffix
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{code}: suffix must be kebab-case"
            );
            assert!(seen.insert(*code), "{code}: duplicated");
        }
        assert_eq!(seen.len(), 10, "adding a code? append it to ALL");
    }
}
