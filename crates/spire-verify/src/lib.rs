//! Static verification for compiled Tower circuits.
//!
//! This crate implements the static-analysis layer of the Spire reproduction
//! of *The T-Complexity Costs of Error Correction for Control Flow in Quantum
//! Computation* (Yuan & Carbin, PLDI 2024). The paper's central claim is that
//! control flow under error correction is only as cheap as its uncomputation
//! discipline; the analyses here *prove* the properties the rest of the
//! pipeline merely trusts:
//!
//! * [`wellformed`] — structural well-formedness of the footprint-indexed
//!   gate stream: control/target overlap, qubit range versus the allocated
//!   layout width, operand-arena integrity, and an audit that every gate's
//!   precomputed [`qcirc::Footprint`] mask equals the mask recomputed from
//!   its operands.
//! * [`ancilla`] — an exact symbolic dataflow over the permutation fragment
//!   (X/CX/CCX/MCX, with havoc at Hadamard frontiers) proving each ancilla
//!   returns to |0⟩ before release, and flagging leaked ancillae and
//!   use-after-uncompute.
//! * [`tbounds`] — an interval analysis over the Tower core IR predicting
//!   `[min, max]` T-count per function *before* selection and decomposition,
//!   cross-checked against actual compiled counts.
//! * [`certify`] — re-verification of optimizer pass output (structural
//!   checks plus a T-count non-increase invariant), the hook `qopt` runs
//!   behind `debug_assertions` or an opt-in flag.
//!
//! Every finding is a [`Diagnostic`] with a stable `verify/…` code (see
//! [`codes`]); a [`Report`] aggregates diagnostics with optional per-function
//! T-bounds and serializes to the workspace JSON model for `spire-cli check
//! --json` and the `POST /check` endpoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ancilla;
pub mod certify;
pub mod codes;
pub mod diag;
pub mod tbounds;
pub mod wellformed;

pub use ancilla::{check_ancillas, AncillaSpec};
pub use certify::{assert_certified, certify_pass};
pub use diag::{bound_violations, Diagnostic, FunctionBounds, Report, Severity};
pub use tbounds::{bound_function, TBound};
pub use wellformed::check_circuit;
