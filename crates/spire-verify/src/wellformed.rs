//! Gate-stream well-formedness: structural audit of the packed circuit.
//!
//! Wraps [`qcirc::Circuit::audit_raw`] — the non-panicking walk over the
//! packed representation that checks arena slices, control ordering,
//! control/target overlap, qubit accounting, and the stored-versus-recomputed
//! [`qcirc::Footprint`] invariant — and maps each defect to a stable
//! `verify/…` diagnostic. Optionally also checks every gate against an
//! *allocated* width (the layout's qubit budget), which is stricter than the
//! circuit's own `num_qubits` accounting.

use qcirc::{Circuit, RawDefect};

use crate::codes;
use crate::diag::Diagnostic;

/// Check a circuit's structural invariants.
///
/// `allocated_width` is the number of qubits the enclosing layout actually
/// allocated; pass `None` to check only against the circuit's own
/// `num_qubits` accounting. Returns one diagnostic per defect, in gate-stream
/// order.
pub fn check_circuit(circuit: &Circuit, allocated_width: Option<u32>) -> Vec<Diagnostic> {
    let defects = circuit.audit_raw();
    let mut diags: Vec<Diagnostic> = defects.iter().map(defect_to_diagnostic).collect();

    // The width sweep reads gate views, which assume an intact arena; skip it
    // when the structural audit already found arena corruption.
    let arena_ok = !defects
        .iter()
        .any(|d| matches!(d, RawDefect::ArenaOutOfBounds { .. }));
    if let (Some(width), true) = (allocated_width, arena_ok) {
        for (index, view) in circuit.iter().enumerate() {
            let max = view.max_qubit();
            if max >= width {
                diags.push(
                    Diagnostic::error(
                        codes::QUBIT_OUT_OF_RANGE,
                        format!(
                            "gate {index} touches qubit {max} but the layout \
                             allocates only {width} qubits"
                        ),
                    )
                    .at_gate(index),
                );
            }
        }
    }
    diags
}

fn defect_to_diagnostic(defect: &RawDefect) -> Diagnostic {
    match *defect {
        RawDefect::ArenaOutOfBounds {
            index,
            offset,
            nctrl,
            arena_len,
        } => Diagnostic::error(
            codes::ARENA_OUT_OF_BOUNDS,
            format!(
                "gate {index} references arena controls {offset}..{} but the \
                 arena holds only {arena_len} entries",
                offset as usize + nctrl as usize
            ),
        )
        .at_gate(index),
        RawDefect::UnsortedControls {
            index,
            first,
            second,
        } => Diagnostic::error(
            codes::UNSORTED_CONTROLS,
            format!(
                "gate {index} has controls out of order: {first} before {second} \
                 (controls must be strictly increasing)"
            ),
        )
        .at_gate(index),
        RawDefect::ControlTargetOverlap { index, qubit } => Diagnostic::error(
            codes::CONTROL_TARGET_OVERLAP,
            format!("gate {index} uses qubit {qubit} as both control and target"),
        )
        .at_gate(index),
        RawDefect::QubitOutOfRange {
            index,
            qubit,
            width,
        } => Diagnostic::error(
            codes::QUBIT_OUT_OF_RANGE,
            format!(
                "gate {index} touches qubit {qubit} but the circuit declares \
                 only {width} qubits"
            ),
        )
        .at_gate(index),
        RawDefect::FootprintMismatch {
            index,
            stored,
            recomputed,
        } => Diagnostic::error(
            codes::FOOTPRINT_MISMATCH,
            format!(
                "gate {index} stores footprint mask {stored:#x} but its operands \
                 recompute to {recomputed:#x}"
            ),
        )
        .at_gate(index),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::{Gate, GateKind};

    #[test]
    fn clean_circuit_produces_no_diagnostics() {
        let mut c = Circuit::new(4);
        c.push(Gate::mcx(vec![0, 1], 3));
        c.push(Gate::h(2));
        c.push(Gate::T(3));
        assert!(check_circuit(&c, Some(4)).is_empty());
    }

    #[test]
    fn layout_width_is_stricter_than_circuit_width() {
        let mut c = Circuit::new(8);
        c.push(Gate::cnot(0, 7));
        // Well-formed by the circuit's own accounting…
        assert!(check_circuit(&c, None).is_empty());
        // …but qubit 7 exceeds a 6-qubit layout budget.
        let diags = check_circuit(&c, Some(6));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::QUBIT_OUT_OF_RANGE);
        assert_eq!(diags[0].gate, Some(0));
    }

    #[test]
    fn corrupted_footprint_is_reported() {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(0, 1, 2));
        c.corrupt_footprint_for_test(0, 0b1000);
        let diags = check_circuit(&c, Some(3));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::FOOTPRINT_MISMATCH);
    }

    #[test]
    fn arena_corruption_suppresses_width_sweep_but_is_reported() {
        let mut c = Circuit::new(6);
        c.push(Gate::mcx(vec![0, 1, 2, 3], 5));
        c.corrupt_arena_offset_for_test(0, 1_000);
        let diags = check_circuit(&c, Some(6));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::ARENA_OUT_OF_BOUNDS);
    }

    #[test]
    fn overlap_and_ordering_are_reported() {
        let mut c = Circuit::new(4);
        c.push_raw_for_test(GateKind::Mcx, &[2, 1], 3);
        c.push_raw_for_test(GateKind::Mcx, &[0, 2], 2);
        let codes_seen: Vec<&str> = check_circuit(&c, None).iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::UNSORTED_CONTROLS));
        assert!(codes_seen.contains(&codes::CONTROL_TARGET_OVERLAP));
    }
}
