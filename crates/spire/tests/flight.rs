//! Concurrency tests for the single-flight layer: N threads requesting
//! one `CacheKey` trigger exactly one underlying compile, every thread
//! receives the same shared compilation, and failures reach every waiter
//! without being cached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use spire::flight::{Served, SingleFlight, SingleFlightCache};
use spire::CompileOptions;
use tower::WordConfig;

const LENGTH: &str = r#"
type list = (uint, ptr<list>);

fun length[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let next <- temp.2;
        let r <- acc + 1;
    } do {
        let out <- length[n-1](next, r);
    }
    return out;
}
"#;

/// The mechanism-level guarantee, made deterministic: the leader's work
/// closure blocks until every other thread has registered as a follower
/// of the same flight, so all N calls provably overlap — and the work
/// still runs exactly once.
#[test]
fn n_concurrent_callers_run_the_work_exactly_once() {
    const THREADS: u64 = 8;
    let flight: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
    let runs = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS as usize));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let flight = Arc::clone(&flight);
            let runs = Arc::clone(&runs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                flight.run(0xDEAD_BEEF, || {
                    // Hold the flight open until all other threads have
                    // coalesced onto it; then do the "work".
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while flight.stats().coalesced < THREADS - 1 {
                        assert!(Instant::now() < deadline, "followers never arrived");
                        std::thread::yield_now();
                    }
                    runs.fetch_add(1, Ordering::SeqCst) + 41
                })
            })
        })
        .collect();

    let results: Vec<(u64, Served)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(runs.load(Ordering::SeqCst), 1, "work must run exactly once");
    assert!(results.iter().all(|&(v, _)| v == 41));
    assert_eq!(
        results.iter().filter(|&&(_, s)| s == Served::Led).count(),
        1,
        "exactly one leader"
    );
    assert_eq!(
        results
            .iter()
            .filter(|&&(_, s)| s == Served::Coalesced)
            .count(),
        (THREADS - 1) as usize,
        "everyone else coalesces"
    );
    let stats = flight.stats();
    assert_eq!((stats.led, stats.coalesced), (1, THREADS - 1));
    assert_eq!(flight.in_flight(), 0, "table drains after the flight");
}

/// End-to-end over the real compiler: however the threads interleave,
/// the cache records exactly one compilation (miss) for the shared key,
/// and every thread holds the same `Arc`.
#[test]
fn concurrent_identical_requests_compile_once() {
    const THREADS: usize = 8;
    let compiler = Arc::new(SingleFlightCache::new());
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let compiler = Arc::clone(&compiler);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                compiler
                    .get_or_compile(
                        LENGTH,
                        "length",
                        6,
                        WordConfig::paper_default(),
                        &CompileOptions::spire(),
                    )
                    .unwrap()
            })
        })
        .collect();

    let compiled: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for other in &compiled[1..] {
        assert!(
            Arc::ptr_eq(&compiled[0], other),
            "all threads share one compilation"
        );
    }
    let stats = compiler.cache().stats();
    assert_eq!(stats.misses, 1, "exactly one underlying compile");
    assert_eq!(stats.entries, 1);
    let flights = compiler.flight_stats();
    // Conservation: every request was served from the cache (hit), led a
    // flight (whose inner get_or_compile counts the miss — or a hit, if
    // it raced a completed flight), or coalesced onto one.
    assert_eq!(
        stats.hits + stats.misses + flights.coalesced,
        THREADS as u64
    );
}

/// Errors propagate to every waiter of the failing flight and are not
/// cached: the next request compiles (and fails) again.
#[test]
fn failures_reach_waiters_but_are_not_cached() {
    let compiler = SingleFlightCache::new();
    for _ in 0..2 {
        let err = compiler
            .get_or_compile(
                "fun broken(",
                "broken",
                0,
                WordConfig::tiny(),
                &CompileOptions::baseline(),
            )
            .unwrap_err();
        assert_eq!(err.code(), "tower/parse");
    }
    assert!(compiler.cache().is_empty());
    assert_eq!(
        compiler.flight_stats().led,
        2,
        "each failure led its own flight"
    );
}

/// The consistent-snapshot guarantee of `CompileCache::stats` under load:
/// hammer the cache from many threads while a reader polls, and require
/// every snapshot to be internally coherent (a counted hit implies a
/// visible entry).
#[test]
fn stats_snapshots_are_never_torn() {
    let compiler = Arc::new(SingleFlightCache::new());
    let stop = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let compiler = Arc::clone(&compiler);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    compiler
                        .get_or_compile(
                            LENGTH,
                            "length",
                            2,
                            WordConfig::paper_default(),
                            &CompileOptions::baseline(),
                        )
                        .unwrap();
                }
            });
        }
        let deadline = Instant::now() + Duration::from_millis(300);
        while Instant::now() < deadline {
            let stats = compiler.cache().stats();
            // Coherence: hits can only be counted against a present
            // entry, and an entry only exists after its miss was counted.
            if stats.hits > 0 || stats.entries > 0 {
                assert!(
                    stats.misses >= stats.entries as u64,
                    "entry visible before its miss: {stats:?}"
                );
                assert!(
                    stats.entries >= 1,
                    "hit counted without an entry: {stats:?}"
                );
            }
        }
        stop.store(1, Ordering::SeqCst);
    });
}
