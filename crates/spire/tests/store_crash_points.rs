//! Exhaustive crash-point harness for the disk tier.
//!
//! Replays a fixed store op sequence under a `crash_after_bytes` fault
//! schedule, simulating a `kill -9` at **every write boundary** (and at
//! chosen offsets *inside* every record), then reopens with a fresh,
//! healthy process and asserts the recovery invariants:
//!
//! * the committed record prefix is preserved byte-for-byte;
//! * a torn tail is truncated away (and only a mid-record kill leaves
//!   one);
//! * a corrupt payload is never served;
//! * the index rebuilt by scanning equals the index a snapshot-assisted
//!   reopen produces;
//! * a crashed process never installs an index snapshot;
//! * a crash at any point inside compaction loses no live record
//!   (either generation recovers the same contents).
//!
//! A deterministic seeded fault battery (EIO/ENOSPC/torn at a seeded
//! rate) rides along: same seed, same faults, and no fault sequence can
//! make the store serve wrong bytes. The chaos CI job runs this file in
//! release mode and archives its coverage summary.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spire::faults::{FaultKind, FaultSchedule};
use spire::store::DiskStore;

static CASE: AtomicU64 = AtomicU64::new(0);

/// magic(4) + key(16) + len(4) + checksum(16) around each payload.
const RECORD_OVERHEAD: u64 = 40;
/// The 8-byte `cas.log` file header (written before any faults arm).
const LOG_HEADER: u64 = 8;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spire-crash-points-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The replayed op sequence: eight puts with payload sizes chosen to
/// cover empty, tiny, and multi-block records.
fn op_sequence() -> Vec<(u128, Vec<u8>)> {
    [0usize, 1, 7, 40, 100, 3, 64, 25]
        .iter()
        .enumerate()
        .map(|(i, &len)| (i as u128 + 1, vec![0x40 + i as u8; len]))
        .collect()
}

/// Cumulative write extents of each record, relative to the first
/// post-open write (the header is written at open, before faults arm).
fn record_extents(ops: &[(u128, Vec<u8>)]) -> Vec<(u64, u64)> {
    let mut extents = Vec::new();
    let mut cursor = 0u64;
    for (_, payload) in ops {
        let size = RECORD_OVERHEAD + payload.len() as u64;
        extents.push((cursor, cursor + size));
        cursor += size;
    }
    extents
}

/// Run the op sequence against a store that crashes after `budget`
/// written bytes, ignoring the errors a dying process sees.
fn run_to_crash(dir: &Path, budget: u64) -> Arc<FaultSchedule> {
    let faults = FaultSchedule::crash_after_bytes(budget);
    let store = DiskStore::open_with(dir, Arc::clone(&faults)).expect("open precedes the crash");
    for (key, payload) in op_sequence() {
        let _ = store.put(key, &payload);
    }
    // Drop tries to persist the index snapshot; a crashed process must
    // not manage it (asserted by the caller).
    drop(store);
    faults
}

/// Reopen after a simulated crash and assert every recovery invariant.
/// Returns whether recovery truncated a torn tail.
fn assert_recovered(dir: &Path, committed: &[(u128, Vec<u8>)], all: &[(u128, Vec<u8>)]) -> bool {
    let scanned_entries;
    let truncated;
    {
        let store = DiskStore::open(dir).expect("healthy reopen");
        assert!(
            !store.recovery().used_snapshot,
            "a crashed process must never install a snapshot"
        );
        truncated = store.recovery().truncated_bytes > 0;
        assert_eq!(store.len(), committed.len(), "exactly the committed prefix");
        for (key, payload) in committed {
            assert_eq!(
                store.get(*key).as_deref(),
                Some(payload.as_slice()),
                "committed record {key} must survive intact"
            );
        }
        for (key, _) in &all[committed.len()..] {
            assert_eq!(store.get(*key), None, "uncommitted record {key} is gone");
        }
        assert_eq!(
            store.stats().corrupt_dropped,
            0,
            "nothing corrupt served or dropped"
        );
        scanned_entries = store.index_entries();
        // Closing installs a fresh snapshot over the recovered state.
    }
    let store = DiskStore::open(dir).expect("snapshot reopen");
    assert!(store.recovery().used_snapshot);
    assert_eq!(
        store.index_entries(),
        scanned_entries,
        "snapshot index must equal the from-scratch scan"
    );
    truncated
}

#[test]
fn kill_at_every_write_boundary_recovers_the_committed_prefix() {
    let ops = op_sequence();
    let extents = record_extents(&ops);
    let total: u64 = extents.last().map(|&(_, end)| end).unwrap();

    // Every record contributes its boundary (a kill between writes) and
    // three intra-record offsets (a kill tearing the write itself).
    let mut budgets = Vec::new();
    for &(start, end) in &extents {
        let size = end - start;
        budgets.push(start); // boundary: nothing of this record lands
        budgets.push(start + 1); // first byte only
        budgets.push(start + size / 2); // mid-record tear
        budgets.push(end - 1); // all but the last byte
    }
    budgets.sort_unstable();
    budgets.dedup();
    assert!(budgets.iter().all(|&b| b < total));

    let mut torn_tails = 0usize;
    for &budget in &budgets {
        let dir = tempdir("boundary");
        let faults = run_to_crash(&dir, budget);
        assert!(
            faults.crashed(),
            "budget {budget} < total {total} must trip"
        );
        assert!(
            !DiskStore::index_path(&dir).exists(),
            "no snapshot survives a crash at byte {budget}"
        );
        let committed: Vec<_> = extents
            .iter()
            .zip(&ops)
            .take_while(|(&(_, end), _)| end <= budget)
            .map(|(_, op)| op.clone())
            .collect();
        let truncated = assert_recovered(&dir, &committed, &ops);
        let mid_record = extents
            .iter()
            .any(|&(start, end)| budget > start && budget < end);
        assert_eq!(
            truncated, mid_record,
            "kill at byte {budget}: torn tail iff mid-record"
        );
        if truncated {
            torn_tails += 1;
        }

        // The truncated log is a valid store again: appends land
        // cleanly on the recovered prefix.
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.put(0xFFFF, b"post-crash append").unwrap());
        assert_eq!(
            store.get(0xFFFF).as_deref(),
            Some(b"post-crash append".as_slice())
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!(
        "crash-point coverage: {} write boundaries over {} records ({} bytes), {} torn tails truncated",
        budgets.len(),
        ops.len(),
        total + LOG_HEADER,
        torn_tails,
    );
    assert!(torn_tails > 0, "the harness must exercise torn tails");
}

#[test]
fn kill_anywhere_inside_compaction_loses_no_live_record() {
    let ops = op_sequence();
    // Compaction rewrites header + every live record: enumerate kill
    // points across that entire write range.
    let compaction_bytes: u64 = LOG_HEADER
        + ops
            .iter()
            .map(|(_, p)| RECORD_OVERHEAD + p.len() as u64)
            .sum::<u64>();
    // Reach past the rewrite itself so some kills land *after* the
    // rename (committing the new generation) — e.g. inside the
    // best-effort snapshot write that follows it.
    let budgets: Vec<u64> = (0..compaction_bytes + 300).step_by(7).collect();

    let mut committed_new_generation = 0usize;
    for &budget in &budgets {
        let dir = tempdir("compact");
        {
            let store = DiskStore::open(&dir).unwrap();
            for (key, payload) in &ops {
                store.put(*key, payload).unwrap();
            }
        }
        // Reopen with the crash schedule and compact: the kill lands
        // somewhere inside the rewrite (or its rename gate).
        let faults = FaultSchedule::crash_after_bytes(budget);
        let compacted = {
            let store = DiskStore::open_with(&dir, Arc::clone(&faults)).unwrap();
            store.compact().is_ok()
        };
        if compacted {
            committed_new_generation += 1;
        }
        // Either generation must recover the identical live contents.
        let store = DiskStore::open(&dir).unwrap();
        assert!(
            !DiskStore::compaction_path(&dir).exists(),
            "an uncommitted generation is removed at open"
        );
        assert_eq!(
            store.len(),
            ops.len(),
            "kill at byte {budget} of compaction"
        );
        for (key, payload) in &ops {
            assert_eq!(
                store.get(*key).as_deref(),
                Some(payload.as_slice()),
                "live record {key} lost by compaction crash at byte {budget}"
            );
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "compaction crash coverage: {} kill points, {} committed the new generation, {} kept the old",
        budgets.len(),
        committed_new_generation,
        budgets.len() - committed_new_generation,
    );
    assert!(
        committed_new_generation > 0,
        "some kills must land after the rename commit point"
    );
    assert!(
        committed_new_generation < budgets.len(),
        "some kills must precede the rename"
    );
}

/// One seeded battery pass: a mixed put/get workload under a fault
/// schedule. Returns (successful put keys, injected count).
fn battery_pass(dir: &Path, faults: Arc<FaultSchedule>) -> (Vec<u128>, u64) {
    let store = DiskStore::open_with(dir, Arc::clone(&faults)).expect("open is fault-free");
    let mut ok_puts = Vec::new();
    for (key, payload) in op_sequence() {
        if matches!(store.put(key, &payload), Ok(true)) {
            ok_puts.push(key);
        }
        // Interleave reads; a fault here may error, but can never
        // return wrong bytes (asserted below against the clean reopen).
        if let Ok(Some(got)) = store.try_get(key) {
            let (_, expect) = op_sequence().into_iter().find(|(k, _)| *k == key).unwrap();
            assert_eq!(got, expect, "a faulty read must error, not lie");
        }
    }
    let injected = faults.stats().injected;
    drop(store);
    (ok_puts, injected)
}

#[test]
fn seeded_fault_battery_is_deterministic_and_never_serves_wrong_bytes() {
    let mut summary = Vec::new();
    for kind in [FaultKind::Eio, FaultKind::Enospc, FaultKind::Torn] {
        for seed in [7u64, 42, 1000003] {
            let dir_a = tempdir("battery-a");
            let dir_b = tempdir("battery-b");
            let (puts_a, injected_a) =
                battery_pass(&dir_a, FaultSchedule::fail_rate(64, seed, kind));
            let (puts_b, injected_b) =
                battery_pass(&dir_b, FaultSchedule::fail_rate(64, seed, kind));
            assert_eq!(puts_a, puts_b, "same seed, same surviving puts");
            assert_eq!(injected_a, injected_b, "same seed, same injections");

            // Every put that reported success is durable and intact
            // after a clean reopen (rate faults never tear state).
            let _ = std::fs::remove_file(DiskStore::index_path(&dir_a));
            let store = DiskStore::open(&dir_a).unwrap();
            for key in &puts_a {
                let (_, expect) = op_sequence().into_iter().find(|(k, _)| k == key).unwrap();
                assert_eq!(
                    store.get(*key).as_deref(),
                    Some(expect.as_slice()),
                    "successful put {key} must be durable"
                );
            }
            summary.push((kind, seed, injected_a, puts_a.len()));
            drop(store);
            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
        }
    }
    for (kind, seed, injected, survived) in &summary {
        println!(
            "fault battery {kind:?} seed={seed}: injected={injected} surviving_puts={survived}/8"
        );
    }
    assert!(
        summary.iter().any(|&(_, _, injected, _)| injected > 0),
        "rate 64/256 must inject somewhere"
    );
}

#[test]
fn every_nth_op_failure_point_leaves_a_consistent_store() {
    // Exhaustive over the op index: whichever single data operation
    // fails, the store stays consistent and later ops succeed.
    let ops = op_sequence();
    for kind in [FaultKind::Eio, FaultKind::Enospc, FaultKind::Torn] {
        for n in 0..(ops.len() as u64) {
            let dir = tempdir("nth");
            let faults = FaultSchedule::fail_nth(n, kind);
            let store = DiskStore::open_with(&dir, Arc::clone(&faults)).unwrap();
            let mut failed = 0usize;
            for (key, payload) in &ops {
                if store.put(*key, payload).is_err() {
                    failed += 1;
                }
            }
            assert_eq!(failed, 1, "exactly op {n} fails under {kind:?}");
            assert_eq!(store.len(), ops.len() - 1);
            drop(store);
            let _ = std::fs::remove_file(DiskStore::index_path(&dir));
            let store = DiskStore::open(&dir).unwrap();
            assert_eq!(store.len(), ops.len() - 1, "survivors are durable");
            assert_eq!(store.recovery().truncated_bytes, 0, "no torn tail leaks");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
