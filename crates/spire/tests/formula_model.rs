//! The paper's formula-based cost model (Section 5 recurrences with the
//! constants c_ctrl = 14 and c_CH) against the exact histogram model: the
//! formula is an asymptotically faithful over-approximation — same degree
//! as the exact model on the paper's running example, never smaller than
//! the true T-count on control-dominated programs.

use spire::cost::{exact_histogram, formula_mcx, formula_t, CostEnv, FormulaConstants};
use spire::{compile_source, CompileOptions};
use tower::WordConfig;

const LENGTH_SIMPLE: &str = r#"
type list = (uint, ptr<list>);
fun length_simple[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        let next <- temp.2;
        let r <- acc;
    } do {
        let out <- length_simple[n-1](next, r);
    }
    return out;
}
"#;

fn degree(points: &[(i64, u64)]) -> usize {
    // Second difference constant → quadratic; first difference constant →
    // linear.
    let d1: Vec<i64> = points
        .windows(2)
        .map(|w| w[1].1 as i64 - w[0].1 as i64)
        .collect();
    if d1.windows(2).all(|w| w[0] == w[1]) {
        return 1;
    }
    let d2: Vec<i64> = d1.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        d2.windows(2).all(|w| w[0] == w[1]),
        "expected degree <= 2: {points:?}"
    );
    2
}

#[test]
fn formula_model_has_the_exact_models_degree() {
    let mut exact = Vec::new();
    let mut formula = Vec::new();
    let mut formula_mcx_points = Vec::new();
    for n in 2..=7 {
        let compiled = compile_source(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            WordConfig::paper_default(),
            &CompileOptions::baseline(),
        )
        .unwrap();
        let env = CostEnv {
            layout: &compiled.layout,
            types: &compiled.types,
            table: &compiled.table,
        };
        exact.push((
            n,
            exact_histogram(&compiled.ir, &env).unwrap().t_complexity(),
        ));
        formula.push((
            n,
            formula_t(&compiled.ir, &env, FormulaConstants::paper()).unwrap(),
        ));
        formula_mcx_points.push((n, formula_mcx(&compiled.ir, &env).unwrap()));
    }
    assert_eq!(degree(&exact), 2, "exact model is quadratic: {exact:?}");
    assert_eq!(
        degree(&formula),
        2,
        "formula model is quadratic: {formula:?}"
    );
    assert_eq!(
        degree(&formula_mcx_points),
        1,
        "formula MCX-complexity is linear: {formula_mcx_points:?}"
    );
}

#[test]
fn formula_mcx_equals_exact_mcx() {
    // C_MCX ignores controls entirely, so the formula recurrence and the
    // exact histogram agree exactly.
    for n in 2..=5 {
        let compiled = compile_source(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            WordConfig::paper_default(),
            &CompileOptions::baseline(),
        )
        .unwrap();
        let env = CostEnv {
            layout: &compiled.layout,
            types: &compiled.types,
            table: &compiled.table,
        };
        assert_eq!(
            formula_mcx(&compiled.ir, &env).unwrap(),
            exact_histogram(&compiled.ir, &env)
                .unwrap()
                .mcx_complexity(),
            "n = {n}"
        );
    }
}

#[test]
fn formula_model_overapproximates_on_this_suite() {
    // c_ctrl = 14 charges the full two-Toffoli increment for every control
    // bit, including the first two (which the real decomposition gets for
    // 0 or 7 T). On control-dominated programs the formula is therefore an
    // upper bound.
    for n in 2..=6 {
        let compiled = compile_source(
            LENGTH_SIMPLE,
            "length_simple",
            n,
            WordConfig::paper_default(),
            &CompileOptions::baseline(),
        )
        .unwrap();
        let env = CostEnv {
            layout: &compiled.layout,
            types: &compiled.types,
            table: &compiled.table,
        };
        let exact = exact_histogram(&compiled.ir, &env).unwrap().t_complexity();
        let formula = formula_t(&compiled.ir, &env, FormulaConstants::paper()).unwrap();
        assert!(
            formula >= exact,
            "formula {formula} should dominate exact {exact} at n = {n}"
        );
    }
}
