//! Crash-recovery properties of the persistent artifact store: for any
//! stored contents and any single corruption (truncation or byte flip at
//! an arbitrary offset), reopening recovers exactly the intact record
//! prefix, never serves a damaged payload, and rebuilds the same index a
//! from-scratch scan would.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use spire::store::DiskStore;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spire-store-props-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Distinct (key, payload) pairs to store: small keys, payloads of
/// varied length including empty.
fn arb_entries() -> BoxedStrategy<Vec<(u128, Vec<u8>)>> {
    vec((0u128..32, vec(0u8..=255, 0..64)), 1..8)
        .prop_map(|mut entries| {
            entries.sort_by_key(|(k, _)| *k);
            entries.dedup_by_key(|(k, _)| *k);
            entries
        })
        .boxed()
}

/// Populate a fresh store (in insertion order = key order after dedup)
/// and return, per record, its key, payload, and end offset in the log.
fn populate(dir: &Path, entries: &[(u128, Vec<u8>)]) -> Vec<(u128, Vec<u8>, u64)> {
    let store = DiskStore::open(dir).unwrap();
    let mut records = Vec::new();
    for (key, payload) in entries {
        assert!(store.put(*key, payload).unwrap());
        // End offset of this record = current offset of the *next*
        // record; recover it from the index.
        records.push((*key, payload.clone(), 0));
    }
    let mut spans: Vec<(u64, u128, u32)> = store
        .index_entries()
        .into_iter()
        .map(|(k, off, len)| (off, k, len))
        .collect();
    spans.sort_unstable();
    // RECORD_OVERHEAD is 40 bytes (magic 4 + key 16 + len 4 + checksum 16).
    for record in &mut records {
        let (offset, _, len) = spans
            .iter()
            .find(|(_, k, _)| *k == record.0)
            .map(|&(off, k, len)| (off, k, len))
            .expect("stored key indexed");
        record.2 = offset + 40 + u64::from(len);
    }
    records
}

/// The records whose bytes lie entirely before `damage_offset`.
fn intact_prefix(records: &[(u128, Vec<u8>, u64)], damage_offset: u64) -> Vec<(u128, Vec<u8>)> {
    records
        .iter()
        .take_while(|(_, _, end)| *end <= damage_offset)
        .map(|(k, p, _)| (*k, p.clone()))
        .collect()
}

/// Reopen after damage and check the recovered state. `expect_truncation`
/// asserts recovery itself discarded bytes (true for mid-record damage
/// like a byte flip; a clean `set_len` cut at a record boundary leaves
/// nothing for recovery to discard).
fn check_recovery(dir: &Path, expected: &[(u128, Vec<u8>)], expect_truncation: bool) {
    // Remove the snapshot: recovery must come from the log alone.
    let _ = std::fs::remove_file(DiskStore::index_path(dir));
    let scanned_entries;
    {
        let store = DiskStore::open(dir).unwrap();
        assert!(!store.recovery().used_snapshot);
        if expect_truncation {
            assert!(
                store.recovery().truncated_bytes > 0,
                "damage inside the valid prefix must cost bytes"
            );
        }
        assert_eq!(store.len(), expected.len(), "exact intact prefix");
        for (key, payload) in expected {
            assert_eq!(
                store.get(*key).as_deref(),
                Some(payload.as_slice()),
                "prefix record {key} must survive intact"
            );
        }
        scanned_entries = store.index_entries();
        // Closing writes a fresh snapshot over the recovered state.
    }
    // Reopen through the snapshot path: the rebuilt index must be
    // byte-for-byte the index a from-scratch scan produced.
    let store = DiskStore::open(dir).unwrap();
    assert!(store.recovery().used_snapshot);
    assert_eq!(store.index_entries(), scanned_entries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_at_any_offset_recovers_the_intact_prefix(
        entries in arb_entries(),
        cut in 8u64..4096,
    ) {
        let dir = tempdir("cut");
        let records = populate(&dir, &entries);
        let log = DiskStore::log_path(&dir);
        let len = std::fs::metadata(&log).unwrap().len();
        let cut = 8 + cut % len.max(9); // never inside the 8-byte header
        if cut < len {
            OpenOptions::new()
                .write(true)
                .open(&log)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }
        let expected = intact_prefix(&records, cut.min(len));
        // A cut exactly at a record boundary leaves a valid (shorter)
        // log, so recovery may have nothing left to truncate — only the
        // prefix property itself is asserted here.
        check_recovery(&dir, &expected, false);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_flip_at_any_offset_truncates_from_the_damaged_record(
        entries in arb_entries(),
        position in 0u64..4096,
    ) {
        let dir = tempdir("flip");
        let records = populate(&dir, &entries);
        let log = DiskStore::log_path(&dir);
        let len = std::fs::metadata(&log).unwrap().len();
        // Flip one byte strictly after the file header.
        let position = 8 + position % (len - 8);
        let mut file = OpenOptions::new().read(true).write(true).open(&log).unwrap();
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(position)).unwrap();
        file.read_exact(&mut byte).unwrap();
        file.seek(SeekFrom::Start(position)).unwrap();
        file.write_all(&[byte[0] ^ 0x5A]).unwrap();
        drop(file);

        // Every record wholly before the flipped byte survives; the
        // damaged record and everything after it is truncated away.
        let expected = intact_prefix(&records, position);
        check_recovery(&dir, &expected, true);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction is the identity on live entries: for any contents and
    /// any quarantined subset, `compact()` followed by a from-scratch
    /// reopen serves exactly the live records with their exact
    /// payloads, never grows the log, and leaves a store that accepts
    /// fresh appends.
    #[test]
    fn compaction_roundtrips_live_entries(
        entries in arb_entries(),
        quarantine_mask in any::<u32>(),
    ) {
        let dir = tempdir("compact");
        let records = populate(&dir, &entries);
        let (live, dead): (Vec<_>, Vec<_>) = records
            .iter()
            .enumerate()
            .partition(|(i, _)| quarantine_mask & (1 << (i % 32)) == 0);
        {
            let store = DiskStore::open(&dir).unwrap();
            for (_, (key, _, _)) in &dead {
                // Quarantine may itself trigger a threshold compaction;
                // the explicit compact below must still be idempotent.
                assert!(store.quarantine(*key));
            }
            let before = std::fs::metadata(DiskStore::log_path(&dir)).unwrap().len();
            let report = store.compact().unwrap();
            prop_assert_eq!(report.live_records, live.len());
            prop_assert_eq!(report.dropped_corrupt, 0);
            prop_assert!(report.bytes_after <= before);
            prop_assert_eq!(store.stats().garbage_bytes, 0, "compaction clears garbage");
            for (_, (key, payload, _)) in &live {
                prop_assert_eq!(store.get(*key).as_deref(), Some(payload.as_slice()));
            }
            for (_, (key, _, _)) in &dead {
                prop_assert_eq!(store.get(*key), None, "quarantined key resurrected");
            }
        }
        // Reopen from the log alone (no snapshot): the compacted log is
        // a complete, self-describing store.
        let _ = std::fs::remove_file(DiskStore::index_path(&dir));
        let store = DiskStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), live.len());
        for (_, (key, payload, _)) in &live {
            prop_assert_eq!(store.get(*key).as_deref(), Some(payload.as_slice()));
        }
        assert!(store.put(0xF00D, b"post-compaction append").unwrap());
        prop_assert_eq!(
            store.get(0xF00D).as_deref(),
            Some(b"post-compaction append".as_slice())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_recovery_roundtrip(
        entries in arb_entries(),
        cut in 8u64..2048,
    ) {
        let dir = tempdir("append");
        let records = populate(&dir, &entries);
        let log = DiskStore::log_path(&dir);
        let len = std::fs::metadata(&log).unwrap().len();
        let cut = 8 + cut % len.max(9);
        if cut < len {
            OpenOptions::new()
                .write(true)
                .open(&log)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }
        let _ = std::fs::remove_file(DiskStore::index_path(&dir));
        {
            let store = DiskStore::open(&dir).unwrap();
            // The truncated log is a valid store again: appends land
            // cleanly on the recovered prefix.
            assert!(store.put(0xFFFF, b"fresh-after-recovery").unwrap());
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.get(0xFFFF).as_deref(),
            Some(b"fresh-after-recovery".as_slice())
        );
        for (key, payload) in intact_prefix(&records, cut.min(len)) {
            assert_eq!(store.get(key).as_deref(), Some(payload.as_slice()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
