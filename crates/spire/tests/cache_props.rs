//! Equivalence of the lock-striped compile cache with a single-lock
//! reference model: for any operation sequence the striped cache
//! produces the same per-operation outcomes and the same consistent
//! stats snapshot a plain mutex-around-a-map would, and under real
//! concurrency its invariants (requests = hits + misses, one shared
//! compilation per key, monotone consistent snapshots) hold.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use spire::cache::{CacheKey, CompileCache};
use spire::{CompileOptions, Compiled};
use tower::WordConfig;

/// The key universe: tiny programs differing only in a constant, so
/// compilation on a miss is cheap and every key is distinct.
fn source(k: usize) -> String {
    format!("fun f(x: uint) -> uint {{ let y <- x + {k}; return y; }}")
}

fn key_of(k: usize, options: &CompileOptions) -> CacheKey {
    CacheKey::new(&source(k), "f", 0, WordConfig::paper_default(), options)
}

/// One scripted cache operation over the small key universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `lookup` — must not compile, counts a hit only when present.
    Lookup(usize),
    /// `get_or_compile` — compiles on miss, counts exactly one of
    /// hit/miss.
    GetOrCompile(usize),
}

fn arb_ops() -> BoxedStrategy<Vec<Op>> {
    vec(
        (0usize..5, any::<bool>()).prop_map(|(k, lookup)| {
            if lookup {
                Op::Lookup(k)
            } else {
                Op::GetOrCompile(k)
            }
        }),
        0..32,
    )
    .boxed()
}

/// The single-lock reference: a map plus counters, mutated exactly as
/// the pre-striping cache did.
#[derive(Default)]
struct Reference {
    present: HashMap<u128, Arc<Compiled>>,
    hits: u64,
    misses: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn striped_cache_matches_single_lock_reference(ops in arb_ops()) {
        let options = CompileOptions::spire();
        let cache = CompileCache::new();
        let mut reference = Reference::default();
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let key = key_of(k, &options);
                    let striped = cache.lookup(key);
                    let modeled = reference.present.get(&key.value());
                    prop_assert_eq!(striped.is_some(), modeled.is_some());
                    if let (Some(striped), Some(modeled)) = (&striped, modeled) {
                        prop_assert!(Arc::ptr_eq(striped, modeled), "one shared compilation");
                        reference.hits += 1;
                    }
                }
                Op::GetOrCompile(k) => {
                    let key = key_of(k, &options);
                    let compiled = cache
                        .get_or_compile(&source(k), "f", 0, WordConfig::paper_default(), &options)
                        .expect("trivial program compiles");
                    match reference.present.get(&key.value()) {
                        Some(modeled) => {
                            prop_assert!(Arc::ptr_eq(&compiled, modeled));
                            reference.hits += 1;
                        }
                        None => {
                            reference.misses += 1;
                            reference.present.insert(key.value(), compiled);
                        }
                    }
                }
            }
            // After *every* op the consistent snapshot matches the
            // reference exactly — not only at the end.
            let stats = cache.stats();
            prop_assert_eq!(stats.hits, reference.hits);
            prop_assert_eq!(stats.misses, reference.misses);
            prop_assert_eq!(stats.entries, reference.present.len());
        }
    }
}

/// The observable behavior of a compilation, for cross-cache
/// comparison: compilation is deterministic, so two caches answering
/// the same request must agree on every derived quantity even when one
/// of them recompiled after an eviction.
fn fingerprint(compiled: &Compiled) -> (u64, u64, u32, u64) {
    (
        compiled.t_complexity(),
        compiled.mcx_complexity(),
        compiled.qubits(),
        compiled.approx_bytes(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A byte-budgeted cache is behaviorally equivalent to an unbounded
    /// one modulo misses: identical answers for every request, hits a
    /// subset of the unbounded cache's hits, and — the governance
    /// invariant — resident bytes never exceed the budget, checked
    /// after every single operation, not only at the end.
    #[test]
    fn budgeted_cache_is_equivalent_modulo_misses(
        keys in vec(0usize..8, 1..40),
        budget in 512u64..32_768,
    ) {
        let options = CompileOptions::spire();
        let budgeted = CompileCache::with_budget(budget);
        let unbounded = CompileCache::new();
        for k in keys {
            let from_budgeted = budgeted
                .get_or_compile(&source(k), "f", 0, WordConfig::paper_default(), &options)
                .expect("trivial program compiles");
            let from_unbounded = unbounded
                .get_or_compile(&source(k), "f", 0, WordConfig::paper_default(), &options)
                .expect("trivial program compiles");
            prop_assert_eq!(
                fingerprint(&from_budgeted),
                fingerprint(&from_unbounded),
                "eviction must change only *which* keys miss, never answers"
            );
            let stats = budgeted.stats();
            prop_assert!(stats.budget_bytes > 0, "budget must be configured");
            prop_assert!(
                stats.resident_bytes <= stats.budget_bytes,
                "resident {} exceeds budget {}",
                stats.resident_bytes,
                stats.budget_bytes
            );
            // Both caches count exactly one of hit/miss per request; the
            // budgeted one can only have traded hits for misses.
            let reference = unbounded.stats();
            prop_assert_eq!(
                stats.hits + stats.misses,
                reference.hits + reference.misses
            );
            prop_assert!(stats.hits <= reference.hits);
        }
    }
}

#[test]
fn concurrent_invariants_match_the_single_lock_semantics() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 60;
    const KEYS: usize = 6;
    let options = CompileOptions::spire();
    let cache = CompileCache::new();
    let stop = AtomicBool::new(false);

    let per_thread: Vec<Vec<(usize, Arc<Compiled>)>> = std::thread::scope(|scope| {
        // A stats reader races the workers: every snapshot it takes must
        // be internally consistent (entries never exceed the universe,
        // requests never decrease — each snapshot holds all shard locks,
        // so no torn counters).
        let reader = scope.spawn(|| {
            let mut last_requests = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let stats = cache.stats();
                let requests = stats.hits + stats.misses;
                assert!(
                    requests >= last_requests,
                    "consistent snapshots are monotone"
                );
                assert!(stats.entries <= KEYS);
                last_requests = requests;
            }
        });
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let options = &options;
                let cache = &cache;
                scope.spawn(move || {
                    let mut seen: Vec<(usize, Arc<Compiled>)> = Vec::new();
                    for i in 0..OPS_PER_THREAD {
                        let k = (t + i) % KEYS;
                        let compiled = cache
                            .get_or_compile(
                                &source(k),
                                "f",
                                0,
                                WordConfig::paper_default(),
                                options,
                            )
                            .expect("trivial program compiles");
                        seen.push((k, compiled));
                    }
                    seen
                })
            })
            .collect();
        let per_thread = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        per_thread
    });

    // Exactly one of hit/miss per operation, entries = the key universe,
    // and at least one miss per distinct key.
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * OPS_PER_THREAD) as u64,
        "every get_or_compile counts exactly one of hit/miss"
    );
    assert_eq!(stats.entries, KEYS);
    assert!(stats.misses >= KEYS as u64);

    // Whatever interleaving happened, all threads share one compilation
    // per key (first insert wins; racing losers adopt it).
    let options = CompileOptions::spire();
    let canonical: Vec<Arc<Compiled>> = (0..KEYS)
        .map(|k| cache.lookup(key_of(k, &options)).expect("cached"))
        .collect();
    for seen in &per_thread {
        for (k, arc) in seen {
            assert!(
                Arc::ptr_eq(arc, &canonical[*k]),
                "thread observed a divergent compilation for key {k}"
            );
        }
    }
}
