//! Integration tests for the content-addressed compile cache: hit/miss
//! behavior, key sensitivity to every compilation input, and agreement
//! between cached and fresh compilations. (The property-based variant
//! over random programs lives in the workspace-level `tests/`.)

use std::collections::HashSet;
use std::sync::Arc;

use spire::cache::{CacheKey, CompileCache};
use spire::{compile_source, AllocPolicy, CompileOptions, OptConfig};
use tower::WordConfig;

const LENGTH: &str = r#"
type list = (uint, ptr<list>);

fun length[n](xs: ptr<list>, acc: uint) -> uint {
    with {
        let is_empty <- xs == null;
    } do if is_empty {
        let out <- acc;
    } else with {
        let temp <- default<list>;
        *xs <-> temp;
        let next <- temp.2;
        let r <- acc + 1;
    } do {
        let out <- length[n-1](next, r);
    }
    return out;
}
"#;

#[test]
fn miss_then_hit_shares_the_compilation() {
    let cache = CompileCache::new();
    let config = WordConfig::paper_default();
    let options = CompileOptions::spire();
    assert!(cache.is_empty());

    let first = cache
        .get_or_compile(LENGTH, "length", 3, config, &options)
        .unwrap();
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

    let second = cache
        .get_or_compile(LENGTH, "length", 3, config, &options)
        .unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "a hit must return the same compilation"
    );
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    cache.clear();
    assert!(cache.is_empty());
    let _ = cache
        .get_or_compile(LENGTH, "length", 3, config, &options)
        .unwrap();
    assert_eq!(cache.stats().misses, 2, "clear() forgets compilations");
}

#[test]
fn distinct_configurations_are_distinct_entries() {
    let cache = CompileCache::new();
    let paper = WordConfig::paper_default();
    for opt in [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ] {
        cache
            .get_or_compile(LENGTH, "length", 3, paper, &CompileOptions::with_opt(opt))
            .unwrap();
    }
    assert_eq!(cache.len(), 4, "each OptConfig is its own entry");
    cache
        .get_or_compile(LENGTH, "length", 4, paper, &CompileOptions::spire())
        .unwrap();
    assert_eq!(cache.len(), 5, "depth is part of the key");
    assert_eq!(cache.stats().hits, 0);
}

/// The key must separate every input that affects compilation: source
/// text, entry, depth, both `WordConfig` widths, both `OptConfig` flags,
/// and the allocation policy.
#[test]
fn cache_key_is_sensitive_to_every_input() {
    let base_config = WordConfig {
        uint_bits: 8,
        ptr_bits: 4,
    };
    let base = CacheKey::new(LENGTH, "length", 3, base_config, &CompileOptions::spire());

    let variants = [
        (
            "source",
            CacheKey::new(
                "fun f() -> () { }",
                "length",
                3,
                base_config,
                &CompileOptions::spire(),
            ),
        ),
        (
            "entry",
            CacheKey::new(LENGTH, "other", 3, base_config, &CompileOptions::spire()),
        ),
        (
            "depth",
            CacheKey::new(LENGTH, "length", 4, base_config, &CompileOptions::spire()),
        ),
        (
            "uint_bits",
            CacheKey::new(
                LENGTH,
                "length",
                3,
                WordConfig {
                    uint_bits: 16,
                    ptr_bits: 4,
                },
                &CompileOptions::spire(),
            ),
        ),
        (
            "ptr_bits",
            CacheKey::new(
                LENGTH,
                "length",
                3,
                WordConfig {
                    uint_bits: 8,
                    ptr_bits: 5,
                },
                &CompileOptions::spire(),
            ),
        ),
        (
            "flattening",
            CacheKey::new(
                LENGTH,
                "length",
                3,
                base_config,
                &CompileOptions::with_opt(OptConfig::narrowing_only()),
            ),
        ),
        (
            "narrowing",
            CacheKey::new(
                LENGTH,
                "length",
                3,
                base_config,
                &CompileOptions::with_opt(OptConfig::flattening_only()),
            ),
        ),
        (
            "policy",
            CacheKey::new(
                LENGTH,
                "length",
                3,
                base_config,
                &CompileOptions {
                    opt: OptConfig::spire(),
                    policy: AllocPolicy::Aggressive,
                },
            ),
        ),
    ];
    let mut seen: HashSet<u128> = HashSet::from([base.value()]);
    for (field, key) in variants {
        assert_ne!(key, base, "changing {field} must change the key");
        assert!(
            seen.insert(key.value()),
            "key for {field} collides with an earlier variant"
        );
    }
}

/// A `WordConfig` change must produce a different *compilation*, not just
/// a different key: wider registers cost more gates.
#[test]
fn word_config_changes_the_cached_result() {
    let cache = CompileCache::new();
    let narrow = cache
        .get_or_compile(
            LENGTH,
            "length",
            3,
            WordConfig {
                uint_bits: 4,
                ptr_bits: 4,
            },
            &CompileOptions::baseline(),
        )
        .unwrap();
    let wide = cache
        .get_or_compile(
            LENGTH,
            "length",
            3,
            WordConfig {
                uint_bits: 16,
                ptr_bits: 4,
            },
            &CompileOptions::baseline(),
        )
        .unwrap();
    assert_eq!(cache.len(), 2);
    assert!(wide.t_complexity() > narrow.t_complexity());
}

#[test]
fn cached_equals_fresh_compilation() {
    let cache = CompileCache::new();
    let config = WordConfig::paper_default();
    for options in [CompileOptions::baseline(), CompileOptions::spire()] {
        let fresh = compile_source(LENGTH, "length", 4, config, &options).unwrap();
        let cached = cache
            .get_or_compile(LENGTH, "length", 4, config, &options)
            .unwrap();
        assert_eq!(fresh.histogram(), cached.histogram());
        assert_eq!(fresh.layout.total_qubits, cached.layout.total_qubits);
        assert_eq!(fresh.emit(), cached.emit());
    }
}

#[test]
fn concurrent_access_is_consistent() {
    let cache = CompileCache::new();
    let config = WordConfig::paper_default();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for depth in 2..=5 {
                    let compiled = cache
                        .get_or_compile(LENGTH, "length", depth, config, &CompileOptions::spire())
                        .unwrap();
                    assert!(compiled.t_complexity() > 0);
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.entries, 4, "one entry per depth");
    // Racing threads may each compile the same key before inserting, so
    // misses can exceed entries; total requests are conserved.
    assert_eq!(stats.hits + stats.misses, 16);
    assert!(stats.misses >= 4);
}
