//! Instruction selection: core IR → abstract circuit.
//!
//! This is the compiler walk that both code generation and the exact cost
//! model share. It threads the quantum-`if` control stack (each enclosing
//! `if` contributes its condition qubit to every instruction), expands
//! `with-do` blocks by the straightforward strategy `s₁; s₂; I[s₁]`, and
//! maps un-assignments to reversed instructions.

use qcirc::Qubit;
use tower::{CoreBinOp, CoreExpr, CoreStmt, CoreValue, Symbol, Type, TypeInfo, TypeTable};

use crate::abstract_circuit::{AInstr, AOp};
use crate::error::SpireError;
use crate::layout::{Layout, Reg};

/// Lower a core-IR statement to abstract instructions under a layout.
///
/// # Errors
///
/// Reports missing registers (internal error), aliased memory swaps, and
/// overlong memory cells.
pub fn select(
    stmt: &CoreStmt,
    layout: &Layout,
    types: &TypeInfo,
    table: &TypeTable,
) -> Result<Vec<AInstr>, SpireError> {
    let mut ctx = Selector {
        layout,
        types,
        table,
        controls: Vec::new(),
        out: Vec::new(),
    };
    ctx.stmt(stmt, false)?;
    Ok(ctx.out)
}

struct Selector<'a> {
    layout: &'a Layout,
    types: &'a TypeInfo,
    table: &'a TypeTable,
    controls: Vec<Qubit>,
    out: Vec<AInstr>,
}

impl Selector<'_> {
    fn push(&mut self, op: AOp, reversed: bool) {
        self.out.push(AInstr {
            op,
            controls: self.controls.clone(),
            reversed,
        });
    }

    /// Push an instruction that is pure conjugation (computed and undone
    /// within its enclosing primitive): it carries no `if`-controls.
    fn push_unconditional(&mut self, op: AOp) {
        self.out.push(AInstr {
            op,
            controls: Vec::new(),
            reversed: false,
        });
    }

    fn width_of(&self, var: &Symbol) -> Result<u32, SpireError> {
        let ty = self
            .types
            .var_types
            .get(var)
            .ok_or_else(|| SpireError::NoRegister { var: var.clone() })?;
        self.table.width(ty).map_err(SpireError::Front)
    }

    fn stmt(&mut self, stmt: &CoreStmt, reversed: bool) -> Result<(), SpireError> {
        match stmt {
            CoreStmt::Skip => Ok(()),
            CoreStmt::Seq(ss) => {
                if reversed {
                    for s in ss.iter().rev() {
                        self.stmt(s, true)?;
                    }
                } else {
                    for s in ss {
                        self.stmt(s, false)?;
                    }
                }
                Ok(())
            }
            CoreStmt::If { cond, body } => {
                let reg = self.layout.reg(cond)?;
                let qubit = reg.bit(0);
                let pushed = if self.controls.contains(&qubit) {
                    false
                } else {
                    self.controls.push(qubit);
                    true
                };
                self.stmt(body, reversed)?;
                if pushed {
                    self.controls.pop();
                }
                Ok(())
            }
            CoreStmt::With { setup, body } => {
                // Straightforward strategy: s₁; s₂; I[s₁] (or its reverse).
                if reversed {
                    self.stmt(setup, false)?;
                    self.stmt(body, true)?;
                    self.stmt(setup, true)
                } else {
                    self.stmt(setup, false)?;
                    self.stmt(body, false)?;
                    self.stmt(setup, true)
                }
            }
            CoreStmt::Assign { var, expr } => self.assign(var, expr, reversed),
            CoreStmt::Unassign { var, expr } => self.assign(var, expr, !reversed),
            CoreStmt::Hadamard(var) => {
                let reg = self.layout.reg(var)?;
                self.push(AOp::Had { target: reg.bit(0) }, reversed);
                Ok(())
            }
            CoreStmt::Swap(a, b) => {
                if a == b {
                    return Ok(()); // swapping a register with itself
                }
                let ra = self.layout.reg(a)?;
                let rb = self.layout.reg(b)?;
                if ra.width > 0 {
                    self.push(AOp::SwapReg { a: ra, b: rb }, reversed);
                }
                Ok(())
            }
            CoreStmt::MemSwap { ptr, val } => {
                if ptr == val {
                    return Err(SpireError::AliasedMemSwap { var: ptr.clone() });
                }
                let addr = self.layout.reg(ptr)?;
                let data = self.layout.reg(val)?;
                let mem = self
                    .layout
                    .memory
                    .clone()
                    .expect("layout allocates memory for programs with memswap");
                if data.width > mem.cell_width {
                    return Err(SpireError::CellTooWide {
                        requested: data.width,
                        available: mem.cell_width,
                    });
                }
                if data.width > 0 {
                    let match_bit = self.layout.scratch_qram_match();
                    self.push(
                        AOp::MemSwap {
                            addr,
                            data,
                            mem,
                            match_bit,
                        },
                        reversed,
                    );
                }
                Ok(())
            }
            CoreStmt::Alloc { var, .. } => {
                let dst = self.layout.reg(var)?;
                let mem = self
                    .layout
                    .memory
                    .clone()
                    .expect("layout allocates memory for programs with alloc");
                let match_bit = self.layout.scratch_qram_match();
                self.push(
                    AOp::StackPop {
                        dst,
                        mem,
                        match_bit,
                    },
                    reversed,
                );
                Ok(())
            }
            CoreStmt::Dealloc { var, .. } => {
                let dst = self.layout.reg(var)?;
                let mem = self
                    .layout
                    .memory
                    .clone()
                    .expect("layout allocates memory for programs with dealloc");
                let match_bit = self.layout.scratch_qram_match();
                self.push(
                    AOp::StackPop {
                        dst,
                        mem,
                        match_bit,
                    },
                    !reversed,
                );
                Ok(())
            }
        }
    }

    fn assign(&mut self, var: &Symbol, expr: &CoreExpr, reversed: bool) -> Result<(), SpireError> {
        let dst = self.layout.reg(var)?;
        let ops = self.ops_for_expr(dst, expr)?;
        if reversed {
            for (op, conjugation) in ops.into_iter().rev() {
                if conjugation {
                    self.push_unconditional(op);
                } else {
                    self.push(op, true);
                }
            }
        } else {
            for (op, conjugation) in ops {
                if conjugation {
                    self.push_unconditional(op);
                } else {
                    self.push(op, false);
                }
            }
        }
        Ok(())
    }

    /// Instructions computing `dst ^= expr`. The boolean marks conjugation
    /// instructions (operand duplication) that never carry `if`-controls
    /// and are their own inverse as a pair.
    fn ops_for_expr(&mut self, dst: Reg, expr: &CoreExpr) -> Result<Vec<(AOp, bool)>, SpireError> {
        let config = self.layout.config;
        Ok(match expr {
            CoreExpr::Value(value) => match value {
                CoreValue::Unit => Vec::new(),
                CoreValue::UInt(n) => {
                    if *n == 0 || dst.width == 0 {
                        Vec::new()
                    } else {
                        vec![(AOp::XorConst { dst, value: *n }, false)]
                    }
                }
                CoreValue::Bool(b) => {
                    if *b {
                        vec![(AOp::XorConst { dst, value: 1 }, false)]
                    } else {
                        Vec::new()
                    }
                }
                CoreValue::Null(_) | CoreValue::ZeroOf(_) => Vec::new(),
                CoreValue::PtrLit(_, addr) => {
                    if *addr == 0 {
                        Vec::new()
                    } else {
                        vec![(AOp::XorConst { dst, value: *addr }, false)]
                    }
                }
                CoreValue::Pair(x, y) => {
                    let wx = self.width_of(x)?;
                    let wy = self.width_of(y)?;
                    let mut ops = Vec::new();
                    if wx > 0 {
                        ops.push((
                            AOp::XorReg {
                                dst: dst.slice(0, wx),
                                src: self.layout.reg(x)?,
                            },
                            false,
                        ));
                    }
                    if wy > 0 {
                        ops.push((
                            AOp::XorReg {
                                dst: dst.slice(wx, wy),
                                src: self.layout.reg(y)?,
                            },
                            false,
                        ));
                    }
                    ops
                }
            },
            CoreExpr::Var(x) => {
                if dst.width == 0 {
                    Vec::new()
                } else {
                    vec![(
                        AOp::XorReg {
                            dst,
                            src: self.layout.reg(x)?,
                        },
                        false,
                    )]
                }
            }
            CoreExpr::Proj1(x) | CoreExpr::Proj2(x) => {
                let src_reg = self.layout.reg(x)?;
                let ty = self
                    .types
                    .var_types
                    .get(x)
                    .ok_or_else(|| SpireError::NoRegister { var: x.clone() })?;
                let resolved = self.table.resolve_shallow(ty).map_err(SpireError::Front)?;
                let Type::Pair(t1, t2) = resolved else {
                    unreachable!("type checker accepts projections of pairs only");
                };
                let w1 = self.table.width(t1).map_err(SpireError::Front)?;
                let w2 = self.table.width(t2).map_err(SpireError::Front)?;
                let src = if matches!(expr, CoreExpr::Proj1(_)) {
                    src_reg.slice(0, w1)
                } else {
                    src_reg.slice(w1, w2)
                };
                if src.width == 0 {
                    Vec::new()
                } else {
                    vec![(AOp::XorReg { dst, src }, false)]
                }
            }
            CoreExpr::Not(x) => vec![(
                AOp::XorNot {
                    dst,
                    src: self.layout.reg(x)?,
                },
                false,
            )],
            CoreExpr::Test(x) => vec![(
                AOp::XorTest {
                    dst,
                    src: self.layout.reg(x)?,
                },
                false,
            )],
            CoreExpr::Bin(op, a, b) => {
                let ra = self.layout.reg(a)?;
                let rb = self.layout.reg(b)?;
                match op {
                    CoreBinOp::And | CoreBinOp::Or if a == b => {
                        // x && x == x || x == x.
                        vec![(AOp::XorReg { dst, src: ra }, false)]
                    }
                    CoreBinOp::And => vec![(AOp::XorAnd { dst, a: ra, b: rb }, false)],
                    CoreBinOp::Or => vec![(AOp::XorOr { dst, a: ra, b: rb }, false)],
                    CoreBinOp::Sub if a == b => Vec::new(), // x - x == 0
                    CoreBinOp::Add | CoreBinOp::Sub | CoreBinOp::Mul => {
                        let carries = self.layout.scratch_carries();
                        let (rb, mut ops) = if a == b {
                            // Duplicate one operand through scratch so the
                            // arithmetic circuits see distinct registers.
                            let dup = self.layout.scratch_dup();
                            (dup, vec![(AOp::XorReg { dst: dup, src: ra }, true)])
                        } else {
                            (rb, Vec::new())
                        };
                        let main = match op {
                            CoreBinOp::Add => AOp::XorAdd {
                                dst,
                                a: ra,
                                b: rb,
                                carries,
                            },
                            CoreBinOp::Sub => AOp::XorSub {
                                dst,
                                a: ra,
                                b: rb,
                                carries,
                            },
                            CoreBinOp::Mul => AOp::XorMul {
                                dst,
                                a: ra,
                                b: rb,
                                product: self.layout.scratch_product(),
                                cuccaro: self.layout.scratch_cuccaro(),
                            },
                            _ => unreachable!(),
                        };
                        ops.push((main, false));
                        if a == b {
                            let dup = self.layout.scratch_dup();
                            ops.push((AOp::XorReg { dst: dup, src: ra }, true));
                        }
                        let _ = config;
                        ops
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{layout, AllocPolicy};
    use tower::{typecheck, NameGen, Symbol, TypeTable, WordConfig};

    fn compile_ir(stmt: &CoreStmt, inputs: &[(Symbol, Type)]) -> Vec<AInstr> {
        let table = TypeTable::new(WordConfig::paper_default());
        let info = typecheck(stmt, inputs, &table).unwrap();
        let l = layout(stmt, inputs, &info, &table, AllocPolicy::Conservative).unwrap();
        select(stmt, &l, &info, &table).unwrap()
    }

    #[test]
    fn if_contributes_controls() {
        let c = Symbol::new("c");
        let stmt = CoreStmt::If {
            cond: c.clone(),
            body: Box::new(CoreStmt::Assign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(3)),
            }),
        };
        let instrs = compile_ir(&stmt, &[(c, Type::Bool)]);
        assert_eq!(instrs.len(), 1);
        assert_eq!(instrs[0].controls.len(), 1);
    }

    #[test]
    fn nested_ifs_stack_controls() {
        let stmt = CoreStmt::If {
            cond: Symbol::new("a"),
            body: Box::new(CoreStmt::If {
                cond: Symbol::new("b"),
                body: Box::new(CoreStmt::Assign {
                    var: Symbol::new("x"),
                    expr: CoreExpr::Value(CoreValue::Bool(true)),
                }),
            }),
        };
        let inputs = vec![
            (Symbol::new("a"), Type::Bool),
            (Symbol::new("b"), Type::Bool),
        ];
        let instrs = compile_ir(&stmt, &inputs);
        assert_eq!(instrs[0].controls.len(), 2);
    }

    #[test]
    fn with_expands_to_setup_body_reverse() {
        let stmt = CoreStmt::With {
            setup: Box::new(CoreStmt::Assign {
                var: Symbol::new("t"),
                expr: CoreExpr::Value(CoreValue::UInt(1)),
            }),
            body: Box::new(CoreStmt::Assign {
                var: Symbol::new("out"),
                expr: CoreExpr::Var(Symbol::new("t")),
            }),
        };
        let instrs = compile_ir(&stmt, &[]);
        assert_eq!(instrs.len(), 3);
        assert!(!instrs[0].reversed);
        assert!(!instrs[1].reversed);
        assert!(instrs[2].reversed, "setup reversal");
    }

    #[test]
    fn unassign_is_reversed_assign() {
        let stmt = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(5)),
            },
            CoreStmt::Unassign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(5)),
            },
        ]);
        let instrs = compile_ir(&stmt, &[]);
        assert_eq!(instrs.len(), 2);
        assert!(!instrs[0].reversed);
        assert!(instrs[1].reversed);
        assert_eq!(instrs[0].op, instrs[1].op);
    }

    #[test]
    fn zero_assignments_emit_nothing() {
        let stmt = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(0)),
            },
            CoreStmt::Assign {
                var: Symbol::new("b"),
                expr: CoreExpr::Value(CoreValue::Bool(false)),
            },
        ]);
        let instrs = compile_ir(&stmt, &[]);
        assert!(instrs.is_empty());
    }

    #[test]
    fn same_operand_and_selects_copy() {
        let b = Symbol::new("b");
        let stmt = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Bin(CoreBinOp::And, b.clone(), b.clone()),
        };
        let instrs = compile_ir(&stmt, &[(b, Type::Bool)]);
        assert_eq!(instrs.len(), 1);
        assert!(matches!(instrs[0].op, AOp::XorReg { .. }));
    }

    #[test]
    fn same_operand_sub_is_empty() {
        let a = Symbol::new("a");
        let stmt = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Bin(CoreBinOp::Sub, a.clone(), a.clone()),
        };
        let instrs = compile_ir(&stmt, &[(a, Type::UInt)]);
        assert!(instrs.is_empty());
    }

    #[test]
    fn same_operand_add_duplicates_through_scratch() {
        let a = Symbol::new("a");
        let stmt = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Bin(CoreBinOp::Add, a.clone(), a.clone()),
        };
        let instrs = compile_ir(&stmt, &[(a, Type::UInt)]);
        assert_eq!(instrs.len(), 3);
        assert!(matches!(instrs[0].op, AOp::XorReg { .. }));
        assert!(matches!(instrs[1].op, AOp::XorAdd { .. }));
        assert!(matches!(instrs[2].op, AOp::XorReg { .. }));
        // Duplication is conjugation: never controlled.
        assert!(instrs[0].controls.is_empty());
    }

    #[test]
    fn aliased_memswap_is_rejected() {
        let rp = Symbol::new("rp");
        // type rp = ptr<rp> makes *p <-> p well-typed; selection rejects it.
        let mut table = TypeTable::new(WordConfig::paper_default());
        table
            .define(rp.clone(), Type::ptr(Type::Named(rp.clone())))
            .unwrap();
        let p = Symbol::new("p");
        let stmt = CoreStmt::MemSwap {
            ptr: p.clone(),
            val: p.clone(),
        };
        let inputs = vec![(p, Type::Named(rp))];
        let info = typecheck(&stmt, &inputs, &table).unwrap();
        let l = layout(&stmt, &inputs, &info, &table, AllocPolicy::Conservative).unwrap();
        assert!(matches!(
            select(&stmt, &l, &info, &table),
            Err(SpireError::AliasedMemSwap { .. })
        ));
        let mut names = NameGen::new();
        let _ = names.fresh("unused");
    }

    #[test]
    fn pair_assignment_copies_both_fields() {
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        let stmt = CoreStmt::Assign {
            var: Symbol::new("p"),
            expr: CoreExpr::Value(CoreValue::Pair(a.clone(), b.clone())),
        };
        let inputs = vec![(a, Type::UInt), (b, Type::Bool)];
        let instrs = compile_ir(&stmt, &inputs);
        assert_eq!(instrs.len(), 2);
    }
}
