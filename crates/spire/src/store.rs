//! Persistent content-addressed artifact store: the disk tier of the
//! compile cache.
//!
//! A serving fleet needs *warm restarts*: a process that restarts (or a
//! fresh replica pointed at shared storage) should serve the compiles
//! its predecessor already paid for, not recompile the world. The
//! [`DiskStore`] provides that tier as the simplest structure that is
//! honest about crashes: an **append-only record log** plus a
//! **rebuildable index**.
//!
//! * The log (`cas.log`) is a header followed by self-describing
//!   records: `magic ‖ key ‖ length ‖ payload ‖ checksum`, where the
//!   checksum is [`Fnv1a128`] over the key, length, and payload. Records
//!   are only ever appended; a key is written at most once (content
//!   addressing makes overwrites meaningless).
//! * The index (key → offset) lives in memory and is *derived state*:
//!   it can always be rebuilt by scanning the log. A snapshot
//!   (`cas.idx`, itself checksummed) is written on clean shutdown to
//!   skip the scan; records appended after the snapshot are recovered by
//!   scanning the log tail, and a missing/invalid/stale snapshot falls
//!   back to a full scan.
//!
//! Recovery is **corruption-tolerant by truncation**: opening a store
//! scans forward record by record and truncates the log at the first
//! record that is short, misframed, or fails its checksum — everything
//! before the corruption survives, everything after it (which an
//! append-only writer can only have produced *later*) is discarded. A
//! record is re-verified against its checksum on every [`DiskStore::get`],
//! so even an index pointing into garbage (e.g. a stale snapshot over a
//! rewritten log) can never cause a corrupt artifact to be served: the
//! record fails verification, the entry is dropped, and the caller falls
//! back to compiling.
//!
//! The store maps `u128` content addresses to opaque byte payloads; the
//! serving layer defines what a payload means (it stores serialized
//! compile artifacts keyed by [`CacheKey`](crate::CacheKey)).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use qcirc::hash::Fnv1a128;

/// Log file header: identifies the file and its format version.
const LOG_MAGIC: &[u8; 8] = b"SPIRECA1";
/// Per-record framing magic.
const RECORD_MAGIC: u32 = 0x5350_4331; // "SPC1"
/// Index snapshot header.
const INDEX_MAGIC: &[u8; 8] = b"SPIREIX1";
/// Largest accepted payload: a corrupt length field must not drive a
/// multi-gigabyte allocation during recovery.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024 * 1024;

/// Fixed bytes of one record around the payload:
/// magic(4) + key(16) + len(4) before, checksum(16) after.
const RECORD_OVERHEAD: u64 = 4 + 16 + 4 + 16;

/// Counters observed on a [`DiskStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// `get` calls answered from disk.
    pub hits: u64,
    /// `get` calls for keys not present.
    pub misses: u64,
    /// Records appended by `put`.
    pub writes: u64,
    /// Indexed records that failed verification at read time and were
    /// dropped (never served).
    pub corrupt_dropped: u64,
    /// Records currently indexed.
    pub entries: usize,
}

/// What [`DiskStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records recovered into the index.
    pub records: usize,
    /// Bytes of log discarded by truncation at the first bad record.
    pub truncated_bytes: u64,
    /// Whether the index snapshot was usable (false = full scan).
    pub used_snapshot: bool,
}

/// Location of one record's payload inside the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Offset of the record's framing magic.
    offset: u64,
    /// Payload length.
    len: u32,
}

#[derive(Debug)]
struct StoreInner {
    log: File,
    /// Length of the valid log prefix (everything before is verified or
    /// was appended by this process).
    log_len: u64,
    index: HashMap<u128, Slot>,
    hits: u64,
    misses: u64,
    writes: u64,
    corrupt_dropped: u64,
}

/// A persistent, append-only, content-addressed byte store.
///
/// Thread-safe: all operations take an internal lock (the disk tier sits
/// *behind* the in-memory tiers, so this lock is off the steady-state
/// hot path).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    recovery: RecoveryReport,
}

impl DiskStore {
    /// Path of the record log inside `dir`.
    pub fn log_path(dir: &Path) -> PathBuf {
        dir.join("cas.log")
    }

    /// Path of the index snapshot inside `dir`.
    pub fn index_path(dir: &Path) -> PathBuf {
        dir.join("cas.idx")
    }

    /// Open (creating if needed) the store in `dir`, recovering the
    /// index and truncating the log at the first corrupt record.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures. Corruption
    /// is *not* an error: it is truncated away and reported in
    /// [`DiskStore::recovery`].
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(Self::log_path(dir))?;
        let file_len = log.seek(SeekFrom::End(0))?;
        if file_len < LOG_MAGIC.len() as u64 {
            // Empty or shorter than a header: (re)initialize.
            log.set_len(0)?;
            log.seek(SeekFrom::Start(0))?;
            log.write_all(LOG_MAGIC)?;
        } else {
            let mut header = [0u8; 8];
            log.seek(SeekFrom::Start(0))?;
            log.read_exact(&mut header)?;
            if &header != LOG_MAGIC {
                // A foreign file: refuse rather than destroy it.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} is not a spire artifact log",
                        Self::log_path(dir).display()
                    ),
                ));
            }
        }

        // Try the snapshot, then scan whatever tail it does not cover.
        let (mut index, mut scan_from, used_snapshot) =
            match load_index_snapshot(&Self::index_path(dir), file_len.max(8)) {
                Some((entries, covered)) => (entries, covered, true),
                None => (HashMap::new(), LOG_MAGIC.len() as u64, false),
            };
        let (good_len, tail_records) = scan_log(&mut log, &mut index, &mut scan_from)?;
        let truncated = file_len.saturating_sub(good_len);
        if truncated > 0 {
            log.set_len(good_len)?;
        }
        let records = index.len();
        let _ = tail_records;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            inner: Mutex::new(StoreInner {
                log,
                log_len: good_len,
                index,
                hits: 0,
                misses: 0,
                writes: 0,
                corrupt_dropped: 0,
            }),
            recovery: RecoveryReport {
                records,
                truncated_bytes: truncated,
                used_snapshot,
            },
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Fetch the payload stored under `key`, verifying its checksum.
    ///
    /// A record that fails verification is dropped from the index and
    /// reported as a miss — a corrupt artifact is never returned.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().expect("disk store poisoned");
        let Some(slot) = inner.index.get(&key).copied() else {
            inner.misses += 1;
            return None;
        };
        match read_record(&mut inner.log, slot) {
            Some((stored_key, payload)) if stored_key == key => {
                inner.hits += 1;
                Some(payload)
            }
            _ => {
                inner.index.remove(&key);
                inner.corrupt_dropped += 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is indexed (without reading or verifying the
    /// payload, and without touching the hit/miss counters).
    pub fn contains(&self, key: u128) -> bool {
        self.inner
            .lock()
            .expect("disk store poisoned")
            .index
            .contains_key(&key)
    }

    /// Append `payload` under `key`. Returns `false` (without writing)
    /// when the key is already stored — content addressing makes the
    /// existing record equally valid.
    ///
    /// # Errors
    ///
    /// Propagates write failures; on failure the log is truncated back
    /// to its previous length so a half-written record never becomes a
    /// permanent corruption.
    pub fn put(&self, key: u128, payload: &[u8]) -> io::Result<bool> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "payload exceeds MAX_PAYLOAD_BYTES",
            ));
        }
        let mut inner = self.inner.lock().expect("disk store poisoned");
        if inner.index.contains_key(&key) {
            return Ok(false);
        }
        let offset = inner.log_len;
        let record = encode_record(key, payload);
        inner.log.seek(SeekFrom::Start(offset))?;
        if let Err(e) = inner.log.write_all(&record) {
            // Roll back the partial append; the next open would truncate
            // it anyway, but an in-process reader should not see it.
            let _ = inner.log.set_len(offset);
            return Err(e);
        }
        inner.log_len = offset + record.len() as u64;
        inner.index.insert(
            key,
            Slot {
                offset,
                len: payload.len() as u32,
            },
        );
        inner.writes += 1;
        Ok(true)
    }

    /// Write the index snapshot (`cas.idx`) so the next open can skip
    /// the full log scan. Called automatically on drop; safe to call at
    /// any time.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures (the store itself is
    /// unaffected; the log remains the source of truth).
    pub fn persist_index(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("disk store poisoned");
        write_index_snapshot(&Self::index_path(&self.dir), inner.log_len, &inner.index)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("disk store poisoned").index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        let inner = self.inner.lock().expect("disk store poisoned");
        DiskStats {
            hits: inner.hits,
            misses: inner.misses,
            writes: inner.writes,
            corrupt_dropped: inner.corrupt_dropped,
            entries: inner.index.len(),
        }
    }

    /// The live index as sorted `(key, offset, payload_len)` triples —
    /// the observable state the crash-recovery tests compare against a
    /// from-scratch scan.
    pub fn index_entries(&self) -> Vec<(u128, u64, u32)> {
        let inner = self.inner.lock().expect("disk store poisoned");
        let mut entries: Vec<_> = inner
            .index
            .iter()
            .map(|(&k, &slot)| (k, slot.offset, slot.len))
            .collect();
        entries.sort_unstable();
        entries
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        let _ = self.persist_index();
    }
}

/// Checksum of one record's integrity-covered bytes.
fn record_checksum(key: u128, payload: &[u8]) -> u128 {
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(&key.to_le_bytes());
    hasher.write_len_prefixed(payload);
    hasher.finish()
}

fn encode_record(key: u128, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
    record.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(payload);
    record.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
    record
}

/// Read and verify the record at `slot`. Returns `(key, payload)` only
/// when framing and checksum are intact.
fn read_record(log: &mut File, slot: Slot) -> Option<(u128, Vec<u8>)> {
    let total = RECORD_OVERHEAD as usize + slot.len as usize;
    let mut buf = vec![0u8; total];
    log.seek(SeekFrom::Start(slot.offset)).ok()?;
    log.read_exact(&mut buf).ok()?;
    decode_record(&buf).map(|(key, payload, _)| (key, payload.to_vec()))
}

/// Decode one record from the front of `buf`: `(key, payload, record
/// bytes consumed)`, or `None` if the bytes are not a complete, intact
/// record.
fn decode_record(buf: &[u8]) -> Option<(u128, &[u8], usize)> {
    let rest = buf;
    if rest.len() < RECORD_OVERHEAD as usize {
        return None;
    }
    let magic = u32::from_le_bytes(rest[0..4].try_into().ok()?);
    if magic != RECORD_MAGIC {
        return None;
    }
    let key = u128::from_le_bytes(rest[4..20].try_into().ok()?);
    let len = u32::from_le_bytes(rest[20..24].try_into().ok()?) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return None;
    }
    let total = RECORD_OVERHEAD as usize + len;
    if rest.len() < total {
        return None;
    }
    let payload = &rest[24..24 + len];
    let checksum = u128::from_le_bytes(rest[24 + len..total].try_into().ok()?);
    if checksum != record_checksum(key, payload) {
        return None;
    }
    Some((key, payload, total))
}

/// Scan the log from `*scan_from`, adding every intact record to
/// `index`, stopping at the first bad one. Returns the length of the
/// valid prefix.
fn scan_log(
    log: &mut File,
    index: &mut HashMap<u128, Slot>,
    scan_from: &mut u64,
) -> io::Result<(u64, usize)> {
    let file_len = log.seek(SeekFrom::End(0))?;
    let mut offset = *scan_from;
    if offset > file_len {
        // Snapshot claimed more log than exists (e.g. the log was
        // truncated behind it): distrust it entirely and rescan.
        index.clear();
        offset = LOG_MAGIC.len() as u64;
    }
    log.seek(SeekFrom::Start(offset))?;
    let mut tail = Vec::new();
    log.take(file_len - offset).read_to_end(&mut tail)?;
    let mut consumed = 0usize;
    let mut records = 0usize;
    while let Some((key, payload, record_len)) = decode_record(&tail[consumed..]) {
        index.insert(
            key,
            Slot {
                offset: offset + consumed as u64,
                len: payload.len() as u32,
            },
        );
        consumed += record_len;
        records += 1;
    }
    Ok((offset + consumed as u64, records))
}

/// Serialize the index snapshot: header, covered log length, entry
/// count, entries, trailing checksum over everything before it.
fn write_index_snapshot(
    path: &Path,
    covered_len: u64,
    index: &HashMap<u128, Slot>,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 + 16 + index.len() * 28 + 16);
    buf.extend_from_slice(INDEX_MAGIC);
    buf.extend_from_slice(&covered_len.to_le_bytes());
    buf.extend_from_slice(&(index.len() as u64).to_le_bytes());
    let mut entries: Vec<_> = index.iter().collect();
    entries.sort_unstable_by_key(|(_, slot)| slot.offset);
    for (&key, slot) in entries {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&slot.offset.to_le_bytes());
        buf.extend_from_slice(&slot.len.to_le_bytes());
    }
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(&buf);
    buf.extend_from_slice(&hasher.finish().to_le_bytes());
    // Write-then-rename so a crash mid-snapshot leaves the old (or no)
    // snapshot, never a torn one that happens to checksum.
    let tmp = path.with_extension("idx.tmp");
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

/// Load and validate an index snapshot. Returns the entries and the log
/// length it covers, or `None` when missing/invalid/over-claiming.
fn load_index_snapshot(path: &Path, log_len: u64) -> Option<(HashMap<u128, Slot>, u64)> {
    let buf = std::fs::read(path).ok()?;
    if buf.len() < 8 + 8 + 8 + 16 || &buf[0..8] != INDEX_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(body);
    let stored = u128::from_le_bytes(buf[buf.len() - 16..].try_into().ok()?);
    if hasher.finish() != stored {
        return None;
    }
    let covered_len = u64::from_le_bytes(body[8..16].try_into().ok()?);
    if covered_len > log_len {
        return None; // stale snapshot over a shorter log
    }
    let count = u64::from_le_bytes(body[16..24].try_into().ok()?) as usize;
    let entries_bytes = &body[24..];
    if entries_bytes.len() != count * 28 {
        return None;
    }
    let mut index = HashMap::with_capacity(count);
    for chunk in entries_bytes.chunks_exact(28) {
        let key = u128::from_le_bytes(chunk[0..16].try_into().ok()?);
        let offset = u64::from_le_bytes(chunk[16..24].try_into().ok()?);
        let len = u32::from_le_bytes(chunk[24..28].try_into().ok()?);
        if offset + RECORD_OVERHEAD + u64::from(len) > covered_len {
            return None; // entry points past the covered prefix
        }
        index.insert(key, Slot { offset, len });
    }
    Some((index, covered_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "spire-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tempdir("roundtrip");
        {
            let store = DiskStore::open(&dir).unwrap();
            assert!(store.put(1, b"one").unwrap());
            assert!(store.put(2, b"two").unwrap());
            assert!(!store.put(1, b"one-again").unwrap(), "no overwrite");
            assert_eq!(store.get(1).as_deref(), Some(b"one".as_slice()));
        }
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.recovery().used_snapshot, "clean close wrote cas.idx");
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(store.get(1).as_deref(), Some(b"one".as_slice()));
        assert_eq!(store.get(2).as_deref(), Some(b"two".as_slice()));
        assert_eq!(store.get(3), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_recovers_prefix() {
        let dir = tempdir("truncate");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(10, &[0xAA; 100]).unwrap();
            store.put(11, &[0xBB; 100]).unwrap();
        }
        // Chop into the middle of the second record, and remove the
        // snapshot so recovery exercises the scan path.
        let log = DiskStore::log_path(&dir);
        let len = std::fs::metadata(&log).unwrap().len();
        let file = OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(len - 30).unwrap();
        drop(file);
        std::fs::remove_file(DiskStore::index_path(&dir)).unwrap();

        let store = DiskStore::open(&dir).unwrap();
        assert!(!store.recovery().used_snapshot);
        assert!(store.recovery().truncated_bytes > 0);
        assert_eq!(store.get(10).as_deref(), Some([0xAA; 100].as_slice()));
        assert_eq!(store.get(11), None, "torn record is gone");
        // The log was truncated back to the good prefix: a new put works
        // and survives another reopen.
        store.put(12, b"after-recovery").unwrap();
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.get(12).as_deref(), Some(b"after-recovery".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_over_shorter_log_is_distrusted() {
        let dir = tempdir("stale-idx");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(7, b"seven").unwrap();
            store.put(8, b"eight").unwrap();
        }
        // Truncate the log to before the snapshot's covered length; the
        // snapshot now over-claims and must be rejected wholesale.
        let log = DiskStore::log_path(&dir);
        let file = OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(8).unwrap();
        drop(file);
        let store = DiskStore::open(&dir).unwrap();
        assert!(!store.recovery().used_snapshot);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused() {
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(DiskStore::log_path(&dir), b"definitely not a log").unwrap();
        assert!(DiskStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
