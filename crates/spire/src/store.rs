//! Persistent content-addressed artifact store: the disk tier of the
//! compile cache.
//!
//! A serving fleet needs *warm restarts*: a process that restarts (or a
//! fresh replica pointed at shared storage) should serve the compiles
//! its predecessor already paid for, not recompile the world. The
//! [`DiskStore`] provides that tier as the simplest structure that is
//! honest about crashes: an **append-only record log** plus a
//! **rebuildable index**.
//!
//! * The log (`cas.log`) is a header followed by self-describing
//!   records: `magic ‖ key ‖ length ‖ payload ‖ checksum`, where the
//!   checksum is [`Fnv1a128`] over the key, length, and payload. Records
//!   are only ever appended; a key is written at most once (content
//!   addressing makes overwrites meaningless).
//! * The index (key → offset) lives in memory and is *derived state*:
//!   it can always be rebuilt by scanning the log. A snapshot
//!   (`cas.idx`, itself checksummed) is written on clean shutdown to
//!   skip the scan; records appended after the snapshot are recovered by
//!   scanning the log tail, and a missing/invalid/stale snapshot falls
//!   back to a full scan.
//!
//! Recovery is **corruption-tolerant by truncation**: opening a store
//! scans forward record by record and truncates the log at the first
//! record that is short, misframed, or fails its checksum — everything
//! before the corruption survives, everything after it (which an
//! append-only writer can only have produced *later*) is discarded. A
//! record is re-verified against its checksum on every [`DiskStore::get`],
//! so even an index pointing into garbage (e.g. a stale snapshot over a
//! rewritten log) can never cause a corrupt artifact to be served: the
//! record fails verification, the entry is **quarantined** (dropped from
//! the index and counted as garbage), and the caller falls back to
//! compiling.
//!
//! Quarantined records are dead weight in the log — worse, a corrupt
//! record in the middle of the log would cost every record *after* it
//! on the next truncating reopen. **Compaction**
//! ([`DiskStore::compact`]) fixes both: it rewrites the live records to
//! a fresh log (`cas.log.new`), syncs it, and atomically renames it
//! over `cas.log`. The rename is the commit point, so recovery accepts
//! either generation: a crash before it leaves the old log (plus a
//! `cas.log.new` leftover that the next open deletes), a crash after it
//! leaves the new log. Compaction runs automatically when the garbage
//! ratio crosses [`GARBAGE_COMPACT_RATIO`], or on demand via
//! `spire serve --compact-on-start`.
//!
//! All log I/O goes through the injectable [`Io`] seam
//! ([`crate::faults`]): [`DiskStore::open_with`] accepts a
//! [`FaultSchedule`] so tests (and the chaos CI job) can inject
//! EIO/ENOSPC/torn writes and simulate a kill at every write boundary.
//!
//! The store maps `u128` content addresses to opaque byte payloads; the
//! serving layer defines what a payload means (it stores serialized
//! compile artifacts keyed by [`CacheKey`](crate::CacheKey)).

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use qcirc::hash::Fnv1a128;

use crate::faults::{FaultSchedule, FaultyIo, Io, RealIo};

/// Log file header: identifies the file and its format version.
const LOG_MAGIC: &[u8; 8] = b"SPIRECA1";
/// Per-record framing magic.
const RECORD_MAGIC: u32 = 0x5350_4331; // "SPC1"
/// Index snapshot header.
const INDEX_MAGIC: &[u8; 8] = b"SPIREIX1";
/// Largest accepted payload: a corrupt length field must not drive a
/// multi-gigabyte allocation during recovery.
pub const MAX_PAYLOAD_BYTES: usize = 64 * 1024 * 1024;

/// Fixed bytes of one record around the payload:
/// magic(4) + key(16) + len(4) before, checksum(16) after.
const RECORD_OVERHEAD: u64 = 4 + 16 + 4 + 16;

/// Quarantined-garbage fraction of the log that triggers an automatic
/// compaction (numerator over [`GARBAGE_COMPACT_DEN`]).
pub const GARBAGE_COMPACT_RATIO: u64 = 1;
/// Denominator of the automatic-compaction garbage threshold.
pub const GARBAGE_COMPACT_DEN: u64 = 4;

/// Counters observed on a [`DiskStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// `get` calls answered from disk.
    pub hits: u64,
    /// `get` calls for keys not present.
    pub misses: u64,
    /// Records appended by `put`.
    pub writes: u64,
    /// Indexed records that failed verification at read time and were
    /// quarantined (never served).
    pub corrupt_dropped: u64,
    /// Records currently indexed.
    pub entries: usize,
    /// I/O errors surfaced by the disk tier (distinct from corruption:
    /// the bytes may be fine, the device refused).
    pub io_errors: u64,
    /// Bytes of quarantined records still occupying the log.
    pub garbage_bytes: u64,
    /// Current log length in bytes.
    pub log_bytes: u64,
    /// Compactions completed over this store's lifetime.
    pub compactions: u64,
}

/// What [`DiskStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records recovered into the index.
    pub records: usize,
    /// Bytes of log discarded by truncation at the first bad record.
    pub truncated_bytes: u64,
    /// Whether the index snapshot was usable (false = full scan).
    pub used_snapshot: bool,
    /// Whether an uncommitted compaction temp (`cas.log.new`) from a
    /// crashed compaction was found and removed.
    pub removed_compaction_temp: bool,
}

/// What one [`DiskStore::compact`] run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records carried into the new log generation.
    pub live_records: usize,
    /// Records found corrupt during the rewrite and dropped.
    pub dropped_corrupt: usize,
    /// Log length before compaction.
    pub bytes_before: u64,
    /// Log length after compaction.
    pub bytes_after: u64,
}

/// Location of one record's payload inside the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Offset of the record's framing magic.
    offset: u64,
    /// Payload length.
    len: u32,
}

#[derive(Debug)]
struct StoreInner {
    log: Box<dyn Io>,
    /// Length of the valid log prefix (everything before is verified or
    /// was appended by this process).
    log_len: u64,
    index: HashMap<u128, Slot>,
    hits: u64,
    misses: u64,
    writes: u64,
    corrupt_dropped: u64,
    io_errors: u64,
    /// Bytes of quarantined records: dead weight compaction reclaims.
    garbage_bytes: u64,
    compactions: u64,
}

/// A persistent, append-only, content-addressed byte store.
///
/// Thread-safe: all operations take an internal lock (the disk tier sits
/// *behind* the in-memory tiers, so this lock is off the steady-state
/// hot path).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    recovery: RecoveryReport,
    faults: Arc<FaultSchedule>,
}

impl DiskStore {
    /// Path of the record log inside `dir`.
    pub fn log_path(dir: &Path) -> PathBuf {
        dir.join("cas.log")
    }

    /// Path of the index snapshot inside `dir`.
    pub fn index_path(dir: &Path) -> PathBuf {
        dir.join("cas.idx")
    }

    /// Path of the in-progress compaction log inside `dir`. Only the
    /// atomic rename onto [`DiskStore::log_path`] commits it; a leftover
    /// file here is an uncommitted generation and is deleted at open.
    pub fn compaction_path(dir: &Path) -> PathBuf {
        dir.join("cas.log.new")
    }

    /// Open (creating if needed) the store in `dir` with no fault
    /// injection. See [`DiskStore::open_with`].
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures. Corruption
    /// is *not* an error: it is truncated away and reported in
    /// [`DiskStore::recovery`].
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        Self::open_with(dir, FaultSchedule::none())
    }

    /// Open the store in `dir`, routing all subsequent log and snapshot
    /// I/O through `faults`. Recovery itself (the open-time scan) runs
    /// fault-free: the schedule governs the *running* store, which is
    /// what crash-point simulation needs — a process that died mid-write
    /// is reopened by a fresh, healthy process.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures; corruption
    /// is truncated away, not reported as an error.
    pub fn open_with(dir: &Path, faults: Arc<FaultSchedule>) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        // An uncommitted compaction generation is garbage from a crashed
        // compactor: the rename never happened, `cas.log` is
        // authoritative. Remove it so it can never be confused for data.
        let removed_compaction_temp = std::fs::remove_file(Self::compaction_path(dir)).is_ok();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(Self::log_path(dir))?;
        let mut log = RealIo::new(file);
        let file_len = log.len()?;
        if file_len < LOG_MAGIC.len() as u64 {
            // Empty or shorter than a header: (re)initialize.
            log.set_len(0)?;
            log.write_all_at(0, LOG_MAGIC)?;
        } else {
            let mut header = [0u8; 8];
            log.read_exact_at(0, &mut header)?;
            if &header != LOG_MAGIC {
                // A foreign file: refuse rather than destroy it.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} is not a spire artifact log",
                        Self::log_path(dir).display()
                    ),
                ));
            }
        }

        // Try the snapshot, then scan whatever tail it does not cover.
        let (mut index, mut scan_from, used_snapshot) =
            match load_index_snapshot(&Self::index_path(dir), file_len.max(8)) {
                Some((entries, covered)) => (entries, covered, true),
                None => (HashMap::new(), LOG_MAGIC.len() as u64, false),
            };
        let good_len = scan_log(&mut log, &mut index, &mut scan_from)?;
        let truncated = file_len.saturating_sub(good_len);
        if truncated > 0 {
            log.set_len(good_len)?;
        }
        let records = index.len();
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            inner: Mutex::new(StoreInner {
                log: Box::new(FaultyIo::new(log, Arc::clone(&faults))),
                log_len: good_len,
                index,
                hits: 0,
                misses: 0,
                writes: 0,
                corrupt_dropped: 0,
                io_errors: 0,
                garbage_bytes: 0,
                compactions: 0,
            }),
            recovery: RecoveryReport {
                records,
                truncated_bytes: truncated,
                used_snapshot,
                removed_compaction_temp,
            },
            faults,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The fault schedule governing this store's I/O (the production
    /// schedule never injects).
    pub fn faults(&self) -> &Arc<FaultSchedule> {
        &self.faults
    }

    /// Fetch the payload stored under `key`, verifying its checksum,
    /// and distinguishing *device failure* from *absence*.
    ///
    /// A record that fails verification is quarantined — dropped from
    /// the index, counted in [`DiskStats::corrupt_dropped`] and
    /// [`DiskStats::garbage_bytes`] — and reported as `Ok(None)`: a
    /// corrupt artifact is never returned, and the same key will not be
    /// re-read and re-fail on every subsequent request. An I/O error is
    /// returned as `Err` *without* quarantining (the bytes may be fine;
    /// the device refused) so the serving layer's circuit breaker can
    /// count it.
    ///
    /// # Errors
    ///
    /// Propagates read failures from the device (or the injected fault
    /// schedule).
    pub fn try_get(&self, key: u128) -> io::Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("disk store poisoned");
        let Some(slot) = inner.index.get(&key).copied() else {
            inner.misses += 1;
            return Ok(None);
        };
        match read_record(inner.log.as_mut(), slot) {
            Ok(Some((stored_key, payload))) if stored_key == key => {
                inner.hits += 1;
                Ok(Some(payload))
            }
            Ok(_) => {
                quarantine_locked(&mut inner, key, slot);
                inner.misses += 1;
                maybe_compact_locked(self, &mut inner);
                Ok(None)
            }
            Err(e) => {
                inner.io_errors += 1;
                Err(e)
            }
        }
    }

    /// Fetch the payload stored under `key`. Device failures collapse
    /// into `None`; use [`DiskStore::try_get`] to observe them.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        self.try_get(key).unwrap_or(None)
    }

    /// Drop `key` from the index and account its record as garbage.
    ///
    /// For callers that discover a payload is unusable *after* it
    /// passed the checksum (e.g. it no longer deserializes): without
    /// this, every request would re-read and re-fail the same record.
    /// Returns whether the key was present.
    pub fn quarantine(&self, key: u128) -> bool {
        let mut inner = self.inner.lock().expect("disk store poisoned");
        let Some(slot) = inner.index.get(&key).copied() else {
            return false;
        };
        quarantine_locked(&mut inner, key, slot);
        maybe_compact_locked(self, &mut inner);
        true
    }

    /// Whether `key` is indexed (without reading or verifying the
    /// payload, and without touching the hit/miss counters).
    pub fn contains(&self, key: u128) -> bool {
        self.inner
            .lock()
            .expect("disk store poisoned")
            .index
            .contains_key(&key)
    }

    /// Append `payload` under `key`. Returns `false` (without writing)
    /// when the key is already stored — content addressing makes the
    /// existing record equally valid.
    ///
    /// # Errors
    ///
    /// Propagates write failures; on failure the log is truncated back
    /// to its previous length so a half-written record never becomes a
    /// permanent corruption (when even the truncation fails — a crash —
    /// the torn tail is removed by recovery at the next open).
    pub fn put(&self, key: u128, payload: &[u8]) -> io::Result<bool> {
        if payload.len() > MAX_PAYLOAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "payload exceeds MAX_PAYLOAD_BYTES",
            ));
        }
        let mut inner = self.inner.lock().expect("disk store poisoned");
        if inner.index.contains_key(&key) {
            return Ok(false);
        }
        let offset = inner.log_len;
        let record = encode_record(key, payload);
        if let Err(e) = inner.log.write_all_at(offset, &record) {
            // Roll back the partial append; the next open would truncate
            // it anyway, but an in-process reader should not see it.
            let _ = inner.log.set_len(offset);
            inner.io_errors += 1;
            return Err(e);
        }
        inner.log_len = offset + record.len() as u64;
        inner.index.insert(
            key,
            Slot {
                offset,
                len: payload.len() as u32,
            },
        );
        inner.writes += 1;
        Ok(true)
    }

    /// Rewrite the live records to a fresh log generation, dropping
    /// quarantined garbage and any record that fails verification
    /// during the rewrite.
    ///
    /// Crash-safe: the new generation is built in `cas.log.new`,
    /// synced, and atomically renamed over `cas.log` — the rename is
    /// the commit point, so a crash at any step leaves a recoverable
    /// store (the old generation before the rename, the new one after;
    /// an uncommitted temp is deleted at the next open).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure the old generation is
    /// untouched and remains the store's contents.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut inner = self.inner.lock().expect("disk store poisoned");
        compact_locked(self, &mut inner)
    }

    /// Write the index snapshot (`cas.idx`) so the next open can skip
    /// the full log scan. Called automatically on drop; safe to call at
    /// any time.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures (the store itself is
    /// unaffected; the log remains the source of truth).
    pub fn persist_index(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("disk store poisoned");
        persist_index_with(self, inner.log_len, &inner.index)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("disk store poisoned").index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskStats {
        let inner = self.inner.lock().expect("disk store poisoned");
        DiskStats {
            hits: inner.hits,
            misses: inner.misses,
            writes: inner.writes,
            corrupt_dropped: inner.corrupt_dropped,
            entries: inner.index.len(),
            io_errors: inner.io_errors,
            garbage_bytes: inner.garbage_bytes,
            log_bytes: inner.log_len,
            compactions: inner.compactions,
        }
    }

    /// The live index as sorted `(key, offset, payload_len)` triples —
    /// the observable state the crash-recovery tests compare against a
    /// from-scratch scan.
    pub fn index_entries(&self) -> Vec<(u128, u64, u32)> {
        let inner = self.inner.lock().expect("disk store poisoned");
        let mut entries: Vec<_> = inner
            .index
            .iter()
            .map(|(&k, &slot)| (k, slot.offset, slot.len))
            .collect();
        entries.sort_unstable();
        entries
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        let _ = self.persist_index();
    }
}

/// Drop one slot from the index and account its bytes as garbage.
fn quarantine_locked(inner: &mut StoreInner, key: u128, slot: Slot) {
    inner.index.remove(&key);
    inner.corrupt_dropped += 1;
    inner.garbage_bytes += RECORD_OVERHEAD + u64::from(slot.len);
}

/// Compact (best-effort) once quarantined garbage crosses the
/// threshold fraction of the log body.
fn maybe_compact_locked(store: &DiskStore, inner: &mut StoreInner) {
    let body = inner.log_len.saturating_sub(LOG_MAGIC.len() as u64);
    if inner.garbage_bytes > 0
        && inner.garbage_bytes * GARBAGE_COMPACT_DEN >= body * GARBAGE_COMPACT_RATIO
    {
        // Failure leaves the old generation intact; the garbage stays
        // accounted and the next quarantine retries.
        let _ = compact_locked(store, inner);
    }
}

/// The compaction protocol, under the store lock. See
/// [`DiskStore::compact`].
fn compact_locked(store: &DiskStore, inner: &mut StoreInner) -> io::Result<CompactionReport> {
    let tmp_path = DiskStore::compaction_path(&store.dir);
    let bytes_before = inner.log_len;
    let result = (|| -> io::Result<(HashMap<u128, Slot>, u64, usize)> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut fresh: Box<dyn Io> =
            Box::new(FaultyIo::new(RealIo::new(file), Arc::clone(&store.faults)));
        fresh.write_all_at(0, LOG_MAGIC)?;
        let mut new_len = LOG_MAGIC.len() as u64;
        let mut new_index = HashMap::with_capacity(inner.index.len());
        let mut dropped = 0usize;
        let mut live: Vec<(u128, Slot)> = inner.index.iter().map(|(&k, &s)| (k, s)).collect();
        live.sort_unstable_by_key(|(_, slot)| slot.offset);
        for (key, slot) in live {
            match read_record(inner.log.as_mut(), slot)? {
                Some((stored_key, payload)) if stored_key == key => {
                    let record = encode_record(key, &payload);
                    fresh.write_all_at(new_len, &record)?;
                    new_index.insert(
                        key,
                        Slot {
                            offset: new_len,
                            len: payload.len() as u32,
                        },
                    );
                    new_len += record.len() as u64;
                }
                _ => {
                    // Corrupt in the old generation: compaction is where
                    // it is excised for good.
                    dropped += 1;
                }
            }
        }
        // Commit point: durable new generation, then the atomic rename.
        fresh.sync()?;
        store.faults.admit_control()?;
        std::fs::rename(&tmp_path, DiskStore::log_path(&store.dir))?;
        // Make the rename itself durable (best-effort: directory
        // fsync is not portable everywhere).
        if let Ok(d) = std::fs::File::open(&store.dir) {
            let _ = d.sync_all();
        }
        Ok((new_index, new_len, dropped))
    })();
    match result {
        Ok((new_index, new_len, dropped)) => {
            // Swap the handle to the new generation's inode.
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(DiskStore::log_path(&store.dir))?;
            let live_records = new_index.len();
            inner.log = Box::new(FaultyIo::new(RealIo::new(file), Arc::clone(&store.faults)));
            inner.log_len = new_len;
            inner.index = new_index;
            inner.corrupt_dropped += dropped as u64;
            inner.garbage_bytes = 0;
            inner.compactions += 1;
            // A stale snapshot over the (shorter) new log would be
            // rejected anyway; refresh it best-effort.
            let _ = persist_index_with(store, inner.log_len, &inner.index);
            Ok(CompactionReport {
                live_records,
                dropped_corrupt: dropped,
                bytes_before,
                bytes_after: new_len,
            })
        }
        Err(e) => {
            inner.io_errors += 1;
            let _ = std::fs::remove_file(&tmp_path);
            Err(e)
        }
    }
}

/// Serialize and install the index snapshot, gated on the store's
/// fault schedule (a crashed process cannot write its snapshot).
fn persist_index_with(
    store: &DiskStore,
    covered_len: u64,
    index: &HashMap<u128, Slot>,
) -> io::Result<()> {
    let buf = encode_index_snapshot(covered_len, index);
    store.faults.admit_aux_write(buf.len())?;
    let path = DiskStore::index_path(&store.dir);
    // Write-then-rename so a crash mid-snapshot leaves the old (or no)
    // snapshot, never a torn one that happens to checksum.
    let tmp = path.with_extension("idx.tmp");
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

/// Checksum of one record's integrity-covered bytes.
fn record_checksum(key: u128, payload: &[u8]) -> u128 {
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(&key.to_le_bytes());
    hasher.write_len_prefixed(payload);
    hasher.finish()
}

fn encode_record(key: u128, payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
    record.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    record.extend_from_slice(&key.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(payload);
    record.extend_from_slice(&record_checksum(key, payload).to_le_bytes());
    record
}

/// Read and verify the record at `slot`. `Ok(Some((key, payload)))`
/// only when framing and checksum are intact; `Ok(None)` when the bytes
/// are readable but not an intact record; `Err` when the device failed.
fn read_record(log: &mut dyn Io, slot: Slot) -> io::Result<Option<(u128, Vec<u8>)>> {
    let total = RECORD_OVERHEAD as usize + slot.len as usize;
    let mut buf = vec![0u8; total];
    {
        let mut span = spire_trace::span("disk_read");
        span.attr("bytes", total as u64);
        match log.read_exact_at(slot.offset, &mut buf) {
            Ok(()) => {}
            // A short read means the slot points past the data: corrupt
            // framing, not a device failure.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
    }
    let mut span = spire_trace::span("disk_checksum");
    let decoded = decode_record(&buf).map(|(key, payload, _)| (key, payload.to_vec()));
    span.attr_label("intact", if decoded.is_some() { "yes" } else { "no" });
    Ok(decoded)
}

/// Decode one record from the front of `buf`: `(key, payload, record
/// bytes consumed)`, or `None` if the bytes are not a complete, intact
/// record.
fn decode_record(buf: &[u8]) -> Option<(u128, &[u8], usize)> {
    let rest = buf;
    if rest.len() < RECORD_OVERHEAD as usize {
        return None;
    }
    let magic = u32::from_le_bytes(rest[0..4].try_into().ok()?);
    if magic != RECORD_MAGIC {
        return None;
    }
    let key = u128::from_le_bytes(rest[4..20].try_into().ok()?);
    let len = u32::from_le_bytes(rest[20..24].try_into().ok()?) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return None;
    }
    let total = RECORD_OVERHEAD as usize + len;
    if rest.len() < total {
        return None;
    }
    let payload = &rest[24..24 + len];
    let checksum = u128::from_le_bytes(rest[24 + len..total].try_into().ok()?);
    if checksum != record_checksum(key, payload) {
        return None;
    }
    Some((key, payload, total))
}

/// Scan the log from `*scan_from`, adding every intact record to
/// `index`, stopping at the first bad one. Returns the length of the
/// valid prefix.
fn scan_log(
    log: &mut dyn Io,
    index: &mut HashMap<u128, Slot>,
    scan_from: &mut u64,
) -> io::Result<u64> {
    let file_len = log.len()?;
    let mut offset = *scan_from;
    if offset > file_len {
        // Snapshot claimed more log than exists (e.g. the log was
        // truncated behind it): distrust it entirely and rescan.
        index.clear();
        offset = LOG_MAGIC.len() as u64;
    }
    let mut tail = vec![0u8; (file_len - offset) as usize];
    log.read_exact_at(offset, &mut tail)?;
    let mut consumed = 0usize;
    while let Some((key, payload, record_len)) = decode_record(&tail[consumed..]) {
        index.insert(
            key,
            Slot {
                offset: offset + consumed as u64,
                len: payload.len() as u32,
            },
        );
        consumed += record_len;
    }
    Ok(offset + consumed as u64)
}

/// Serialize the index snapshot: header, covered log length, entry
/// count, entries, trailing checksum over everything before it.
fn encode_index_snapshot(covered_len: u64, index: &HashMap<u128, Slot>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 16 + index.len() * 28 + 16);
    buf.extend_from_slice(INDEX_MAGIC);
    buf.extend_from_slice(&covered_len.to_le_bytes());
    buf.extend_from_slice(&(index.len() as u64).to_le_bytes());
    let mut entries: Vec<_> = index.iter().collect();
    entries.sort_unstable_by_key(|(_, slot)| slot.offset);
    for (&key, slot) in entries {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&slot.offset.to_le_bytes());
        buf.extend_from_slice(&slot.len.to_le_bytes());
    }
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(&buf);
    buf.extend_from_slice(&hasher.finish().to_le_bytes());
    buf
}

/// Load and validate an index snapshot. Returns the entries and the log
/// length it covers, or `None` when missing/invalid/over-claiming.
fn load_index_snapshot(path: &Path, log_len: u64) -> Option<(HashMap<u128, Slot>, u64)> {
    let buf = std::fs::read(path).ok()?;
    if buf.len() < 8 + 8 + 8 + 16 || &buf[0..8] != INDEX_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let mut hasher = Fnv1a128::new();
    hasher.write_len_prefixed(body);
    let stored = u128::from_le_bytes(buf[buf.len() - 16..].try_into().ok()?);
    if hasher.finish() != stored {
        return None;
    }
    let covered_len = u64::from_le_bytes(body[8..16].try_into().ok()?);
    if covered_len > log_len {
        return None; // stale snapshot over a shorter log
    }
    let count = u64::from_le_bytes(body[16..24].try_into().ok()?) as usize;
    let entries_bytes = &body[24..];
    if entries_bytes.len() != count * 28 {
        return None;
    }
    let mut index = HashMap::with_capacity(count);
    for chunk in entries_bytes.chunks_exact(28) {
        let key = u128::from_le_bytes(chunk[0..16].try_into().ok()?);
        let offset = u64::from_le_bytes(chunk[16..24].try_into().ok()?);
        let len = u32::from_le_bytes(chunk[24..28].try_into().ok()?);
        if offset + RECORD_OVERHEAD + u64::from(len) > covered_len {
            return None; // entry points past the covered prefix
        }
        index.insert(key, Slot { offset, len });
    }
    Some((index, covered_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "spire-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tempdir("roundtrip");
        {
            let store = DiskStore::open(&dir).unwrap();
            assert!(store.put(1, b"one").unwrap());
            assert!(store.put(2, b"two").unwrap());
            assert!(!store.put(1, b"one-again").unwrap(), "no overwrite");
            assert_eq!(store.get(1).as_deref(), Some(b"one".as_slice()));
        }
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.recovery().used_snapshot, "clean close wrote cas.idx");
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(store.get(1).as_deref(), Some(b"one".as_slice()));
        assert_eq!(store.get(2).as_deref(), Some(b"two".as_slice()));
        assert_eq!(store.get(3), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_recovers_prefix() {
        let dir = tempdir("truncate");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(10, &[0xAA; 100]).unwrap();
            store.put(11, &[0xBB; 100]).unwrap();
        }
        // Chop into the middle of the second record, and remove the
        // snapshot so recovery exercises the scan path.
        let log = DiskStore::log_path(&dir);
        let len = std::fs::metadata(&log).unwrap().len();
        let file = OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(len - 30).unwrap();
        drop(file);
        std::fs::remove_file(DiskStore::index_path(&dir)).unwrap();

        let store = DiskStore::open(&dir).unwrap();
        assert!(!store.recovery().used_snapshot);
        assert!(store.recovery().truncated_bytes > 0);
        assert_eq!(store.get(10).as_deref(), Some([0xAA; 100].as_slice()));
        assert_eq!(store.get(11), None, "torn record is gone");
        // The log was truncated back to the good prefix: a new put works
        // and survives another reopen.
        store.put(12, b"after-recovery").unwrap();
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.get(12).as_deref(), Some(b"after-recovery".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_over_shorter_log_is_distrusted() {
        let dir = tempdir("stale-idx");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(7, b"seven").unwrap();
            store.put(8, b"eight").unwrap();
        }
        // Truncate the log to before the snapshot's covered length; the
        // snapshot now over-claims and must be rejected wholesale.
        let log = DiskStore::log_path(&dir);
        let file = OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(8).unwrap();
        drop(file);
        let store = DiskStore::open(&dir).unwrap();
        assert!(!store.recovery().used_snapshot);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused() {
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(DiskStore::log_path(&dir), b"definitely not a log").unwrap();
        assert!(DiskStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip one payload byte of the record stored under `key`, in
    /// place, so the checksum fails at read time.
    fn corrupt_payload(dir: &Path, store: &DiskStore, key: u128) {
        use std::io::{Read, Seek, SeekFrom, Write};
        let (_, offset, _) = store
            .index_entries()
            .into_iter()
            .find(|(k, _, _)| *k == key)
            .expect("key indexed");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(DiskStore::log_path(dir))
            .unwrap();
        let pos = offset + 24; // first payload byte
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(pos)).unwrap();
        file.read_exact(&mut byte).unwrap();
        file.seek(SeekFrom::Start(pos)).unwrap();
        file.write_all(&[byte[0] ^ 0xFF]).unwrap();
    }

    #[test]
    fn corrupt_record_is_quarantined_once_not_refetched() {
        let dir = tempdir("quarantine");
        let store = DiskStore::open(&dir).unwrap();
        // Keep garbage under the auto-compaction threshold so the
        // quarantine accounting itself is observable.
        store.put(1, &[1u8; 16]).unwrap();
        store.put(2, &[2u8; 800]).unwrap();
        corrupt_payload(&dir, &store, 1);
        assert_eq!(store.get(1), None, "corrupt payload never served");
        let stats = store.stats();
        assert_eq!(stats.corrupt_dropped, 1);
        assert_eq!(stats.garbage_bytes, 40 + 16);
        // The second read is an index miss, not a re-verification.
        assert_eq!(store.get(1), None);
        assert_eq!(store.stats().corrupt_dropped, 1, "quarantined exactly once");
        assert_eq!(store.stats().misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_live_records() {
        let dir = tempdir("compact");
        let store = DiskStore::open(&dir).unwrap();
        store.put(1, &[1u8; 64]).unwrap();
        store.put(2, &[2u8; 64]).unwrap();
        store.put(3, &[3u8; 64]).unwrap();
        store.quarantine(2);
        // quarantine may have auto-compacted (garbage > 1/4); either
        // way an explicit compact leaves exactly the live records.
        let report = store.compact().unwrap();
        assert_eq!(report.live_records, 2);
        assert!(report.bytes_after <= report.bytes_before);
        assert_eq!(store.stats().garbage_bytes, 0);
        assert_eq!(store.get(1).as_deref(), Some([1u8; 64].as_slice()));
        assert_eq!(store.get(2), None);
        assert_eq!(store.get(3).as_deref(), Some([3u8; 64].as_slice()));
        drop(store);
        // The new generation is what recovery sees.
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(3).as_deref(), Some([3u8; 64].as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_mid_log_is_excised_by_compaction() {
        let dir = tempdir("excise");
        let store = DiskStore::open(&dir).unwrap();
        store.put(1, &[1u8; 32]).unwrap();
        store.put(2, &[2u8; 32]).unwrap();
        store.put(3, &[3u8; 32]).unwrap();
        corrupt_payload(&dir, &store, 2);
        // Quarantine trips the garbage threshold and auto-compacts:
        // record 3 now survives a truncating reopen that would
        // otherwise have discarded everything after record 2.
        assert_eq!(store.get(2), None);
        assert!(store.stats().compactions >= 1, "auto-compaction ran");
        drop(store);
        let _ = std::fs::remove_file(DiskStore::index_path(&dir));
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.recovery().truncated_bytes, 0, "no torn tail");
        assert_eq!(store.get(1).as_deref(), Some([1u8; 32].as_slice()));
        assert_eq!(store.get(3).as_deref(), Some([3u8; 32].as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_compaction_temp_is_removed_at_open() {
        let dir = tempdir("temp-gen");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(9, b"survivor").unwrap();
        }
        std::fs::write(DiskStore::compaction_path(&dir), b"half a generation").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.recovery().removed_compaction_temp);
        assert!(!DiskStore::compaction_path(&dir).exists());
        assert_eq!(store.get(9).as_deref(), Some(b"survivor".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_error_is_not_quarantine() {
        let dir = tempdir("io-error");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(5, b"payload").unwrap();
        }
        let store = DiskStore::open_with(&dir, FaultSchedule::fail_nth(0, FaultKind::Eio)).unwrap();
        let err = store.try_get(5).unwrap_err();
        assert!(err.to_string().contains("injected"));
        let stats = store.stats();
        assert_eq!(stats.io_errors, 1);
        assert_eq!(stats.corrupt_dropped, 0, "device failure is not corruption");
        // The fault was one-shot: the record is still there and intact.
        assert_eq!(
            store.try_get(5).unwrap().as_deref(),
            Some(b"payload".as_slice())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_put_fails_cleanly_and_the_store_recovers() {
        let dir = tempdir("enospc");
        let store =
            DiskStore::open_with(&dir, FaultSchedule::fail_nth(0, FaultKind::Enospc)).unwrap();
        let err = store.put(1, b"does not fit").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(store.len(), 0);
        // One-shot fault consumed: the retry lands.
        assert!(store.put(1, b"fits now").unwrap());
        assert_eq!(store.get(1).as_deref(), Some(b"fits now".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_put_rolls_back_in_process_and_on_disk() {
        let dir = tempdir("torn-put");
        let store =
            DiskStore::open_with(&dir, FaultSchedule::fail_nth(0, FaultKind::Torn)).unwrap();
        assert!(store.put(1, &[0xCC; 100]).is_err());
        assert_eq!(store.len(), 0);
        assert!(store.put(2, b"after the tear").unwrap());
        drop(store);
        let _ = std::fs::remove_file(DiskStore::index_path(&dir));
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "only the clean record survives");
        assert_eq!(store.get(2).as_deref(), Some(b"after the tear".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
