//! Register allocation and machine layout.
//!
//! The Tower compiler "invokes a register allocator to map IR variables to
//! registers" (paper Section 7). This module implements two allocation
//! policies:
//!
//! * [`AllocPolicy::Conservative`] — the sound policy of paper Appendix D:
//!   a register freed by an un-assignment is recycled only when the
//!   un-assignment occurs on the *same control path* as the assignment that
//!   allocated it, and a re-declared variable always reuses its original
//!   register. This enforces the paper's rule that a variable must occupy
//!   the same register at the beginning and end of a do-block.
//! * [`AllocPolicy::Aggressive`] — the unsound policy of paper Figure 23b/d
//!   that recycles on every un-assignment and gives re-declarations a fresh
//!   register. It reproduces the case study's corrupted allocation and is
//!   kept for the Appendix-D experiment.
//!
//! The layout places, in order: variable registers, an arithmetic scratch
//! region, and (when the program touches memory) the allocator stack
//! pointer, the free-stack slots, and the qRAM cells.

use std::collections::HashMap;

use tower::{CoreExpr, CoreStmt, Symbol, Type, TypeInfo, TypeTable, WordConfig};

use crate::error::SpireError;

/// A contiguous run of qubits holding one program value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// First qubit index.
    pub offset: u32,
    /// Number of qubits.
    pub width: u32,
}

impl Reg {
    /// The qubit at bit position `i` of this register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> u32 {
        assert!(
            i < self.width,
            "bit {i} out of register width {}",
            self.width
        );
        self.offset + i
    }

    /// A sub-register covering bits `[lo, lo+width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the register.
    pub fn slice(&self, lo: u32, width: u32) -> Reg {
        assert!(lo + width <= self.width, "slice out of range");
        Reg {
            offset: self.offset + lo,
            width,
        }
    }
}

/// Layout of the allocator and qRAM regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Width of one memory cell in qubits.
    pub cell_width: u32,
    /// Number of addressable cells, including the unused null cell 0:
    /// `2^ptr_bits`.
    pub num_cells: u32,
    /// First qubit of cell 1 (cell `a ≥ 1` starts at
    /// `cells_base + (a-1) * cell_width`).
    pub cells_base: u32,
    /// Stack-pointer register (`ptr_bits` wide).
    pub sp: Reg,
    /// First qubit of free-stack slot 0 (each slot is `ptr_bits` wide).
    pub stack_base: u32,
}

impl MemoryLayout {
    /// The register of memory cell `addr` (1-based; address 0 is null).
    ///
    /// # Panics
    ///
    /// Panics on address 0 or past the end of memory.
    pub fn cell(&self, addr: u32) -> Reg {
        assert!(
            addr >= 1 && addr < self.num_cells,
            "bad cell address {addr}"
        );
        Reg {
            offset: self.cells_base + (addr - 1) * self.cell_width,
            width: self.cell_width,
        }
    }

    /// The register of free-stack slot `i`.
    pub fn stack_slot(&self, i: u32, ptr_bits: u32) -> Reg {
        Reg {
            offset: self.stack_base + i * ptr_bits,
            width: ptr_bits,
        }
    }
}

/// Allocation policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Sound policy with the Appendix-D constraint.
    #[default]
    Conservative,
    /// Unsound recycling policy of paper Figure 23 (for the case study).
    Aggressive,
}

/// The complete machine layout of a compiled program.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Word configuration used.
    pub config: WordConfig,
    /// Variable-to-register map.
    vars: HashMap<Symbol, Reg>,
    /// Arithmetic scratch region: carries, Cuccaro ancilla, product, and
    /// operand-duplication subregions.
    pub scratch: Reg,
    /// Memory regions, when the program touches memory.
    pub memory: Option<MemoryLayout>,
    /// Total qubits used (registers + scratch + memory regions).
    pub total_qubits: u32,
    /// Number of qubits holding program variables (registers only).
    pub register_qubits: u32,
}

impl Layout {
    /// The register of a variable.
    ///
    /// # Errors
    ///
    /// [`SpireError::NoRegister`] for unknown variables.
    pub fn reg(&self, var: &Symbol) -> Result<Reg, SpireError> {
        self.vars
            .get(var)
            .copied()
            .ok_or_else(|| SpireError::NoRegister { var: var.clone() })
    }

    /// Iterate over all variable registers.
    pub fn vars(&self) -> impl Iterator<Item = (&Symbol, &Reg)> {
        self.vars.iter()
    }

    /// Scratch sub-region holding the ripple-carry bits (`uint_bits` wide).
    pub fn scratch_carries(&self) -> Reg {
        self.scratch.slice(0, self.config.uint_bits)
    }

    /// Scratch qubit used as the Cuccaro adder ancilla.
    pub fn scratch_cuccaro(&self) -> u32 {
        self.scratch.bit(self.config.uint_bits)
    }

    /// Scratch sub-region accumulating products (`uint_bits` wide).
    pub fn scratch_product(&self) -> Reg {
        self.scratch
            .slice(self.config.uint_bits + 1, self.config.uint_bits)
    }

    /// Scratch sub-region for duplicating an operand when both operands of
    /// an arithmetic instruction alias the same register.
    pub fn scratch_dup(&self) -> Reg {
        self.scratch
            .slice(2 * self.config.uint_bits + 1, self.config.uint_bits)
    }

    /// Scratch qubit holding the per-cell address-match bit of the qRAM
    /// scan (computed and uncomputed within each cell visit).
    pub fn scratch_qram_match(&self) -> u32 {
        self.scratch.bit(3 * self.config.uint_bits + 1)
    }
}

/// Whether the statement (or any sub-statement) touches memory, and whether
/// it allocates.
fn memory_usage(stmt: &CoreStmt) -> (bool, bool) {
    match stmt {
        CoreStmt::Skip
        | CoreStmt::Assign { .. }
        | CoreStmt::Unassign { .. }
        | CoreStmt::Hadamard(_)
        | CoreStmt::Swap(_, _) => (false, false),
        CoreStmt::MemSwap { .. } => (true, false),
        CoreStmt::Alloc { .. } | CoreStmt::Dealloc { .. } => (true, true),
        CoreStmt::Seq(ss) => ss.iter().fold((false, false), |(m, a), s| {
            let (m2, a2) = memory_usage(s);
            (m || m2, a || a2)
        }),
        CoreStmt::If { body, .. } => memory_usage(body),
        CoreStmt::With { setup, body } => {
            let (m1, a1) = memory_usage(setup);
            let (m2, a2) = memory_usage(body);
            (m1 || m2, a1 || a2)
        }
    }
}

/// The memory cell width required by a program: the widest pointee type
/// among all pointer-typed variables.
fn required_cell_width(types: &TypeInfo, table: &TypeTable) -> Result<u32, SpireError> {
    let mut width = 0;
    for ty in types.var_types.values() {
        let resolved = table.resolve_shallow(ty).map_err(SpireError::Front)?;
        if let Type::Ptr(pointee) = resolved {
            width = width.max(table.width(pointee).map_err(SpireError::Front)?);
        }
    }
    Ok(width)
}

/// Compute a layout for a with-expanded core program.
///
/// `inputs` are allocated first, in order, and are never recycled.
///
/// # Errors
///
/// Propagates type-layout errors; in [`AllocPolicy::Aggressive`] mode the
/// allocation may be semantically unsound (that is the point of that mode)
/// but still succeeds.
pub fn layout(
    stmt: &CoreStmt,
    inputs: &[(Symbol, Type)],
    types: &TypeInfo,
    table: &TypeTable,
    policy: AllocPolicy,
) -> Result<Layout, SpireError> {
    let config = table.config();
    let mut def_counts = HashMap::new();
    count_definitions(stmt, &mut def_counts);
    let mut alloc = Allocator {
        table,
        types,
        vars: HashMap::new(),
        def_counts,
        alloc_paths: HashMap::new(),
        owner: HashMap::new(),
        free: Vec::new(),
        next: 0,
        policy,
        conflict: None,
    };
    for (var, ty) in inputs {
        let width = table.width(ty).map_err(SpireError::Front)?;
        alloc.bind(var, width);
    }
    let mut path = Vec::new();
    alloc.walk(stmt, &mut path)?;
    if let Some(conflict) = alloc.conflict {
        return Err(conflict);
    }

    let register_qubits = alloc.next;
    let scratch_width = 3 * config.uint_bits + 2;
    let scratch = Reg {
        offset: register_qubits,
        width: scratch_width,
    };
    let mut next = register_qubits + scratch_width;

    let (uses_memory, _uses_alloc) = memory_usage(stmt);
    let memory = if uses_memory {
        let cell_width = required_cell_width(types, table)?.max(1);
        let num_cells = 1u32 << config.ptr_bits;
        let sp = Reg {
            offset: next,
            width: config.ptr_bits,
        };
        next += config.ptr_bits;
        let stack_base = next;
        next += num_cells * config.ptr_bits;
        let cells_base = next;
        next += (num_cells - 1) * cell_width;
        Some(MemoryLayout {
            cell_width,
            num_cells,
            cells_base,
            sp,
            stack_base,
        })
    } else {
        None
    };

    Ok(Layout {
        config,
        vars: alloc.vars,
        scratch,
        memory,
        total_qubits: next,
        register_qubits,
    })
}

struct Allocator<'a> {
    table: &'a TypeTable,
    types: &'a TypeInfo,
    /// Final variable-to-register map. Entries are never removed: `select`
    /// reads this map for every program point, so a variable must denote
    /// one register for the whole program (the sticky rule below makes
    /// that sound).
    vars: HashMap<Symbol, Reg>,
    /// Number of definition sites per variable (pre-pass). A register
    /// belonging to a variable with more than one definition is never
    /// recycled, so re-declarations always find their original register
    /// (the paper's re-declaration rule and Appendix-D constraint).
    def_counts: HashMap<Symbol, usize>,
    /// Control path at allocation time, for currently live variables.
    alloc_paths: HashMap<Symbol, Vec<Symbol>>,
    /// Current owner of each allocated register (by offset).
    owner: HashMap<u32, Symbol>,
    free: Vec<Reg>,
    next: u32,
    policy: AllocPolicy,
    /// First unsound reuse detected (aggressive mode only).
    conflict: Option<SpireError>,
}

impl Allocator<'_> {
    fn width_of(&self, var: &Symbol) -> u32 {
        let ty = self
            .types
            .var_types
            .get(var)
            .expect("type checker binds every variable");
        self.table.width(ty).unwrap_or(0)
    }

    fn bind(&mut self, var: &Symbol, width: u32) -> Reg {
        if let Some(reg) = self.vars.get(var).copied() {
            // The variable has held a register before.
            if let Some(idx) = self.free.iter().position(|r| *r == reg) {
                // Fully released earlier; take it back.
                self.free.swap_remove(idx);
                self.owner.insert(reg.offset, var.clone());
            } else if width == 0 || self.owner.get(&reg.offset) == Some(var) {
                // Still reserved for this variable.
            } else {
                // Another variable took the register in between: the
                // allocation cannot be completed consistently
                // (paper Figure 23's failed allocation).
                self.conflict.get_or_insert_with(|| SpireError::UnsoundAllocation {
                    var: var.clone(),
                    message: format!(
                        "register at qubit {} was recycled to `{}` while `{var}` could still occupy it on another control path",
                        reg.offset,
                        self.owner
                            .get(&reg.offset)
                            .map(std::string::ToString::to_string)
                            .unwrap_or_default(),
                    ),
                });
            }
            return reg;
        }
        let reg = if let Some(idx) = self.free.iter().position(|r| r.width == width) {
            self.free.swap_remove(idx)
        } else {
            let reg = Reg {
                offset: self.next,
                width,
            };
            self.next += width;
            reg
        };
        if width > 0 {
            self.owner.insert(reg.offset, var.clone());
        }
        self.vars.insert(var.clone(), reg);
        reg
    }

    fn define(&mut self, var: &Symbol, path: &[Symbol]) {
        let width = self.width_of(var);
        self.bind(var, width);
        self.alloc_paths
            .entry(var.clone())
            .or_insert_with(|| path.to_vec());
    }

    fn undefine(&mut self, var: &Symbol, path: &[Symbol]) {
        let release = match self.policy {
            AllocPolicy::Conservative => {
                // Only single-definition variables whose un-assignment sits
                // on the same control path as their assignment can be
                // recycled; everything else stays reserved.
                self.def_counts.get(var).copied().unwrap_or(0) <= 1
                    && self
                        .alloc_paths
                        .get(var)
                        .is_some_and(|p| p.as_slice() == path)
            }
            AllocPolicy::Aggressive => true,
        };
        if release {
            if let Some(reg) = self.vars.get(var).copied() {
                if reg.width > 0 && !self.free.contains(&reg) {
                    self.free.push(reg);
                    self.owner.remove(&reg.offset);
                }
                self.alloc_paths.remove(var);
            }
        }
    }

    fn walk(&mut self, stmt: &CoreStmt, path: &mut Vec<Symbol>) -> Result<(), SpireError> {
        match stmt {
            CoreStmt::Skip | CoreStmt::Hadamard(_) | CoreStmt::Swap(_, _) => Ok(()),
            CoreStmt::MemSwap { .. } => Ok(()),
            CoreStmt::Seq(ss) => {
                for s in ss {
                    self.walk(s, path)?;
                }
                Ok(())
            }
            CoreStmt::If { cond, body } => {
                path.push(cond.clone());
                self.walk(body, path)?;
                path.pop();
                Ok(())
            }
            CoreStmt::With { setup, body } => {
                // Layout runs after with-expansion, but stay robust.
                self.walk(setup, path)?;
                self.walk(body, path)?;
                self.walk(&setup.reversed(), path)
            }
            CoreStmt::Assign { var, expr } => {
                if expr_reads(expr, var) {
                    return Err(SpireError::SelfAssignment { var: var.clone() });
                }
                self.define(var, path);
                Ok(())
            }
            CoreStmt::Unassign { var, .. } => {
                self.undefine(var, path);
                Ok(())
            }
            CoreStmt::Alloc { var, .. } => {
                self.define(var, path);
                Ok(())
            }
            CoreStmt::Dealloc { var, .. } => {
                self.undefine(var, path);
                Ok(())
            }
        }
    }
}

fn expr_reads(expr: &CoreExpr, var: &Symbol) -> bool {
    expr.reads().contains(var)
}

/// Count definition sites (assignments and allocations) per variable.
fn count_definitions(stmt: &CoreStmt, counts: &mut HashMap<Symbol, usize>) {
    match stmt {
        CoreStmt::Assign { var, .. } | CoreStmt::Alloc { var, .. } => {
            *counts.entry(var.clone()).or_insert(0) += 1;
        }
        CoreStmt::Seq(ss) => {
            for s in ss {
                count_definitions(s, counts);
            }
        }
        CoreStmt::If { body, .. } => count_definitions(body, counts),
        CoreStmt::With { setup, body } => {
            count_definitions(setup, counts);
            count_definitions(body, counts);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tower::{typecheck, CoreValue, NameGen};

    fn table() -> TypeTable {
        TypeTable::new(WordConfig::paper_default())
    }

    fn assign_uint(var: &str, n: u64) -> CoreStmt {
        CoreStmt::Assign {
            var: Symbol::new(var),
            expr: CoreExpr::Value(CoreValue::UInt(n)),
        }
    }

    fn unassign_uint(var: &str, n: u64) -> CoreStmt {
        CoreStmt::Unassign {
            var: Symbol::new(var),
            expr: CoreExpr::Value(CoreValue::UInt(n)),
        }
    }

    fn layout_of(stmt: &CoreStmt, policy: AllocPolicy) -> Layout {
        let table = table();
        let info = typecheck(stmt, &[], &table).unwrap();
        layout(stmt, &[], &info, &table, policy).unwrap()
    }

    #[test]
    fn sequential_lifetimes_share_registers() {
        // x lives, dies; y can take its register (same path).
        let s = CoreStmt::seq(vec![
            assign_uint("x", 1),
            unassign_uint("x", 1),
            assign_uint("y", 2),
        ]);
        let l = layout_of(&s, AllocPolicy::Conservative);
        assert_eq!(
            l.reg(&Symbol::new("y")).unwrap().offset,
            0,
            "y should recycle x's register"
        );
        assert_eq!(l.register_qubits, 8);
    }

    /// The core of paper Figure 23c/d: `x` is un-assigned and re-declared
    /// inside `if c` while `y` is live.
    fn figure_23_core() -> CoreStmt {
        let c = Symbol::new("c");
        CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: c.clone(),
                expr: CoreExpr::Value(CoreValue::Bool(true)),
            },
            assign_uint("x", 1),
            CoreStmt::If {
                cond: c,
                body: Box::new(CoreStmt::seq(vec![
                    unassign_uint("x", 1),
                    assign_uint("y", 2),
                    CoreStmt::Assign {
                        var: Symbol::new("x"),
                        expr: CoreExpr::Var(Symbol::new("y")),
                    },
                ])),
            },
        ])
    }

    #[test]
    fn conditional_unassign_does_not_release() {
        // x is freed only under `if c`: its register must stay reserved,
        // and the re-declaration must find it again (paper Appendix D).
        let s = figure_23_core();
        let l = layout_of(&s, AllocPolicy::Conservative);
        let x = l.reg(&Symbol::new("x")).unwrap();
        let y = l.reg(&Symbol::new("y")).unwrap();
        assert_ne!(x.offset, y.offset, "y must not steal x's reserved register");
    }

    #[test]
    fn aggressive_mode_detects_failed_allocation() {
        // Aggressive recycling hands x's register to y; when x is
        // re-declared there is "no correct way to complete this register
        // allocation" (paper Appendix D) and the allocator reports it.
        let s = figure_23_core();
        let table = table();
        let info = typecheck(&s, &[], &table).unwrap();
        let err = layout(&s, &[], &info, &table, AllocPolicy::Aggressive).unwrap_err();
        assert!(matches!(err, SpireError::UnsoundAllocation { .. }), "{err}");
    }

    #[test]
    fn self_assignment_is_rejected() {
        let s = CoreStmt::seq(vec![
            assign_uint("x", 1),
            CoreStmt::Assign {
                var: Symbol::new("x"),
                expr: CoreExpr::Var(Symbol::new("x")),
            },
        ]);
        let table = table();
        let info = typecheck(&s, &[], &table).unwrap();
        assert!(matches!(
            layout(&s, &[], &info, &table, AllocPolicy::Conservative),
            Err(SpireError::SelfAssignment { .. })
        ));
    }

    #[test]
    fn memory_regions_appear_when_used() {
        let mut names = NameGen::new();
        let _ = &mut names;
        let list = Type::pair(Type::UInt, Type::ptr(Type::UInt));
        let p = Symbol::new("p");
        let v = Symbol::new("v");
        let s = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: v.clone(),
                expr: CoreExpr::Value(CoreValue::ZeroOf(list.clone())),
            },
            CoreStmt::Assign {
                var: p.clone(),
                expr: CoreExpr::Value(CoreValue::Null(list.clone())),
            },
            CoreStmt::MemSwap {
                ptr: p.clone(),
                val: v.clone(),
            },
        ]);
        let table = table();
        let info = typecheck(&s, &[], &table).unwrap();
        let l = layout(&s, &[], &info, &table, AllocPolicy::Conservative).unwrap();
        let mem = l.memory.expect("memory layout");
        assert_eq!(mem.cell_width, 12);
        assert_eq!(mem.num_cells, 16);
        // Region accounting adds up.
        assert_eq!(
            l.total_qubits,
            l.register_qubits
                + l.scratch.width
                + 4          // sp
                + 16 * 4     // free-stack slots
                + 15 * 12 // cells
        );
    }

    #[test]
    fn no_memory_no_regions() {
        let s = assign_uint("x", 1);
        let l = layout_of(&s, AllocPolicy::Conservative);
        assert!(l.memory.is_none());
        assert_eq!(l.total_qubits, 8 + l.scratch.width);
    }

    #[test]
    fn inputs_allocated_in_order() {
        let table = table();
        let s = CoreStmt::Skip;
        let inputs = vec![
            (Symbol::new("a"), Type::UInt),
            (Symbol::new("b"), Type::Bool),
        ];
        let info = typecheck(&s, &inputs, &table).unwrap();
        let l = layout(&s, &inputs, &info, &table, AllocPolicy::Conservative).unwrap();
        assert_eq!(
            l.reg(&Symbol::new("a")).unwrap(),
            Reg {
                offset: 0,
                width: 8
            }
        );
        assert_eq!(
            l.reg(&Symbol::new("b")).unwrap(),
            Reg {
                offset: 8,
                width: 1
            }
        );
    }

    #[test]
    fn reg_slice_and_bit() {
        let r = Reg {
            offset: 10,
            width: 8,
        };
        assert_eq!(r.bit(3), 13);
        assert_eq!(
            r.slice(4, 4),
            Reg {
                offset: 14,
                width: 4
            }
        );
    }
}
