//! # Spire: program-level T-complexity optimization for Tower
//!
//! A from-scratch implementation of the compiler described in
//! *The T-Complexity Costs of Error Correction for Control Flow in Quantum
//! Computation* (Yuan & Carbin, PLDI 2024).
//!
//! The paper's two contributions live here:
//!
//! * the **cost model** ([`cost`]) — an exact, syntax-level analysis of a
//!   program's gate counts under quantum error correction (Theorems 5.1
//!   and 5.2), plus the paper's compositional recurrence with the
//!   `c_ctrl`/`c_CH` constants;
//! * the **program-level optimizations** ([`opt`]) — conditional
//!   flattening and conditional narrowing (Section 6, Appendix C), which
//!   rewrite control flow so that the straightforward compilation strategy
//!   emits asymptotically efficient Clifford+T circuits.
//!
//! Around them sits the rest of the Tower backend (Section 7): register
//! allocation with the Appendix-D soundness constraint ([`layout`]), the
//! abstract circuit ([`abstract_circuit`]), concrete MCX code generation
//! ([`select()`], [`compile_source`]), and the content-addressed compile
//! cache behind the experiment pipeline ([`cache`]).
//!
//! # Example
//!
//! Compile the paper's running example at recursion depth 5, with and
//! without Spire's optimizations, and compare T-complexities:
//!
//! ```
//! use spire::{compile_source, CompileOptions};
//! use tower::WordConfig;
//!
//! let src = r#"
//!     fun count[n](acc: uint, flag: bool) -> uint {
//!         if flag {
//!             let r <- acc + 1;
//!             let out <- count[n-1](r, flag);
//!         } else {
//!             let out <- acc;
//!         }
//!         return out;
//!     }
//! "#;
//! let config = WordConfig::paper_default();
//! let baseline =
//!     compile_source(src, "count", 5, config, &CompileOptions::baseline())?;
//! let spire = compile_source(src, "count", 5, config, &CompileOptions::spire())?;
//! assert!(spire.t_complexity() < baseline.t_complexity());
//! # Ok::<(), spire::SpireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abstract_circuit;
pub mod cache;
pub mod check;
pub mod cost;
mod error;
pub mod faults;
pub mod flight;
pub mod layout;
mod machine;
pub mod opt;
mod pipeline;
pub mod select;
pub mod store;

pub use abstract_circuit::{AInstr, AOp};
pub use cache::{compile_source_cached, CacheKey, CacheStats, CompileCache};
pub use check::{check_compiled, check_source};
pub use error::SpireError;
pub use faults::{FaultKind, FaultSchedule, FaultStats, FaultyIo, Io, RealIo};
pub use flight::{FlightStats, Served, SingleFlight, SingleFlightCache};
pub use layout::{AllocPolicy, Layout, MemoryLayout, Reg};
pub use machine::Machine;
pub use opt::{optimize, OptConfig};
pub use pipeline::{compile_source, compile_unit, CompileOptions, Compiled};
pub use select::select;
pub use spire_verify;
pub use store::{CompactionReport, DiskStats, DiskStore, RecoveryReport};
