//! Deterministic I/O fault injection: the seam the robustness tests
//! drive.
//!
//! The disk tier ([`DiskStore`](crate::DiskStore)) performs all log I/O
//! through the small [`Io`] trait. In production that is [`RealIo`] — a
//! thin positioned-I/O wrapper over [`File`]. Under test (and under the
//! `spire serve --inject-disk-faults` flag) the store wraps its handle
//! in [`FaultyIo`], which consults a shared, seeded [`FaultSchedule`]
//! before every operation and injects failures *deterministically*:
//!
//! * **fail-Nth-op** — exactly the Nth data operation fails, once;
//! * **fail-all** — every operation fails (a dead disk);
//! * **seeded rate** — each operation fails with probability `rate/256`,
//!   decided by a hash of `(seed, op#)` so two runs with the same seed
//!   inject the same faults;
//! * **crash-after-bytes** — writes succeed until a cumulative byte
//!   budget is exhausted, the straddling write is *torn* (its prefix
//!   reaches the file), and every operation after that fails: a
//!   simulated `kill -9` at an exact write boundary. The crash-point
//!   harness enumerates these budgets to cover every boundary.
//!
//! Injected failures come in three flavors ([`FaultKind`]): `EIO`
//! (generic I/O error), `ENOSPC` (storage full), and *torn* writes
//! (a prefix of the data reaches the file, then the write errors).
//!
//! Schedules are cheap, lock-free (atomics only), and shared by
//! `Arc` so one schedule can govern the record log, the index
//! snapshot, and the compaction rewrite of a single store at once —
//! which is exactly what a real crash does.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qcirc::hash::Fnv1a128;

/// Positioned I/O on one file: the injectable seam under the store.
///
/// Every method is fallible and offset-addressed; implementations are
/// free to keep a cursor internally. [`RealIo`] delegates to the OS;
/// [`FaultyIo`] wraps another `Io` and injects scheduled failures.
// `len` here is a fallible syscall (file length), not a collection
// size — an `is_empty` counterpart would be a second syscall, not a
// cheap predicate.
#[allow(clippy::len_without_is_empty)]
pub trait Io: Send + std::fmt::Debug {
    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Fill `buf` exactly from `offset`.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Write all of `data` at `offset`.
    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;
    /// Truncate (or extend with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flush file contents durably to the device.
    fn sync(&mut self) -> io::Result<()>;
}

/// Direct [`Io`] over a [`File`]: what production uses.
#[derive(Debug)]
pub struct RealIo {
    file: File,
}

impl RealIo {
    /// Wrap an open file handle.
    pub fn new(file: File) -> RealIo {
        RealIo { file }
    }
}

impl Io for RealIo {
    fn len(&mut self) -> io::Result<u64> {
        self.file.seek(SeekFrom::End(0))
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// The flavor of failure an injected fault delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (`EIO`): the disk said no.
    Eio,
    /// Storage exhausted (`ENOSPC`): the write cannot fit.
    Enospc,
    /// A torn write: a prefix of the data reaches the file, then the
    /// operation errors. Reads under this kind fail like [`FaultKind::Eio`].
    Torn,
}

impl FaultKind {
    fn error(self) -> io::Error {
        match self {
            FaultKind::Eio => io::Error::other("injected fault: I/O error"),
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            ),
            FaultKind::Torn => io::Error::other("injected fault: torn write"),
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::Torn => "torn",
        }
    }
}

/// When faults fire.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Never inject: the production schedule.
    None,
    /// Inject on exactly the `n`th data operation (0-based), once.
    Nth { n: u64, kind: FaultKind },
    /// Inject on every operation: a dead disk.
    All { kind: FaultKind },
    /// Inject on each data operation with probability `rate`/256,
    /// decided by `hash(seed, op#)` — deterministic per seed.
    Rate {
        rate: u8,
        seed: u64,
        kind: FaultKind,
    },
    /// Writes succeed until `budget` cumulative bytes, the straddling
    /// write is torn at the budget, and everything after fails.
    CrashAfterBytes { budget: u64 },
}

/// Counters observed on a [`FaultSchedule`] — the fault-coverage
/// summary the chaos CI job uploads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data operations (reads + writes) the schedule has seen.
    pub ops: u64,
    /// Bytes successfully written through the seam.
    pub written_bytes: u64,
    /// Faults actually delivered.
    pub injected: u64,
    /// Whether a crash-after-bytes schedule has tripped.
    pub crashed: bool,
}

/// A deterministic schedule of I/O faults, shared across every file a
/// store touches. See the [module docs](self) for the modes.
#[derive(Debug)]
pub struct FaultSchedule {
    mode: Mode,
    label: String,
    ops: AtomicU64,
    written: AtomicU64,
    injected: AtomicU64,
    crashed: AtomicBool,
}

/// What a write is allowed to do.
enum WriteAdmit {
    /// Perform the whole write.
    Full,
    /// Write only the first `n` bytes, then report the error.
    Partial(usize, io::Error),
    /// Perform nothing and report the error.
    Deny(io::Error),
}

impl FaultSchedule {
    fn with_mode(mode: Mode, label: String) -> Arc<FaultSchedule> {
        Arc::new(FaultSchedule {
            mode,
            label,
            ops: AtomicU64::new(0),
            written: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })
    }

    /// The schedule that never injects: what `DiskStore::open` uses.
    pub fn none() -> Arc<FaultSchedule> {
        Self::with_mode(Mode::None, "none".to_string())
    }

    /// Fail exactly the `n`th data operation (0-based), once.
    pub fn fail_nth(n: u64, kind: FaultKind) -> Arc<FaultSchedule> {
        Self::with_mode(Mode::Nth { n, kind }, format!("{}:nth={n}", kind.label()))
    }

    /// Fail every operation: a dead disk.
    pub fn fail_all(kind: FaultKind) -> Arc<FaultSchedule> {
        Self::with_mode(Mode::All { kind }, format!("{}:all", kind.label()))
    }

    /// Fail each data operation with probability `rate`/256, decided by
    /// a hash of `(seed, op#)`: the same seed injects the same faults.
    pub fn fail_rate(rate: u8, seed: u64, kind: FaultKind) -> Arc<FaultSchedule> {
        Self::with_mode(
            Mode::Rate { rate, seed, kind },
            format!("{}:rate={rate},seed={seed}", kind.label()),
        )
    }

    /// Let writes through until `budget` cumulative bytes, tear the
    /// straddling write at the budget, and fail everything afterwards —
    /// a simulated kill at an exact write boundary.
    pub fn crash_after_bytes(budget: u64) -> Arc<FaultSchedule> {
        Self::with_mode(Mode::CrashAfterBytes { budget }, format!("crash={budget}"))
    }

    /// Parse a schedule spec, the `--inject-disk-faults` flag syntax:
    /// `none`, `crash=BYTES`, or `KIND:WHEN` with `KIND` one of
    /// `eio|enospc|torn` and `WHEN` one of `all`, `nth=N`, or
    /// `rate=R,seed=S` (R out of 256).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<Arc<FaultSchedule>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(Self::none());
        }
        if let Some(bytes) = spec.strip_prefix("crash=") {
            let budget: u64 = bytes
                .parse()
                .map_err(|_| format!("bad crash byte budget {bytes:?}"))?;
            return Ok(Self::crash_after_bytes(budget));
        }
        let (kind, when) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad fault spec {spec:?}: expected KIND:WHEN"))?;
        let kind = match kind {
            "eio" => FaultKind::Eio,
            "enospc" => FaultKind::Enospc,
            "torn" => FaultKind::Torn,
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        if when == "all" {
            return Ok(Self::fail_all(kind));
        }
        if let Some(n) = when.strip_prefix("nth=") {
            let n: u64 = n.parse().map_err(|_| format!("bad op index {n:?}"))?;
            return Ok(Self::fail_nth(n, kind));
        }
        if let Some(rest) = when.strip_prefix("rate=") {
            let (rate, seed) = rest
                .split_once(",seed=")
                .ok_or_else(|| format!("bad rate spec {rest:?}: expected rate=R,seed=S"))?;
            let rate: u8 = rate
                .parse()
                .map_err(|_| format!("bad rate {rate:?} (0-255, out of 256)"))?;
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
            return Ok(Self::fail_rate(rate, seed, kind));
        }
        Err(format!("bad fault trigger {when:?}"))
    }

    /// The spec this schedule was built from (`none`, `eio:all`, ...).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether this schedule can ever inject a fault.
    pub fn is_active(&self) -> bool {
        !matches!(self.mode, Mode::None)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            ops: self.ops.load(Ordering::Relaxed),
            written_bytes: self.written.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }

    /// Whether a crash schedule has tripped (every later op fails).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn inject(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn crash_error() -> io::Error {
        io::Error::other("injected fault: process crashed")
    }

    /// Deterministic per-op coin for `Rate` mode.
    fn rate_hits(rate: u8, seed: u64, op: u64) -> bool {
        let mut hasher = Fnv1a128::new();
        hasher.write_len_prefixed(&seed.to_le_bytes());
        hasher.write_len_prefixed(&op.to_le_bytes());
        (hasher.finish() as u8) < rate
    }

    /// Gate a data read. Torn reads degrade to EIO.
    fn admit_read(&self) -> io::Result<()> {
        if self.crashed() {
            self.inject();
            return Err(Self::crash_error());
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let kind = match self.mode {
            Mode::None | Mode::CrashAfterBytes { .. } => return Ok(()),
            Mode::Nth { n, kind } if op == n => kind,
            Mode::Nth { .. } => return Ok(()),
            Mode::All { kind } => kind,
            Mode::Rate { rate, seed, kind } if Self::rate_hits(rate, seed, op) => kind,
            Mode::Rate { .. } => return Ok(()),
        };
        self.inject();
        Err(match kind {
            FaultKind::Torn => FaultKind::Eio.error(),
            other => other.error(),
        })
    }

    /// Gate a data write of `len` bytes.
    fn admit_write(&self, len: usize) -> WriteAdmit {
        if self.crashed() {
            self.inject();
            return WriteAdmit::Deny(Self::crash_error());
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let kind = match self.mode {
            Mode::None => {
                self.written.fetch_add(len as u64, Ordering::Relaxed);
                return WriteAdmit::Full;
            }
            Mode::CrashAfterBytes { budget } => {
                let prior = self.written.load(Ordering::Relaxed);
                if prior + len as u64 <= budget {
                    self.written.fetch_add(len as u64, Ordering::Relaxed);
                    return WriteAdmit::Full;
                }
                // The straddling write tears at the budget; the process
                // is dead from here on.
                self.crashed.store(true, Ordering::Relaxed);
                self.inject();
                let allowed = budget.saturating_sub(prior) as usize;
                self.written.fetch_add(allowed as u64, Ordering::Relaxed);
                return WriteAdmit::Partial(allowed, Self::crash_error());
            }
            Mode::Nth { n, kind } if op == n => kind,
            Mode::Nth { .. } => {
                self.written.fetch_add(len as u64, Ordering::Relaxed);
                return WriteAdmit::Full;
            }
            Mode::All { kind } => kind,
            Mode::Rate { rate, seed, kind } if Self::rate_hits(rate, seed, op) => kind,
            Mode::Rate { .. } => {
                self.written.fetch_add(len as u64, Ordering::Relaxed);
                return WriteAdmit::Full;
            }
        };
        self.inject();
        match kind {
            FaultKind::Torn => {
                let torn = len / 2;
                self.written.fetch_add(torn as u64, Ordering::Relaxed);
                WriteAdmit::Partial(torn, kind.error())
            }
            other => WriteAdmit::Deny(other.error()),
        }
    }

    /// Gate a control operation (`set_len`, `sync`, a compaction
    /// rename): fails after a crash and under `all` mode, but is not
    /// counted as a data op for `nth`/`rate` schedules.
    pub(crate) fn admit_control(&self) -> io::Result<()> {
        if self.crashed() {
            self.inject();
            return Err(Self::crash_error());
        }
        if let Mode::All { kind } = self.mode {
            self.inject();
            return Err(kind.error());
        }
        Ok(())
    }

    /// Gate an auxiliary whole-file write of `len` bytes (the index
    /// snapshot): behaves like a data write, but the caller performs
    /// the write itself — a torn admit is reported as a plain failure
    /// (the snapshot path is write-then-rename, so a torn temp file is
    /// never installed).
    pub(crate) fn admit_aux_write(&self, len: usize) -> io::Result<()> {
        match self.admit_write(len) {
            WriteAdmit::Full => Ok(()),
            WriteAdmit::Partial(_, err) | WriteAdmit::Deny(err) => Err(err),
        }
    }
}

/// An [`Io`] wrapper that injects faults from a shared schedule.
#[derive(Debug)]
pub struct FaultyIo<I> {
    inner: I,
    faults: Arc<FaultSchedule>,
}

impl<I: Io> FaultyIo<I> {
    /// Wrap `inner`, gating every operation on `faults`.
    pub fn new(inner: I, faults: Arc<FaultSchedule>) -> FaultyIo<I> {
        FaultyIo { inner, faults }
    }
}

impl<I: Io> Io for FaultyIo<I> {
    fn len(&mut self) -> io::Result<u64> {
        // Metadata reads are free: a crashed process cannot ask, but
        // the store only calls this during recovery (pre-fault).
        self.inner.len()
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.faults.admit_read()?;
        self.inner.read_exact_at(offset, buf)
    }

    fn write_all_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        match self.faults.admit_write(data.len()) {
            WriteAdmit::Full => self.inner.write_all_at(offset, data),
            WriteAdmit::Partial(n, err) => {
                // The torn prefix really reaches the file: that is the
                // whole point — recovery must cope with it.
                let _ = self.inner.write_all_at(offset, &data[..n]);
                Err(err)
            }
            WriteAdmit::Deny(err) => Err(err),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.faults.admit_control()?;
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.faults.admit_control()?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_file(tag: &str) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "spire-faults-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_file(&path);
        let file = OpenOptionsExt::rw_create(&path);
        (path, file)
    }

    struct OpenOptionsExt;
    impl OpenOptionsExt {
        fn rw_create(path: &std::path::Path) -> File {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
                .unwrap()
        }
    }

    #[test]
    fn nth_fails_exactly_once() {
        let (path, file) = scratch_file("nth");
        let faults = FaultSchedule::fail_nth(1, FaultKind::Eio);
        let mut io = FaultyIo::new(RealIo::new(file), Arc::clone(&faults));
        assert!(io.write_all_at(0, b"aaaa").is_ok());
        assert!(io.write_all_at(4, b"bbbb").is_err(), "op 1 must fail");
        assert!(io.write_all_at(4, b"bbbb").is_ok(), "one-shot");
        assert_eq!(faults.stats().injected, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let (path, file) = scratch_file("torn");
        let faults = FaultSchedule::fail_nth(0, FaultKind::Torn);
        let mut io = FaultyIo::new(RealIo::new(file), faults);
        assert!(io.write_all_at(0, b"0123456789").is_err());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5, "half landed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_budget_tears_the_straddling_write_then_kills_everything() {
        let (path, file) = scratch_file("crash");
        let faults = FaultSchedule::crash_after_bytes(6);
        let mut io = FaultyIo::new(RealIo::new(file), Arc::clone(&faults));
        assert!(io.write_all_at(0, b"aaaa").is_ok());
        assert!(io.write_all_at(4, b"bbbb").is_err(), "budget exceeded");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            6,
            "exactly the budget reached the file"
        );
        assert!(faults.crashed());
        let mut buf = [0u8; 1];
        assert!(io.read_exact_at(0, &mut buf).is_err(), "dead after crash");
        assert!(io.set_len(0).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rate_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let faults = FaultSchedule::fail_rate(64, seed, FaultKind::Eio);
            let (path, file) = scratch_file("rate");
            let mut io = FaultyIo::new(RealIo::new(file), Arc::clone(&faults));
            let mut outcomes = Vec::new();
            for i in 0..64u64 {
                outcomes.push(io.write_all_at(i, b"x").is_ok());
            }
            let _ = std::fs::remove_file(&path);
            (outcomes, faults.stats().injected)
        };
        let (a, injected_a) = run(42);
        let (b, injected_b) = run(42);
        let (c, _) = run(7);
        assert_eq!(a, b, "same seed, same faults");
        assert_eq!(injected_a, injected_b);
        assert!(injected_a > 0, "rate 64/256 over 64 ops injects");
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn specs_parse_and_round_trip_their_labels() {
        for spec in [
            "none",
            "eio:all",
            "enospc:nth=3",
            "torn:rate=8,seed=42",
            "crash=1024",
        ] {
            let schedule = FaultSchedule::parse(spec).unwrap();
            assert_eq!(schedule.label(), spec);
        }
        assert!(FaultSchedule::parse("flaky:always").is_err());
        assert!(FaultSchedule::parse("eio:rate=9000,seed=1").is_err());
    }
}
