//! The `spire check` driver: run every static analysis on a compiled
//! program and aggregate the findings into a [`Report`].
//!
//! This module is the glue between the compiler pipeline and the
//! [`spire_verify`] analyses: it knows which qubits the layout allocated as
//! scratch, which qubits the Barenco decomposition adds, and which typing
//! tables the T-bound interval walk needs — none of which `spire-verify`
//! (deliberately independent of the backend) can see on its own.

use qcirc::decompose::mcx_to_toffoli;
use spire_verify::{
    bound_function, bound_violations, check_ancillas, check_circuit, codes, AncillaSpec,
    FunctionBounds, Report,
};
use tower::{parse, WordConfig};

use crate::error::SpireError;
use crate::layout::Layout;
use crate::pipeline::{compile_source, CompileOptions, Compiled};

/// The ancillae the layout allocates at the MCX level: the arithmetic and
/// qRAM scratch region, labelled by sub-region.
fn scratch_spec(layout: &Layout) -> AncillaSpec {
    let mut spec = AncillaSpec::default();
    let carries = layout.scratch_carries();
    for i in 0..carries.width {
        spec.push(carries.bit(i), format!("carry scratch bit {i}"));
    }
    spec.push(
        layout.scratch_cuccaro(),
        "Cuccaro adder ancilla".to_string(),
    );
    let product = layout.scratch_product();
    for i in 0..product.width {
        spec.push(product.bit(i), format!("product scratch bit {i}"));
    }
    let dup = layout.scratch_dup();
    for i in 0..dup.width {
        spec.push(dup.bit(i), format!("operand-duplication scratch bit {i}"));
    }
    spec.push(layout.scratch_qram_match(), "qRAM match bit".to_string());
    spec
}

/// Run every circuit-level and IR-level analysis on one compiled function.
///
/// `function` is the name used in the per-function T-bound row. The checks:
/// structural well-formedness of the emitted MCX stream against the
/// layout's qubit budget (footprint audit included), ancilla discipline of
/// the layout's scratch region at the MCX level, ancilla discipline of the
/// Barenco decomposition ancillae at the Toffoli level, and the static
/// T-count interval against the compiled count.
pub fn check_compiled(compiled: &Compiled, function: &str) -> Report {
    let mut verify_span = spire_trace::span("verify");
    let mut report = Report::default();
    let circuit = compiled.emit();

    {
        let _span = spire_trace::span("check_circuit");
        report
            .diagnostics
            .extend(check_circuit(&circuit, Some(compiled.layout.total_qubits)));
    }

    {
        let _span = spire_trace::span("check_ancillas");
        report
            .diagnostics
            .extend(check_ancillas(&circuit, &scratch_spec(&compiled.layout)));

        // At the Toffoli level only the decomposition ancillae are new; the
        // scratch region was already checked exactly on the MCX stream.
        let toffoli = mcx_to_toffoli(&circuit);
        if toffoli.num_qubits() > circuit.num_qubits() {
            let mut spec = AncillaSpec::default();
            for q in circuit.num_qubits()..toffoli.num_qubits() {
                spec.push(q, format!("decomposition ancilla {q}"));
            }
            report.diagnostics.extend(check_ancillas(&toffoli, &spec));
        }
    }

    {
        let _span = spire_trace::span("t_bounds");
        report.functions.push(bounds_row(compiled, function));
        push_bound_violations(&mut report);
    }
    verify_span.attr("diagnostics", report.diagnostics.len() as u64);
    report
}

fn bounds_row(compiled: &Compiled, function: &str) -> FunctionBounds {
    let actual = compiled.t_complexity();
    match bound_function(&compiled.ir, &compiled.types, &compiled.table) {
        Ok(bound) => FunctionBounds {
            name: function.to_string(),
            min: bound.min,
            max: bound.max,
            actual,
        },
        // A typechecked program cannot fail the walk; degrade to the
        // trivially-true interval rather than inventing an error channel.
        Err(_) => FunctionBounds {
            name: function.to_string(),
            min: 0,
            max: u64::MAX,
            actual,
        },
    }
}

fn push_bound_violations(report: &mut Report) {
    let violations = bound_violations(&report.functions);
    report.diagnostics.extend(violations);
}

/// Compile `source` and run the full analysis suite.
///
/// The entry function gets the complete circuit-level treatment via
/// [`check_compiled`]; every *other* function in the source that compiles
/// at the same recursion depth contributes an additional per-function
/// T-bound row (and a `verify/t-bound-violation` diagnostic if its interval
/// fails). Functions that do not compile standalone at this depth are
/// skipped — that is a property of the request, not a defect in the program.
///
/// # Errors
///
/// Propagates compile errors for the entry function only.
pub fn check_source(
    source: &str,
    entry: &str,
    depth: i64,
    config: WordConfig,
    options: &CompileOptions,
) -> Result<Report, SpireError> {
    let compiled = compile_source(source, entry, depth, config, options)?;
    let mut report = check_compiled(&compiled, entry);

    if let Ok(program) = parse(source) {
        for fun in &program.funs {
            let name = fun.name.to_string();
            if name == entry {
                continue;
            }
            if let Ok(sibling) = compile_source(source, &name, depth, config, options) {
                report.functions.push(bounds_row(&sibling, &name));
            }
        }
        // Re-scan: sibling rows may add violations of their own.
        report
            .diagnostics
            .retain(|d| d.code != codes::T_BOUND_VIOLATION);
        push_bound_violations(&mut report);

        // Anchor each violation at its function's name in the source. The
        // violations were just appended in row order, so the two filtered
        // iterations line up.
        let spans: Vec<_> = report
            .functions
            .iter()
            .filter(|row| !row.holds())
            .map(|row| tower::locate_ident(source, &row.name, 0))
            .collect();
        let mut spans = spans.into_iter();
        for diag in &mut report.diagnostics {
            if diag.code == codes::T_BOUND_VIOLATION {
                if let Some(Some(span)) = spans.next() {
                    diag.span = Some((span.start, span.end));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INC_SRC: &str = r#"
        fun inc(x: uint) -> uint {
            let out <- x + 1;
            return out;
        }
        fun twice(x: uint) -> uint {
            let a <- x + x;
            return a;
        }
    "#;

    #[test]
    fn simple_program_checks_clean() {
        let report = check_source(
            INC_SRC,
            "inc",
            0,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        )
        .expect("compiles");
        assert!(
            report.diagnostics.is_empty(),
            "unexpected diagnostics: {:?}",
            report.diagnostics
        );
        // Both functions get a T-bound row; both hold.
        assert_eq!(report.functions.len(), 2);
        assert!(report.functions.iter().all(FunctionBounds::holds));
        assert!(report.functions[0].actual > 0);
    }

    #[test]
    fn check_compiled_matches_cost_model() {
        let compiled = compile_source(
            INC_SRC,
            "inc",
            0,
            WordConfig::paper_default(),
            &CompileOptions::baseline(),
        )
        .unwrap();
        let report = check_compiled(&compiled, "inc");
        let row = &report.functions[0];
        assert_eq!(row.actual, compiled.t_complexity());
        assert!(row.min <= row.actual && row.actual <= row.max);
    }
}
