//! Spire's program-level optimizations (paper Section 6 and Appendix C):
//! **conditional flattening** and **conditional narrowing**, implemented as
//! rewrite rules over the core IR.
//!
//! The rules are, whenever applicable under `if x { … }`:
//!
//! * narrowing: `if x { with {s₁} do {s₂} } ⇝ with {s₁} do { if x {s₂} }`
//! * flattening: `if x { if y { s } } ⇝ with { z ← x && y } do { if z { s } }`
//! * sequence splitting: `if x { s₁; s₂ } ⇝ if x { s₁ }; if x { s₂ }`
//!
//! This module is a direct port of the paper's 12-line OCaml pass
//! (Figure 22). The individual-optimization configurations used by the
//! evaluation (Figures 15a and 24) are:
//!
//! * *narrowing alone* runs the pass with the flattening rule disabled,
//!   leaving nested `if`s in place (a constant-factor win);
//! * *flattening alone* first expands every `with-do` block (baseline
//!   Tower's representation, which has no `with` in the core IR) and then
//!   runs the pass, so directly nested `if`s are visible to the flattening
//!   rule (the asymptotic win of Theorem 6.1).

use tower::{CoreBinOp, CoreExpr, CoreStmt, NameGen};

/// Which of the two program-level optimizations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Enable conditional flattening.
    pub flattening: bool,
    /// Enable conditional narrowing.
    pub narrowing: bool,
}

impl OptConfig {
    /// Both optimizations — the full Spire configuration.
    pub fn spire() -> Self {
        OptConfig {
            flattening: true,
            narrowing: true,
        }
    }

    /// No optimization (baseline Tower).
    pub fn none() -> Self {
        OptConfig {
            flattening: false,
            narrowing: false,
        }
    }

    /// Conditional flattening only ("CF alone" in Figure 15a).
    pub fn flattening_only() -> Self {
        OptConfig {
            flattening: true,
            narrowing: false,
        }
    }

    /// Conditional narrowing only ("CN alone" in Figure 15a).
    pub fn narrowing_only() -> Self {
        OptConfig {
            flattening: false,
            narrowing: true,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match (self.flattening, self.narrowing) {
            (true, true) => "spire",
            (true, false) => "cf-only",
            (false, true) => "cn-only",
            (false, false) => "original",
        }
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::spire()
    }
}

/// Run the program-level optimizations on a core-IR statement.
///
/// Fresh condition variables for the flattening rule are drawn from
/// `names`; callers should pass the front end's generator so names stay
/// unique.
pub fn optimize(stmt: &CoreStmt, config: OptConfig, names: &mut NameGen) -> CoreStmt {
    if !config.flattening && !config.narrowing {
        return stmt.clone();
    }
    let stmt = if config.flattening && !config.narrowing {
        // Baseline Tower IR (no with-do blocks): expand them first so the
        // flattening rule sees directly nested ifs.
        stmt.expand_with()
    } else {
        stmt.clone()
    };
    let rewritten = optimize_list(&stmt, config, names);
    CoreStmt::seq(rewritten)
}

/// Members of a statement viewed as a list (the OCaml pass works on
/// statement lists).
fn members(stmt: &CoreStmt) -> Vec<&CoreStmt> {
    match stmt {
        CoreStmt::Seq(ss) => ss.iter().collect(),
        CoreStmt::Skip => Vec::new(),
        other => vec![other],
    }
}

/// Port of the OCaml `optimize_stmt` (paper Figure 22), returning a list.
fn optimize_stmt(stmt: &CoreStmt, config: OptConfig, names: &mut NameGen) -> Vec<CoreStmt> {
    match stmt {
        CoreStmt::Skip => Vec::new(),
        CoreStmt::Seq(_) => optimize_list(stmt, config, names),
        CoreStmt::Assign { .. }
        | CoreStmt::Unassign { .. }
        | CoreStmt::Hadamard(_)
        | CoreStmt::Swap(_, _)
        | CoreStmt::MemSwap { .. }
        | CoreStmt::Alloc { .. }
        | CoreStmt::Dealloc { .. } => vec![stmt.clone()],
        CoreStmt::With { setup, body } => vec![CoreStmt::With {
            setup: Box::new(CoreStmt::seq(optimize_list(setup, config, names))),
            body: Box::new(CoreStmt::seq(optimize_list(body, config, names))),
        }],
        CoreStmt::If { cond, body } => {
            let mut out = Vec::new();
            for member in members(body) {
                match member {
                    // Conditional narrowing:
                    // if x { with {s1} do {s2} } ⇝ with {s1} do { if x {s2} }.
                    CoreStmt::With { setup, body: inner } if config.narrowing => {
                        let narrowed_if = CoreStmt::If {
                            cond: cond.clone(),
                            body: inner.clone(),
                        };
                        out.push(CoreStmt::With {
                            setup: Box::new(CoreStmt::seq(optimize_list(setup, config, names))),
                            body: Box::new(CoreStmt::seq(optimize_stmt(
                                &narrowed_if,
                                config,
                                names,
                            ))),
                        });
                    }
                    // Conditional flattening:
                    // if x { if y { s } } ⇝ with { z ← x && y } do { if z { s } }.
                    CoreStmt::If {
                        cond: inner_cond,
                        body: inner_body,
                    } if config.flattening => {
                        let z = names.fresh("z");
                        let flattened_if = CoreStmt::If {
                            cond: z.clone(),
                            body: inner_body.clone(),
                        };
                        out.push(CoreStmt::With {
                            setup: Box::new(CoreStmt::Assign {
                                var: z,
                                expr: CoreExpr::Bin(
                                    CoreBinOp::And,
                                    cond.clone(),
                                    inner_cond.clone(),
                                ),
                            }),
                            body: Box::new(CoreStmt::seq(optimize_stmt(
                                &flattened_if,
                                config,
                                names,
                            ))),
                        });
                    }
                    other => {
                        out.push(CoreStmt::If {
                            cond: cond.clone(),
                            body: Box::new(CoreStmt::seq(optimize_stmt(other, config, names))),
                        });
                    }
                }
            }
            out
        }
    }
}

fn optimize_list(stmt: &CoreStmt, config: OptConfig, names: &mut NameGen) -> Vec<CoreStmt> {
    members(stmt)
        .into_iter()
        .flat_map(|s| optimize_stmt(s, config, names))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tower::Symbol;

    fn assign_bool(var: &str, b: bool) -> CoreStmt {
        CoreStmt::Assign {
            var: Symbol::new(var),
            expr: CoreExpr::Value(tower::CoreValue::Bool(b)),
        }
    }

    fn if_stmt(cond: &str, body: CoreStmt) -> CoreStmt {
        CoreStmt::If {
            cond: Symbol::new(cond),
            body: Box::new(body),
        }
    }

    /// Maximum `if`-nesting depth of a statement.
    fn max_if_depth(stmt: &CoreStmt) -> usize {
        match stmt {
            CoreStmt::Seq(ss) => ss.iter().map(max_if_depth).max().unwrap_or(0),
            CoreStmt::If { body, .. } => 1 + max_if_depth(body),
            CoreStmt::With { setup, body } => max_if_depth(setup).max(max_if_depth(body)),
            _ => 0,
        }
    }

    #[test]
    fn flattening_reduces_nesting_to_one() {
        // if a { if b { if c { x <- true } } }
        let nested = if_stmt("a", if_stmt("b", if_stmt("c", assign_bool("x", true))));
        let mut names = NameGen::new();
        let optimized = optimize(&nested, OptConfig::spire(), &mut names);
        assert_eq!(
            max_if_depth(&optimized),
            1,
            "got:\n{}",
            tower::pretty(&optimized)
        );
    }

    #[test]
    fn narrowing_moves_if_into_do_block() {
        // if x { with { t <- true } do { y <- t } }.
        let stmt = if_stmt(
            "x",
            CoreStmt::With {
                setup: Box::new(assign_bool("t", true)),
                body: Box::new(CoreStmt::Assign {
                    var: Symbol::new("y"),
                    expr: CoreExpr::Var(Symbol::new("t")),
                }),
            },
        );
        let mut names = NameGen::new();
        let optimized = optimize(&stmt, OptConfig::narrowing_only(), &mut names);
        // Result: with { t <- true } do { if x { y <- t } }.
        let CoreStmt::With { setup, body } = &optimized else {
            panic!("expected with at top, got:\n{}", tower::pretty(&optimized));
        };
        assert!(matches!(**setup, CoreStmt::Assign { .. }));
        assert!(matches!(**body, CoreStmt::If { .. }));
    }

    #[test]
    fn sequence_under_if_is_split() {
        let stmt = if_stmt(
            "x",
            CoreStmt::seq(vec![assign_bool("a", true), assign_bool("b", true)]),
        );
        let mut names = NameGen::new();
        let optimized = optimize(&stmt, OptConfig::spire(), &mut names);
        let CoreStmt::Seq(parts) = &optimized else {
            panic!(
                "expected split sequence, got:\n{}",
                tower::pretty(&optimized)
            );
        };
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| matches!(p, CoreStmt::If { .. })));
    }

    #[test]
    fn flattening_only_expands_withs_first() {
        // if a { with { t } do { if b { s } } }: flattening alone must still
        // reach the inner if (via with-expansion).
        let stmt = if_stmt(
            "a",
            CoreStmt::With {
                setup: Box::new(assign_bool("t", true)),
                body: Box::new(if_stmt("b", assign_bool("s", true))),
            },
        );
        let mut names = NameGen::new();
        let optimized = optimize(&stmt, OptConfig::flattening_only(), &mut names);
        assert_eq!(
            max_if_depth(&optimized),
            1,
            "got:\n{}",
            tower::pretty(&optimized)
        );
    }

    #[test]
    fn narrowing_alone_keeps_nested_ifs() {
        let nested = if_stmt("a", if_stmt("b", assign_bool("x", true)));
        let mut names = NameGen::new();
        let optimized = optimize(&nested, OptConfig::narrowing_only(), &mut names);
        assert_eq!(max_if_depth(&optimized), 2);
    }

    #[test]
    fn none_is_identity() {
        let nested = if_stmt("a", if_stmt("b", assign_bool("x", true)));
        let mut names = NameGen::new();
        assert_eq!(optimize(&nested, OptConfig::none(), &mut names), nested);
    }

    #[test]
    fn figure_3_to_figure_7_shape() {
        // Paper Figure 3:
        // if x { if y { with { t <- z } do { if z { a <- ...; b <- ... } } } }
        let fig3 = if_stmt(
            "x",
            if_stmt(
                "y",
                CoreStmt::With {
                    setup: Box::new(CoreStmt::Assign {
                        var: Symbol::new("t"),
                        expr: CoreExpr::Var(Symbol::new("z")),
                    }),
                    body: Box::new(if_stmt(
                        "z",
                        CoreStmt::seq(vec![
                            CoreStmt::Assign {
                                var: Symbol::new("a"),
                                expr: CoreExpr::Not(Symbol::new("t")),
                            },
                            assign_bool("b", true),
                        ]),
                    )),
                },
            ),
        );
        let mut names = NameGen::new();
        let optimized = optimize(&fig3, OptConfig::spire(), &mut names);
        // Figure 7: a single level of if remains, and the t <- z setup is
        // outside every if.
        assert_eq!(
            max_if_depth(&optimized),
            1,
            "got:\n{}",
            tower::pretty(&optimized)
        );
        // The `t <- z` assignment must appear un-controlled: find it.
        fn setup_has_uncontrolled_t(stmt: &CoreStmt, under_if: bool) -> bool {
            match stmt {
                CoreStmt::Seq(ss) => ss.iter().any(|s| setup_has_uncontrolled_t(s, under_if)),
                CoreStmt::If { body, .. } => setup_has_uncontrolled_t(body, true),
                CoreStmt::With { setup, body } => {
                    setup_has_uncontrolled_t(setup, under_if)
                        || setup_has_uncontrolled_t(body, under_if)
                }
                CoreStmt::Assign { var, expr } => {
                    var == &Symbol::new("t") && matches!(expr, CoreExpr::Var(_)) && !under_if
                }
                _ => false,
            }
        }
        assert!(
            setup_has_uncontrolled_t(&optimized, false),
            "t <- z should escape all ifs:\n{}",
            tower::pretty(&optimized)
        );
    }

    #[test]
    fn optimization_is_idempotent_on_flat_programs() {
        let stmt = CoreStmt::seq(vec![
            assign_bool("a", true),
            if_stmt("a", assign_bool("b", true)),
        ]);
        let mut names = NameGen::new();
        let once = optimize(&stmt, OptConfig::spire(), &mut names);
        let twice = optimize(&once, OptConfig::spire(), &mut names);
        assert_eq!(once, twice);
    }
}
