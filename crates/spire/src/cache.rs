//! Content-addressed compile cache.
//!
//! The experiment matrix of the paper's evaluation (12 benchmarks ×
//! depths 2..=10 × every optimization configuration) compiles the same
//! `(source, entry, depth, WordConfig, CompileOptions)` tuples over and
//! over: every figure regenerator sweeps the same depth range, and the
//! tables re-compile the programs the figures already compiled. A
//! [`CompileCache`] memoizes those compilations behind a *content
//! address* — a stable 128-bit FNV-1a hash of the source text and every
//! input that affects the compiler's output — so a repeated configuration
//! returns its [`Compiled`] program as a cheap `Arc` clone.
//!
//! The cache is thread-safe and designed for two fan-out shapes: the
//! batch parallelism of `bench-suite`'s runner and the request
//! parallelism of `spire-serve`'s event loop. Lookups take a
//! short-lived lock, compilation itself runs outside the lock (two
//! threads racing on the same key may both compile; the duplicate
//! insert is benign and the results are identical because compilation
//! is deterministic), and hit and miss counts are observable through
//! [`CompileCache::stats`]. Compilation errors are *not* cached; a
//! failing configuration fails again on the next call.
//!
//! Internally the map is **lock-striped**: entries are sharded into
//! [`SHARDS`] independent segments by the high bits of the
//! content-address, each behind its own mutex, so cache *hits* on
//! different keys never contend — under the serving workload nearly
//! every request is a hit, and a single mutex would serialize the whole
//! fleet of worker threads through one cache line. Each shard carries
//! its own hit/miss counters (updated under that shard's lock, so a
//! shard's counters are always coherent with its entries);
//! [`CompileCache::stats`] locks *all* shards before reading any of
//! them, keeping the full snapshot consistent.
//!
//! # Example
//!
//! ```
//! use spire::cache::CompileCache;
//! use spire::CompileOptions;
//! use tower::WordConfig;
//!
//! let cache = CompileCache::new();
//! let src = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";
//! let args = (src, "inc", 0, WordConfig::paper_default());
//! let first = cache.get_or_compile(args.0, args.1, args.2, args.3, &CompileOptions::spire())?;
//! let second = cache.get_or_compile(args.0, args.1, args.2, args.3, &CompileOptions::spire())?;
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), spire::SpireError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use qcirc::hash::Fnv1a128;
use tower::WordConfig;

use crate::error::SpireError;
use crate::layout::AllocPolicy;
use crate::pipeline::{compile_source, CompileOptions, Compiled};

/// A stable content address for one compilation.
///
/// The key covers everything that determines a [`Compiled`] program: the
/// source text, the entry function, the recursion depth, the register
/// widths ([`WordConfig`]), and the backend options ([`CompileOptions`] —
/// both the optimization configuration and the allocation policy).
/// Hashing is [`Fnv1a128`] over a length-prefixed serialization, so the
/// key is stable across processes and platforms (unlike `std`'s
/// `DefaultHasher`) and two different field values can never collide by
/// concatenation.
///
/// Downstream memo layers key *emitted circuits* by
/// [`Circuit::content_hash`](qcirc::Circuit::content_hash) instead; that
/// hash is likewise defined over the logical gate stream (not the packed
/// storage layout), so both addressing schemes survive representation
/// changes such as the footprint-indexed gate stream refactor unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Compute the content address of one compilation request.
    pub fn new(
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> Self {
        let mut hasher = Fnv1a128::new();
        hasher.write_len_prefixed(source.as_bytes());
        hasher.write_len_prefixed(entry.as_bytes());
        hasher.write_len_prefixed(&depth.to_le_bytes());
        hasher.write_len_prefixed(&config.uint_bits.to_le_bytes());
        hasher.write_len_prefixed(&config.ptr_bits.to_le_bytes());
        hasher.write_len_prefixed(&[
            options.opt.flattening as u8,
            options.opt.narrowing as u8,
            match options.policy {
                AllocPolicy::Conservative => 0,
                AllocPolicy::Aggressive => 1,
            },
        ]);
        CacheKey(hasher.finish())
    }

    /// The raw 128-bit hash value.
    pub fn value(&self) -> u128 {
        self.0
    }

    /// The index of the cache shard this key lives in: the hash's high
    /// bits, so striping composes with any downstream use of the low
    /// bits (e.g. `HashMap` bucketing inside a shard).
    pub fn shard(&self) -> usize {
        (self.0 >> (128 - SHARD_BITS)) as usize
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Counters observed on a [`CompileCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Distinct compiled programs currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Counter difference since an earlier snapshot (entry count is the
    /// current value, not a difference).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} cached)",
            self.hits, self.misses, self.entries
        )
    }
}

/// Number of bits of the content address selecting a cache shard.
const SHARD_BITS: u32 = 4;

/// Number of lock-striped shards in a [`CompileCache`].
pub const SHARDS: usize = 1 << SHARD_BITS;

/// A thread-safe, content-addressed cache of compiled programs,
/// lock-striped into [`SHARDS`] segments by [`CacheKey::shard`].
///
/// Each shard's hit/miss counters live under the same lock as that
/// shard's entry map, so per-shard counters are never torn — a miss
/// already counted whose entry is not yet visible cannot be observed.
/// [`CompileCache::stats`] acquires every shard lock before reading any
/// counter, so the cross-shard totals (hit rate, requests = hits +
/// misses, entry count) form one *consistent snapshot* exactly as they
/// did when the cache was a single mutex.
#[derive(Debug)]
pub struct CompileCache {
    shards: [Mutex<CacheShard>; SHARDS],
}

#[derive(Debug, Default)]
struct CacheShard {
    entries: HashMap<u128, Arc<Compiled>>,
    hits: u64,
    misses: u64,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache {
            shards: std::array::from_fn(|_| Mutex::new(CacheShard::default())),
        }
    }
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    fn shard(&self, key: CacheKey) -> &Mutex<CacheShard> {
        &self.shards[key.shard()]
    }

    /// The process-wide shared cache.
    ///
    /// The experiment regenerators in `bench-suite` route every
    /// compilation through this instance, so sweeps that revisit a
    /// configuration (and a second pipeline run in the same process) get
    /// cache hits without threading a cache handle through every API.
    pub fn global() -> &'static CompileCache {
        static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
        GLOBAL.get_or_init(CompileCache::new)
    }

    /// Return the cached compilation for this request, compiling on miss.
    ///
    /// # Errors
    ///
    /// Propagates [`compile_source`] errors; failures are never cached.
    pub fn get_or_compile(
        &self,
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> Result<Arc<Compiled>, SpireError> {
        let key = CacheKey::new(source, entry, depth, config, options);
        if let Some(found) = self.lookup(key) {
            return Ok(found);
        }
        let compiled = Arc::new(compile_source(source, entry, depth, config, options)?);
        let mut shard = self.shard(key).lock().expect("compile cache poisoned");
        shard.misses += 1;
        // A racing thread may have inserted the same key; keep the first
        // insert so existing Arcs stay shared.
        Ok(shard.entries.entry(key.0).or_insert(compiled).clone())
    }

    /// Look up a key without compiling. Counts a hit when present.
    pub fn lookup(&self, key: CacheKey) -> Option<Arc<Compiled>> {
        let mut shard = self.shard(key).lock().expect("compile cache poisoned");
        let found = shard.entries.get(&key.0).cloned();
        if found.is_some() {
            shard.hits += 1;
        }
        found
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("compile cache poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached program (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("compile cache poisoned")
                .entries
                .clear();
        }
    }

    /// A consistent snapshot of the hit/miss/entry counters: every shard
    /// lock is held simultaneously while the counters are read, so
    /// derived quantities (hit rate, requests = hits + misses) are
    /// internally coherent even while other threads compile — exactly
    /// the guarantee the pre-striping single-lock cache gave.
    pub fn stats(&self) -> CacheStats {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("compile cache poisoned"))
            .collect();
        let mut stats = CacheStats::default();
        for shard in &guards {
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.entries += shard.entries.len();
        }
        stats
    }
}

/// Compile through the process-wide [`CompileCache::global`] cache.
///
/// Drop-in cached variant of [`compile_source`]; returns a shared handle
/// to the (immutable) compilation.
///
/// # Errors
///
/// Propagates [`compile_source`] errors; failures are never cached.
pub fn compile_source_cached(
    source: &str,
    entry: &str,
    depth: i64,
    config: WordConfig,
    options: &CompileOptions,
) -> Result<Arc<Compiled>, SpireError> {
    CompileCache::global().get_or_compile(source, entry, depth, config, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";

    #[test]
    fn keys_are_stable_and_sensitive() {
        let base = CacheKey::new(
            SRC,
            "inc",
            0,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        );
        // Stable: same inputs, same key (also across processes — FNV-1a).
        assert_eq!(
            base,
            CacheKey::new(
                SRC,
                "inc",
                0,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
        );
        // Length-prefixing prevents concatenation collisions.
        assert_ne!(
            CacheKey::new("ab", "c", 0, WordConfig::tiny(), &CompileOptions::spire()),
            CacheKey::new("a", "bc", 0, WordConfig::tiny(), &CompileOptions::spire()),
        );
    }

    #[test]
    fn hit_returns_shared_arc() {
        let cache = CompileCache::new();
        let options = CompileOptions::spire();
        let first = cache
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &options)
            .unwrap();
        let second = cache
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &options)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn keys_spread_across_shards() {
        // The shard index is the hash's high bits: distinct sources land
        // in more than one shard, so striping actually distributes load.
        let shards: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                CacheKey::new(
                    &format!("fun f{i}(x: uint) -> uint {{ return x; }}"),
                    "f",
                    0,
                    WordConfig::tiny(),
                    &CompileOptions::spire(),
                )
                .shard()
            })
            .collect();
        assert!(
            shards.len() > SHARDS / 2,
            "only {} shards hit",
            shards.len()
        );
        assert!(shards.iter().all(|&s| s < SHARDS));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = CompileCache::new();
        for _ in 0..2 {
            assert!(cache
                .get_or_compile(
                    "fun broken(",
                    "broken",
                    0,
                    WordConfig::tiny(),
                    &CompileOptions::baseline(),
                )
                .is_err());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 0);
    }
}
