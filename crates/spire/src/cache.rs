//! Content-addressed compile cache.
//!
//! The experiment matrix of the paper's evaluation (12 benchmarks ×
//! depths 2..=10 × every optimization configuration) compiles the same
//! `(source, entry, depth, WordConfig, CompileOptions)` tuples over and
//! over: every figure regenerator sweeps the same depth range, and the
//! tables re-compile the programs the figures already compiled. A
//! [`CompileCache`] memoizes those compilations behind a *content
//! address* — a stable 128-bit FNV-1a hash of the source text and every
//! input that affects the compiler's output — so a repeated configuration
//! returns its [`Compiled`] program as a cheap `Arc` clone.
//!
//! The cache is thread-safe and designed for two fan-out shapes: the
//! batch parallelism of `bench-suite`'s runner and the request
//! parallelism of `spire-serve`'s event loop. Lookups take a
//! short-lived lock, compilation itself runs outside the lock (two
//! threads racing on the same key may both compile; the duplicate
//! insert is benign and the results are identical because compilation
//! is deterministic), and hit and miss counts are observable through
//! [`CompileCache::stats`]. Compilation errors are *not* cached; a
//! failing configuration fails again on the next call.
//!
//! Internally the map is **lock-striped**: entries are sharded into
//! [`SHARDS`] independent segments by the high bits of the
//! content-address, each behind its own mutex, so cache *hits* on
//! different keys never contend — under the serving workload nearly
//! every request is a hit, and a single mutex would serialize the whole
//! fleet of worker threads through one cache line. Each shard carries
//! its own hit/miss counters (updated under that shard's lock, so a
//! shard's counters are always coherent with its entries);
//! [`CompileCache::stats`] locks *all* shards before reading any of
//! them, keeping the full snapshot consistent.
//!
//! A cache may carry a **byte budget**
//! ([`CompileCache::with_budget`]): sustained distinct-source traffic
//! must degrade to cache misses, not unbounded memory growth. The
//! budget is split evenly across the shards, each shard accounts the
//! approximate resident bytes of its entries
//! ([`Compiled::approx_bytes`]), and going over budget evicts via the
//! **second-chance (clock)** policy: entries cycle through a queue with
//! a referenced bit that any hit sets; an unreferenced entry at the
//! front is evicted, a referenced one is unset and sent to the back.
//! Eviction changes only *which* keys miss — a budgeted cache returns
//! the same compilations an unbudgeted one would, because compilation
//! is deterministic (`cache_props.rs` pins this equivalence).
//!
//! # Example
//!
//! ```
//! use spire::cache::CompileCache;
//! use spire::CompileOptions;
//! use tower::WordConfig;
//!
//! let cache = CompileCache::new();
//! let src = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";
//! let args = (src, "inc", 0, WordConfig::paper_default());
//! let first = cache.get_or_compile(args.0, args.1, args.2, args.3, &CompileOptions::spire())?;
//! let second = cache.get_or_compile(args.0, args.1, args.2, args.3, &CompileOptions::spire())?;
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), spire::SpireError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use qcirc::hash::Fnv1a128;
use tower::WordConfig;

use crate::error::SpireError;
use crate::layout::AllocPolicy;
use crate::pipeline::{compile_source, CompileOptions, Compiled};

/// A stable content address for one compilation.
///
/// The key covers everything that determines a [`Compiled`] program: the
/// source text, the entry function, the recursion depth, the register
/// widths ([`WordConfig`]), and the backend options ([`CompileOptions`] —
/// both the optimization configuration and the allocation policy).
/// Hashing is [`Fnv1a128`] over a length-prefixed serialization, so the
/// key is stable across processes and platforms (unlike `std`'s
/// `DefaultHasher`) and two different field values can never collide by
/// concatenation.
///
/// Downstream memo layers key *emitted circuits* by
/// [`Circuit::content_hash`](qcirc::Circuit::content_hash) instead; that
/// hash is likewise defined over the logical gate stream (not the packed
/// storage layout), so both addressing schemes survive representation
/// changes such as the footprint-indexed gate stream refactor unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Compute the content address of one compilation request.
    pub fn new(
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> Self {
        let mut hasher = Fnv1a128::new();
        hasher.write_len_prefixed(source.as_bytes());
        hasher.write_len_prefixed(entry.as_bytes());
        hasher.write_len_prefixed(&depth.to_le_bytes());
        hasher.write_len_prefixed(&config.uint_bits.to_le_bytes());
        hasher.write_len_prefixed(&config.ptr_bits.to_le_bytes());
        hasher.write_len_prefixed(&[
            options.opt.flattening as u8,
            options.opt.narrowing as u8,
            match options.policy {
                AllocPolicy::Conservative => 0,
                AllocPolicy::Aggressive => 1,
            },
        ]);
        CacheKey(hasher.finish())
    }

    /// The raw 128-bit hash value.
    pub fn value(&self) -> u128 {
        self.0
    }

    /// The index of the cache shard this key lives in: the hash's high
    /// bits, so striping composes with any downstream use of the low
    /// bits (e.g. `HashMap` bucketing inside a shard).
    pub fn shard(&self) -> usize {
        (self.0 >> (128 - SHARD_BITS)) as usize
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Counters observed on a [`CompileCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Distinct compiled programs currently stored.
    pub entries: usize,
    /// Approximate bytes resident across all shards.
    pub resident_bytes: u64,
    /// Entries evicted by the second-chance policy.
    pub evictions: u64,
    /// Total byte budget across all shards (0 = unbounded).
    pub budget_bytes: u64,
}

impl CacheStats {
    /// Counter difference since an earlier snapshot (entry count,
    /// resident bytes, and budget are current values, not differences).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            resident_bytes: self.resident_bytes,
            evictions: self.evictions - earlier.evictions,
            budget_bytes: self.budget_bytes,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} cached)",
            self.hits, self.misses, self.entries
        )
    }
}

/// Number of bits of the content address selecting a cache shard.
const SHARD_BITS: u32 = 4;

/// Number of lock-striped shards in a [`CompileCache`].
pub const SHARDS: usize = 1 << SHARD_BITS;

/// A thread-safe, content-addressed cache of compiled programs,
/// lock-striped into [`SHARDS`] segments by [`CacheKey::shard`].
///
/// Each shard's hit/miss counters live under the same lock as that
/// shard's entry map, so per-shard counters are never torn — a miss
/// already counted whose entry is not yet visible cannot be observed.
/// [`CompileCache::stats`] acquires every shard lock before reading any
/// counter, so the cross-shard totals (hit rate, requests = hits +
/// misses, entry count) form one *consistent snapshot* exactly as they
/// did when the cache was a single mutex.
#[derive(Debug)]
pub struct CompileCache {
    shards: [Mutex<CacheShard>; SHARDS],
}

/// One cached compilation plus its eviction bookkeeping.
#[derive(Debug)]
struct ShardEntry {
    value: Arc<Compiled>,
    /// Accounted weight, frozen at insert ([`Compiled::approx_bytes`]).
    bytes: u64,
    /// Second-chance bit: set by every hit, cleared by a clock pass.
    referenced: bool,
}

#[derive(Debug, Default)]
struct CacheShard {
    entries: HashMap<u128, ShardEntry>,
    /// Clock order for second-chance eviction (only used when budgeted).
    clock: VecDeque<u128>,
    /// Per-shard byte budget; 0 = unbounded.
    budget: u64,
    resident_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheShard {
    /// Insert (or adopt a racing insert of) `value` under `key`,
    /// then evict down to budget.
    fn insert(&mut self, key: u128, value: Arc<Compiled>) -> Arc<Compiled> {
        if let Some(existing) = self.entries.get(&key) {
            // A racing thread inserted the same key; keep the first
            // insert so existing Arcs stay shared.
            return Arc::clone(&existing.value);
        }
        let bytes = value.approx_bytes();
        self.entries.insert(
            key,
            ShardEntry {
                value: Arc::clone(&value),
                bytes,
                referenced: true,
            },
        );
        self.clock.push_back(key);
        self.resident_bytes += bytes;
        self.evict_to_budget();
        value
    }

    /// Second-chance eviction until resident bytes fit the budget:
    /// rotate referenced entries (clearing their bit), evict the first
    /// unreferenced one. Terminates because every rotation clears a
    /// bit and every eviction shrinks the clock.
    fn evict_to_budget(&mut self) {
        if self.budget == 0 {
            return;
        }
        while self.resident_bytes > self.budget {
            let Some(key) = self.clock.pop_front() else {
                break;
            };
            let Some(entry) = self.entries.get_mut(&key) else {
                // Stale clock slot from a clear(); skip it.
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                self.clock.push_back(key);
            } else {
                let evicted = self.entries.remove(&key).expect("entry just seen");
                self.resident_bytes -= evicted.bytes;
                self.evictions += 1;
            }
        }
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache {
            shards: std::array::from_fn(|_| Mutex::new(CacheShard::default())),
        }
    }
}

impl CompileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// An empty cache holding at most ~`total_bytes` of compilations
    /// (approximate accounting via [`Compiled::approx_bytes`]), split
    /// evenly across the shards and enforced by second-chance
    /// eviction. `0` means unbounded (same as [`CompileCache::new`]).
    pub fn with_budget(total_bytes: u64) -> Self {
        let cache = CompileCache::default();
        if total_bytes > 0 {
            // Every shard gets an equal slice; at least one byte so a
            // tiny budget still bounds (to roughly one entry per shard)
            // rather than silently meaning "unbounded".
            let per_shard = (total_bytes / SHARDS as u64).max(1);
            for shard in &cache.shards {
                shard.lock().expect("compile cache poisoned").budget = per_shard;
            }
        }
        cache
    }

    fn shard(&self, key: CacheKey) -> &Mutex<CacheShard> {
        &self.shards[key.shard()]
    }

    /// The process-wide shared cache.
    ///
    /// The experiment regenerators in `bench-suite` route every
    /// compilation through this instance, so sweeps that revisit a
    /// configuration (and a second pipeline run in the same process) get
    /// cache hits without threading a cache handle through every API.
    pub fn global() -> &'static CompileCache {
        static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
        GLOBAL.get_or_init(CompileCache::new)
    }

    /// Return the cached compilation for this request, compiling on miss.
    ///
    /// # Errors
    ///
    /// Propagates [`compile_source`] errors; failures are never cached.
    pub fn get_or_compile(
        &self,
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> Result<Arc<Compiled>, SpireError> {
        let key = CacheKey::new(source, entry, depth, config, options);
        if let Some(found) = self.lookup(key) {
            return Ok(found);
        }
        let compiled = Arc::new(compile_source(source, entry, depth, config, options)?);
        let mut shard = self.shard(key).lock().expect("compile cache poisoned");
        shard.misses += 1;
        Ok(shard.insert(key.0, compiled))
    }

    /// Look up a key without compiling. Counts a hit (and marks the
    /// entry recently used) when present.
    pub fn lookup(&self, key: CacheKey) -> Option<Arc<Compiled>> {
        let mut shard = self.shard(key).lock().expect("compile cache poisoned");
        let found = shard.entries.get_mut(&key.0).map(|entry| {
            entry.referenced = true;
            Arc::clone(&entry.value)
        });
        if found.is_some() {
            shard.hits += 1;
        }
        found
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("compile cache poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached program (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("compile cache poisoned");
            shard.entries.clear();
            shard.clock.clear();
            shard.resident_bytes = 0;
        }
    }

    /// A consistent snapshot of the hit/miss/entry counters: every shard
    /// lock is held simultaneously while the counters are read, so
    /// derived quantities (hit rate, requests = hits + misses) are
    /// internally coherent even while other threads compile — exactly
    /// the guarantee the pre-striping single-lock cache gave.
    pub fn stats(&self) -> CacheStats {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("compile cache poisoned"))
            .collect();
        let mut stats = CacheStats::default();
        for shard in &guards {
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.entries += shard.entries.len();
            stats.resident_bytes += shard.resident_bytes;
            stats.evictions += shard.evictions;
            stats.budget_bytes += shard.budget;
        }
        stats
    }
}

/// Compile through the process-wide [`CompileCache::global`] cache.
///
/// Drop-in cached variant of [`compile_source`]; returns a shared handle
/// to the (immutable) compilation.
///
/// # Errors
///
/// Propagates [`compile_source`] errors; failures are never cached.
pub fn compile_source_cached(
    source: &str,
    entry: &str,
    depth: i64,
    config: WordConfig,
    options: &CompileOptions,
) -> Result<Arc<Compiled>, SpireError> {
    CompileCache::global().get_or_compile(source, entry, depth, config, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";

    #[test]
    fn keys_are_stable_and_sensitive() {
        let base = CacheKey::new(
            SRC,
            "inc",
            0,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        );
        // Stable: same inputs, same key (also across processes — FNV-1a).
        assert_eq!(
            base,
            CacheKey::new(
                SRC,
                "inc",
                0,
                WordConfig::paper_default(),
                &CompileOptions::spire(),
            )
        );
        // Length-prefixing prevents concatenation collisions.
        assert_ne!(
            CacheKey::new("ab", "c", 0, WordConfig::tiny(), &CompileOptions::spire()),
            CacheKey::new("a", "bc", 0, WordConfig::tiny(), &CompileOptions::spire()),
        );
    }

    #[test]
    fn hit_returns_shared_arc() {
        let cache = CompileCache::new();
        let options = CompileOptions::spire();
        let first = cache
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &options)
            .unwrap();
        let second = cache
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &options)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn keys_spread_across_shards() {
        // The shard index is the hash's high bits: distinct sources land
        // in more than one shard, so striping actually distributes load.
        let shards: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                CacheKey::new(
                    &format!("fun f{i}(x: uint) -> uint {{ return x; }}"),
                    "f",
                    0,
                    WordConfig::tiny(),
                    &CompileOptions::spire(),
                )
                .shard()
            })
            .collect();
        assert!(
            shards.len() > SHARDS / 2,
            "only {} shards hit",
            shards.len()
        );
        assert!(shards.iter().all(|&s| s < SHARDS));
    }

    #[test]
    fn budget_bounds_resident_bytes_and_second_chance_keeps_hot_keys() {
        // A budget roughly two entries wide: inserting many distinct
        // programs must evict, never exceed the accounted budget, and
        // keep serving correct results.
        let probe = CompileCache::new();
        let one = probe
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &CompileOptions::spire())
            .unwrap();
        let per_entry = one.approx_bytes();

        let cache = CompileCache::with_budget(per_entry * 2 * SHARDS as u64);
        let options = CompileOptions::spire();
        for i in 0..48usize {
            let src = format!("fun f(x: uint) -> uint {{ let y <- x + {i}; return y; }}");
            cache
                .get_or_compile(&src, "f", 0, WordConfig::tiny(), &options)
                .unwrap();
            let stats = cache.stats();
            assert!(
                stats.resident_bytes <= stats.budget_bytes,
                "resident {} exceeds budget {} after insert {i}",
                stats.resident_bytes,
                stats.budget_bytes
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "48 distinct programs must evict");
        assert!(stats.entries < 48);
        // Re-requesting an evicted program recompiles correctly: the
        // budget costs misses, never wrong answers.
        let again = cache
            .get_or_compile(SRC, "inc", 0, WordConfig::tiny(), &options)
            .unwrap();
        assert_eq!(again.t_complexity(), one.t_complexity());
    }

    #[test]
    fn unbudgeted_cache_reports_zero_budget_and_never_evicts() {
        let cache = CompileCache::new();
        let options = CompileOptions::spire();
        for i in 0..8usize {
            let src = format!("fun g(x: uint) -> uint {{ let y <- x + {i}; return y; }}");
            cache
                .get_or_compile(&src, "g", 0, WordConfig::tiny(), &options)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.budget_bytes, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 8);
        assert!(stats.resident_bytes > 0, "resident bytes are accounted");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = CompileCache::new();
        for _ in 0..2 {
            assert!(cache
                .get_or_compile(
                    "fun broken(",
                    "broken",
                    0,
                    WordConfig::tiny(),
                    &CompileOptions::baseline(),
                )
                .is_err());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 0);
    }
}
