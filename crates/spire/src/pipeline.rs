//! The end-to-end Spire compilation pipeline (paper Section 7):
//! front end → program-level optimizations → with-expansion → register
//! allocation → abstract circuit → concrete MCX circuit.

use qcirc::{Circuit, CountingSink, GateHistogram, GateSink};
use tower::{
    front_end, typecheck_with, CompilationUnit, CoreStmt, Strictness, Symbol, Type, TypeInfo,
    TypeTable, WordConfig,
};

use crate::abstract_circuit::AInstr;
use crate::cost::CostEnv;
use crate::error::SpireError;
use crate::layout::{layout, AllocPolicy, Layout};
use crate::opt::{optimize, OptConfig};
use crate::select::select;

/// Backend options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Which program-level optimizations to run.
    pub opt: OptConfig,
    /// Register-allocation policy.
    pub policy: AllocPolicy,
}

impl CompileOptions {
    /// Full Spire optimizations, sound allocation.
    pub fn spire() -> Self {
        CompileOptions {
            opt: OptConfig::spire(),
            policy: AllocPolicy::Conservative,
        }
    }

    /// No program-level optimization (baseline Tower), sound allocation.
    pub fn baseline() -> Self {
        CompileOptions {
            opt: OptConfig::none(),
            policy: AllocPolicy::Conservative,
        }
    }

    /// Baseline with a specific optimization configuration.
    pub fn with_opt(opt: OptConfig) -> Self {
        CompileOptions {
            opt,
            policy: AllocPolicy::Conservative,
        }
    }
}

/// A fully compiled program: optimized IR, layout, and abstract circuit.
///
/// The concrete MCX circuit is produced on demand ([`Compiled::emit`] /
/// [`Compiled::emit_into`]); gate counts come from the exact cost model
/// ([`Compiled::histogram`]) without materializing gates.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The post-optimization (with-ful) core IR.
    pub ir: CoreStmt,
    /// Machine layout.
    pub layout: Layout,
    /// The abstract circuit.
    pub instrs: Vec<AInstr>,
    /// Entry parameters.
    pub inputs: Vec<(Symbol, Type)>,
    /// The entry function's return variable.
    pub ret_var: Symbol,
    /// Type table.
    pub table: TypeTable,
    /// Variable types of the optimized program.
    pub types: TypeInfo,
}

impl Compiled {
    /// Exact gate histogram (closed form over the abstract circuit).
    pub fn histogram(&self) -> GateHistogram {
        let mut hist = GateHistogram::new();
        for instr in &self.instrs {
            hist += instr.histogram();
        }
        hist
    }

    /// T-complexity under the Figure 5/6 decompositions.
    pub fn t_complexity(&self) -> u64 {
        self.histogram().t_complexity()
    }

    /// MCX-complexity (idealized gate count).
    pub fn mcx_complexity(&self) -> u64 {
        self.histogram().mcx_complexity()
    }

    /// Approximate resident heap bytes of this compilation: the weight
    /// a byte-budgeted [`CompileCache`](crate::CompileCache) accounts
    /// per entry. Dominated by the abstract instruction stream; the
    /// pointer-rich IR and type structures are charged a flat
    /// surcharge rather than walked.
    pub fn approx_bytes(&self) -> u64 {
        let base = std::mem::size_of::<Compiled>() as u64;
        let instrs = (self.instrs.capacity() * std::mem::size_of::<AInstr>()) as u64;
        let inputs = (self.inputs.capacity() * std::mem::size_of::<(Symbol, Type)>()) as u64;
        base + instrs + inputs + 1024
    }

    /// Stream the concrete MCX circuit into a sink.
    pub fn emit_into<S: GateSink>(&self, sink: &mut S) {
        let mut buffer = Vec::new();
        for instr in &self.instrs {
            instr.emit_with(&mut buffer, sink);
        }
    }

    /// Materialize the concrete MCX circuit.
    pub fn emit(&self) -> Circuit {
        let mut span = spire_trace::span("emit");
        // The cost model's MCX-complexity is the exact emitted gate count
        // (Theorem 5.1, asserted by `histogram_matches_emitted_circuit`),
        // so the packed stream can be sized up front.
        let mut circuit = Circuit::with_capacity(
            self.layout.total_qubits,
            self.histogram().mcx_complexity() as usize,
        );
        self.emit_into(&mut circuit);
        span.attr("gates", circuit.len() as u64);
        span.attr("qubits", u64::from(circuit.num_qubits()));
        circuit
    }

    /// Count the emitted circuit's gates by streaming (no materialization).
    pub fn counted_histogram(&self) -> GateHistogram {
        let mut sink = CountingSink::new();
        self.emit_into(&mut sink);
        sink.into_histogram()
    }

    /// Qubits used by the MCX-level circuit.
    pub fn qubits(&self) -> u32 {
        self.layout.total_qubits
    }

    /// Qubits after decomposing to Toffoli gates (adds the Figure 5
    /// ancillas for the widest MCX).
    pub fn qubits_after_decomposition(&self) -> u32 {
        let hist = self.histogram();
        let max_controls = hist.max_controls() as u32;
        self.layout.total_qubits + max_controls.saturating_sub(2)
    }

    /// A [`CostEnv`] for this program's cost analyses.
    pub fn cost_env(&self) -> CostEnv<'_> {
        CostEnv {
            layout: &self.layout,
            types: &self.types,
            table: &self.table,
        }
    }
}

/// Compile a type-checked front-end unit with the given options.
///
/// # Errors
///
/// Propagates optimization-output type errors (none occur for well-formed
/// inputs; re-checking implements the paper's soundness theorems as a
/// runtime check), layout errors, and selection errors.
pub fn compile_unit(
    unit: &CompilationUnit,
    options: &CompileOptions,
) -> Result<Compiled, SpireError> {
    let mut names = unit.names.clone();
    let ir = {
        let mut span = spire_trace::span("optimize");
        span.attr_label("config", options.opt.label());
        span.attr("stmts_before", unit.core.size() as u64);
        let ir = optimize(&unit.core, options.opt, &mut names);
        span.attr("stmts_after", ir.size() as u64);
        ir
    };
    // Theorems 6.3/6.5 say the rewrites preserve well-formedness; check it.
    let types = {
        let _span = spire_trace::span("recheck");
        typecheck_with(&ir, &unit.inputs, &unit.table, Strictness::Relaxed)
            .map_err(SpireError::Front)?
    };
    let expanded = {
        let _span = spire_trace::span("expand");
        ir.expand_with()
    };
    let layout = {
        let mut span = spire_trace::span("layout");
        let layout = layout(&expanded, &unit.inputs, &types, &unit.table, options.policy)?;
        span.attr("qubits", layout.total_qubits as u64);
        layout
    };
    let instrs = {
        let mut span = spire_trace::span("select");
        let instrs = select(&expanded, &layout, &types, &unit.table)?;
        span.attr("instrs", instrs.len() as u64);
        instrs
    };
    Ok(Compiled {
        ir,
        layout,
        instrs,
        inputs: unit.inputs.clone(),
        ret_var: unit.ret_var.clone(),
        table: unit.table.clone(),
        types,
    })
}

/// Compile Tower source text end to end.
///
/// # Errors
///
/// Propagates front-end and backend errors.
///
/// # Example
///
/// ```
/// use spire::{compile_source, CompileOptions};
/// use tower::WordConfig;
///
/// let src = r#"
///     fun inc(x: uint) -> uint {
///         let out <- x + 1;
///         return out;
///     }
/// "#;
/// let compiled = compile_source(
///     src, "inc", 0, WordConfig::paper_default(), &CompileOptions::spire(),
/// )?;
/// assert!(compiled.mcx_complexity() > 0);
/// # Ok::<(), spire::SpireError>(())
/// ```
pub fn compile_source(
    source: &str,
    entry: &str,
    depth: i64,
    config: WordConfig,
    options: &CompileOptions,
) -> Result<Compiled, SpireError> {
    let unit = front_end(source, entry, depth, config).map_err(SpireError::Front)?;
    compile_unit(&unit, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LENGTH_SRC: &str = r#"
        type list = (uint, ptr<list>);
        fun length[n](xs: ptr<list>, acc: uint) -> uint {
            with {
                let is_empty <- xs == null;
            } do if is_empty {
                let out <- acc;
            } else with {
                let temp <- default<list>;
                *xs <-> temp;
                let next <- temp.2;
                let r <- acc + 1;
            } do {
                let out <- length[n-1](next, r);
            }
            return out;
        }
    "#;

    fn compile_length(depth: i64, options: &CompileOptions) -> Compiled {
        compile_source(
            LENGTH_SRC,
            "length",
            depth,
            WordConfig::paper_default(),
            options,
        )
        .unwrap()
    }

    #[test]
    fn histogram_matches_emitted_circuit() {
        // Theorems 5.1/5.2: the cost model equals the compiled circuit.
        for options in [CompileOptions::baseline(), CompileOptions::spire()] {
            let compiled = compile_length(3, &options);
            assert_eq!(
                compiled.histogram(),
                compiled.counted_histogram(),
                "cost model must match emission ({})",
                options.opt.label()
            );
        }
    }

    #[test]
    fn unoptimized_length_t_grows_quadratically() {
        // Second difference of a quadratic is constant and positive.
        let t: Vec<u64> = (2..=6)
            .map(|n| compile_length(n, &CompileOptions::baseline()).t_complexity())
            .collect();
        let d1: Vec<i64> = t.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let d2: Vec<i64> = d1.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(d2.iter().all(|&x| x == d2[0]), "t={t:?} d2={d2:?}");
        assert!(d2[0] > 0, "T-complexity must be superlinear, t={t:?}");
    }

    #[test]
    fn optimized_length_t_grows_linearly() {
        let t: Vec<u64> = (2..=6)
            .map(|n| compile_length(n, &CompileOptions::spire()).t_complexity())
            .collect();
        let d1: Vec<i64> = t.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        assert!(
            d1.windows(2).all(|w| w[0] == w[1]),
            "optimized T should be linear: t={t:?} d1={d1:?}"
        );
    }

    #[test]
    fn mcx_complexity_is_linear_both_ways() {
        for options in [CompileOptions::baseline(), CompileOptions::spire()] {
            let m: Vec<u64> = (2..=5)
                .map(|n| compile_length(n, &options).mcx_complexity())
                .collect();
            let d1: Vec<i64> = m.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
            assert!(
                d1.windows(2).all(|w| w[0] == w[1]),
                "MCX should be linear ({}): {m:?}",
                options.opt.label()
            );
        }
    }

    #[test]
    fn optimization_reduces_t_complexity() {
        let base = compile_length(8, &CompileOptions::baseline()).t_complexity();
        let opt = compile_length(8, &CompileOptions::spire()).t_complexity();
        assert!(
            opt * 2 < base,
            "Spire should cut T-complexity substantially: {base} -> {opt}"
        );
    }

    #[test]
    fn emit_produces_mcx_only_circuit() {
        let compiled = compile_length(2, &CompileOptions::spire());
        let circuit = compiled.emit();
        assert_eq!(circuit.len() as u64, compiled.mcx_complexity());
        assert_eq!(circuit.histogram(), compiled.histogram());
    }
}
