//! Simulation bridge: a named-register view over a simulation backend.
//!
//! [`Machine`] wraps any [`Simulator`] with a [`Layout`], so tests and
//! examples can read and write program variables, memory cells, and the
//! allocator free stack by name — and check Definition 6.2's equivalence
//! (live variables equal, everything else zero) between two compiled
//! programs with *different* layouts.
//!
//! The backend defaults to [`BasisState`] (classical, unbounded register
//! size), which runs every Hadamard-free benchmark. Swap in
//! [`SparseState`](qcirc::sim::SparseState) to execute circuits containing
//! Hadamard statements at qubit counts the dense simulator cannot allocate
//! — this is what the differential-testing harness does:
//!
//! ```
//! use qcirc::sim::SparseState;
//! use spire::{compile_source, CompileOptions, Machine};
//! use tower::WordConfig;
//!
//! let src = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";
//! let compiled = compile_source(
//!     src, "inc", 0, WordConfig::paper_default(), &CompileOptions::spire(),
//! ).unwrap();
//! let mut machine: Machine<SparseState> = Machine::with_backend(&compiled.layout);
//! machine.set_var("x", 6).unwrap();
//! machine.run(&compiled.emit()).unwrap();
//! assert_eq!(machine.var("out").unwrap(), 7);
//! ```

use qcirc::sim::{BasisState, Simulator};
use qcirc::{Circuit, QcircError};

use crate::error::SpireError;
use crate::layout::Layout;
use tower::Symbol;

/// A machine state laid out according to a compiled program's [`Layout`],
/// generic over the simulation backend.
#[derive(Debug, Clone)]
pub struct Machine<S: Simulator = BasisState> {
    state: S,
    layout: Layout,
}

impl Machine {
    /// A zeroed classical machine for the given layout.
    pub fn new(layout: &Layout) -> Self {
        Machine::with_backend(layout)
    }
}

impl<S: Simulator> Machine<S> {
    /// A zeroed machine for the given layout on backend `S`.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot represent a register of the layout's
    /// size (e.g. a dense state vector for a 40-qubit layout, or a
    /// `u64`-keyed [`SparseState`](qcirc::sim::SparseState) for a
    /// 100-qubit layout — use
    /// [`SparseState256`](qcirc::sim::SparseState256) up to 256 qubits).
    pub fn with_backend(layout: &Layout) -> Self {
        let state = S::zeroed(layout.total_qubits).unwrap_or_else(|e| {
            panic!(
                "backend cannot hold this layout's {} qubits: {e}",
                layout.total_qubits
            )
        });
        Machine {
            state,
            layout: layout.clone(),
        }
    }

    /// The underlying simulator state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The layout this machine follows.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Set a variable's register.
    ///
    /// # Errors
    ///
    /// [`SpireError::NoRegister`] for unknown variables.
    pub fn set_var(&mut self, name: &str, value: u64) -> Result<(), SpireError> {
        let reg = self.layout.reg(&Symbol::new(name))?;
        self.state.write_range(reg.offset, reg.width, value);
        Ok(())
    }

    /// Read a variable's register.
    ///
    /// # Errors
    ///
    /// [`SpireError::NoRegister`] for unknown variables;
    /// [`SpireError::Superposed`] when the register does not hold a single
    /// classical value on a quantum backend.
    pub fn var(&self, name: &str) -> Result<u64, SpireError> {
        let reg = self.layout.reg(&Symbol::new(name))?;
        self.state
            .read_range(reg.offset, reg.width)
            .ok_or_else(|| SpireError::Superposed {
                var: Symbol::new(name),
            })
    }

    /// Write a memory cell (1-based address).
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory or the address is out of range.
    pub fn write_cell(&mut self, addr: u32, value: u64) {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let cell = mem.cell(addr);
        self.state.write_range(cell.offset, cell.width, value);
    }

    /// Read a memory cell (1-based address).
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory, the address is out of range, or
    /// the cell is in superposition.
    pub fn cell(&self, addr: u32) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let cell = mem.cell(addr);
        self.state
            .read_range(cell.offset, cell.width)
            .expect("memory cell holds a classical value")
    }

    /// Initialize the allocator's free stack to hold the given addresses
    /// (bottom first) and set the stack pointer.
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory regions.
    pub fn init_free_stack(&mut self, free: &[u32]) {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let p = mem.sp.width;
        let (sp, base) = (mem.sp, mem.stack_base);
        for (i, &addr) in free.iter().enumerate() {
            self.state.write_range(base + i as u32 * p, p, addr as u64);
        }
        self.state
            .write_range(sp.offset, sp.width, free.len() as u64);
    }

    /// Current stack-pointer value.
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory regions or the stack pointer is
    /// in superposition.
    pub fn sp(&self) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        self.state
            .read_range(mem.sp.offset, mem.sp.width)
            .expect("stack pointer holds a classical value")
    }

    /// Lay out a linked list of `(uint, ptr)` nodes in memory: node `i`
    /// goes to cell `i+1` with its value and a pointer to the next node.
    /// Returns the head address (0 for the empty list) and initializes the
    /// free stack with the remaining cells.
    ///
    /// # Panics
    ///
    /// Panics if the list does not fit in memory.
    pub fn build_list(&mut self, values: &[u64]) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let uint_bits = self.layout.config.uint_bits;
        let num_cells = mem.num_cells;
        assert!(
            (values.len() as u32) < num_cells,
            "list of {} nodes does not fit in {} cells",
            values.len(),
            num_cells - 1
        );
        for (i, &v) in values.iter().enumerate() {
            let addr = i as u32 + 1;
            let next = if i + 1 < values.len() {
                addr as u64 + 1
            } else {
                0
            };
            self.write_cell(addr, (v & ((1 << uint_bits) - 1)) | (next << uint_bits));
        }
        // Free cells: everything after the list, pushed bottom-first.
        let free: Vec<u32> = (values.len() as u32 + 1..num_cells).collect();
        self.init_free_stack(&free);
        if values.is_empty() {
            0
        } else {
            1
        }
    }

    /// Run a compiled circuit on this machine.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (unsupported gates, bad qubits).
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        self.state.run(circuit)
    }

    /// Whether every qubit outside the given variables (plus the memory,
    /// stack, and stack-pointer regions) is zero — Definition 6.2's
    /// requirement on non-live registers.
    pub fn clean_except(&self, live: &[&str]) -> bool {
        let mut keep: Vec<(u32, u32)> = Vec::new();
        for name in live {
            if let Ok(reg) = self.layout.reg(&Symbol::new(*name)) {
                keep.push((reg.offset, reg.width));
            }
        }
        if let Some(mem) = &self.layout.memory {
            keep.push((mem.sp.offset, self.layout.total_qubits - mem.sp.offset));
        }
        self.state.zero_outside(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{layout, AllocPolicy};
    use qcirc::sim::SparseState;
    use qcirc::Gate;
    use tower::{typecheck, CoreExpr, CoreStmt, CoreValue, Type, TypeTable, WordConfig};

    fn list_program_layout() -> Layout {
        list_layout_with(WordConfig::paper_default())
    }

    fn list_layout_with(config: WordConfig) -> Layout {
        let mut table = TypeTable::new(config);
        table
            .define(
                Symbol::new("list"),
                Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
            )
            .unwrap();
        let list = Type::Named(Symbol::new("list"));
        let stmt = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: Symbol::new("v"),
                expr: CoreExpr::Value(CoreValue::ZeroOf(list.clone())),
            },
            CoreStmt::MemSwap {
                ptr: Symbol::new("p"),
                val: Symbol::new("v"),
            },
        ]);
        let inputs = vec![(Symbol::new("p"), Type::ptr(list))];
        let info = typecheck(&stmt, &inputs, &table).unwrap();
        layout(&stmt, &inputs, &info, &table, AllocPolicy::Conservative).unwrap()
    }

    #[test]
    fn var_roundtrip() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        m.set_var("p", 5).unwrap();
        assert_eq!(m.var("p").unwrap(), 5);
        assert!(m.var("ghost").is_err());
    }

    #[test]
    fn build_list_links_cells() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        let head = m.build_list(&[10, 20, 30]);
        assert_eq!(head, 1);
        let uint_bits = l.config.uint_bits;
        assert_eq!(m.cell(1) & 0xFF, 10);
        assert_eq!(m.cell(1) >> uint_bits, 2, "node 1 links to node 2");
        assert_eq!(m.cell(3) >> uint_bits, 0, "last node links to null");
        // Free stack holds the remaining cells.
        assert_eq!(m.sp(), (l.memory.as_ref().unwrap().num_cells - 4) as u64);
    }

    #[test]
    fn empty_list_has_null_head() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        assert_eq!(m.build_list(&[]), 0);
    }

    #[test]
    fn clean_except_ignores_memory() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        m.build_list(&[1]);
        m.set_var("p", 1).unwrap();
        assert!(m.clean_except(&["p"]));
        assert!(!m.clean_except(&[]));
    }

    #[test]
    fn sparse_backend_mirrors_classical_behaviour() {
        // The tiny word config keeps the whole layout (memory included)
        // inside the sparse backend's 64-qubit key space.
        let l = list_layout_with(WordConfig::tiny());
        let mut classical = Machine::new(&l);
        let mut sparse: Machine<SparseState> = Machine::with_backend(&l);
        classical.build_list(&[1, 3]);
        classical.set_var("p", 1).unwrap();
        sparse.build_list(&[1, 3]);
        sparse.set_var("p", 1).unwrap();
        assert_eq!(classical.var("p").unwrap(), sparse.var("p").unwrap());
        assert_eq!(classical.cell(1), sparse.cell(1));
        assert_eq!(classical.sp(), sparse.sp());
        assert_eq!(classical.clean_except(&["p"]), sparse.clean_except(&["p"]));
    }

    #[test]
    fn superposed_register_reads_as_error() {
        let l = list_layout_with(WordConfig::tiny());
        let mut m: Machine<SparseState> = Machine::with_backend(&l);
        let reg = l.reg(&Symbol::new("p")).unwrap();
        let mut h = qcirc::Circuit::new(l.total_qubits);
        h.push(Gate::h(reg.offset));
        m.run(&h).unwrap();
        assert!(matches!(m.var("p"), Err(SpireError::Superposed { .. })));
    }
}
