//! Simulation bridge: a named-register view over the classical simulator.
//!
//! [`Machine`] wraps a [`BasisState`] with a [`Layout`], so tests and
//! examples can read and write program variables, memory cells, and the
//! allocator free stack by name — and check Definition 6.2's equivalence
//! (live variables equal, everything else zero) between two compiled
//! programs with *different* layouts.

use qcirc::sim::BasisState;
use qcirc::{Circuit, QcircError};

use crate::error::SpireError;
use crate::layout::Layout;
use tower::Symbol;

/// A machine state laid out according to a compiled program's [`Layout`].
#[derive(Debug, Clone)]
pub struct Machine {
    state: BasisState,
    layout: Layout,
}

impl Machine {
    /// A zeroed machine for the given layout.
    pub fn new(layout: &Layout) -> Self {
        Machine {
            state: BasisState::new(layout.total_qubits),
            layout: layout.clone(),
        }
    }

    /// The underlying basis state.
    pub fn state(&self) -> &BasisState {
        &self.state
    }

    /// The layout this machine follows.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Set a variable's register.
    ///
    /// # Errors
    ///
    /// [`SpireError::NoRegister`] for unknown variables.
    pub fn set_var(&mut self, name: &str, value: u64) -> Result<(), SpireError> {
        let reg = self.layout.reg(&Symbol::new(name))?;
        self.state.write_range(reg.offset, reg.width, value);
        Ok(())
    }

    /// Read a variable's register.
    ///
    /// # Errors
    ///
    /// [`SpireError::NoRegister`] for unknown variables.
    pub fn var(&self, name: &str) -> Result<u64, SpireError> {
        let reg = self.layout.reg(&Symbol::new(name))?;
        Ok(self.state.read_range(reg.offset, reg.width))
    }

    /// Write a memory cell (1-based address).
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory or the address is out of range.
    pub fn write_cell(&mut self, addr: u32, value: u64) {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let cell = mem.cell(addr);
        self.state.write_range(cell.offset, cell.width, value);
    }

    /// Read a memory cell (1-based address).
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory or the address is out of range.
    pub fn cell(&self, addr: u32) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let cell = mem.cell(addr);
        self.state.read_range(cell.offset, cell.width)
    }

    /// Initialize the allocator's free stack to hold the given addresses
    /// (bottom first) and set the stack pointer.
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory regions.
    pub fn init_free_stack(&mut self, free: &[u32]) {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let p = mem.sp.width;
        let (sp, base) = (mem.sp, mem.stack_base);
        for (i, &addr) in free.iter().enumerate() {
            self.state.write_range(base + i as u32 * p, p, addr as u64);
        }
        self.state
            .write_range(sp.offset, sp.width, free.len() as u64);
    }

    /// Current stack-pointer value.
    ///
    /// # Panics
    ///
    /// Panics if the program has no memory regions.
    pub fn sp(&self) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        self.state.read_range(mem.sp.offset, mem.sp.width)
    }

    /// Lay out a linked list of `(uint, ptr)` nodes in memory: node `i`
    /// goes to cell `i+1` with its value and a pointer to the next node.
    /// Returns the head address (0 for the empty list) and initializes the
    /// free stack with the remaining cells.
    ///
    /// # Panics
    ///
    /// Panics if the list does not fit in memory.
    pub fn build_list(&mut self, values: &[u64]) -> u64 {
        let mem = self.layout.memory.as_ref().expect("program has memory");
        let uint_bits = self.layout.config.uint_bits;
        let num_cells = mem.num_cells;
        assert!(
            (values.len() as u32) < num_cells,
            "list of {} nodes does not fit in {} cells",
            values.len(),
            num_cells - 1
        );
        for (i, &v) in values.iter().enumerate() {
            let addr = i as u32 + 1;
            let next = if i + 1 < values.len() {
                addr as u64 + 1
            } else {
                0
            };
            self.write_cell(addr, (v & ((1 << uint_bits) - 1)) | (next << uint_bits));
        }
        // Free cells: everything after the list, pushed bottom-first.
        let free: Vec<u32> = (values.len() as u32 + 1..num_cells).collect();
        self.init_free_stack(&free);
        if values.is_empty() {
            0
        } else {
            1
        }
    }

    /// Run a compiled circuit on this machine.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (non-classical gates, bad qubits).
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        self.state.run(circuit)
    }

    /// Whether every qubit outside the given variables (plus the memory,
    /// stack, and stack-pointer regions) is zero — Definition 6.2's
    /// requirement on non-live registers.
    pub fn clean_except(&self, live: &[&str]) -> bool {
        let mut keep: Vec<(u32, u32)> = Vec::new();
        for name in live {
            if let Ok(reg) = self.layout.reg(&Symbol::new(*name)) {
                keep.push((reg.offset, reg.width));
            }
        }
        if let Some(mem) = &self.layout.memory {
            keep.push((mem.sp.offset, self.layout.total_qubits - mem.sp.offset));
        }
        self.state.zero_outside(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{layout, AllocPolicy};
    use tower::{typecheck, CoreExpr, CoreStmt, CoreValue, Type, TypeTable, WordConfig};

    fn list_program_layout() -> Layout {
        let mut table = TypeTable::new(WordConfig::paper_default());
        table
            .define(
                Symbol::new("list"),
                Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
            )
            .unwrap();
        let list = Type::Named(Symbol::new("list"));
        let stmt = CoreStmt::seq(vec![
            CoreStmt::Assign {
                var: Symbol::new("v"),
                expr: CoreExpr::Value(CoreValue::ZeroOf(list.clone())),
            },
            CoreStmt::MemSwap {
                ptr: Symbol::new("p"),
                val: Symbol::new("v"),
            },
        ]);
        let inputs = vec![(Symbol::new("p"), Type::ptr(list))];
        let info = typecheck(&stmt, &inputs, &table).unwrap();
        layout(&stmt, &inputs, &info, &table, AllocPolicy::Conservative).unwrap()
    }

    #[test]
    fn var_roundtrip() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        m.set_var("p", 5).unwrap();
        assert_eq!(m.var("p").unwrap(), 5);
        assert!(m.var("ghost").is_err());
    }

    #[test]
    fn build_list_links_cells() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        let head = m.build_list(&[10, 20, 30]);
        assert_eq!(head, 1);
        let uint_bits = l.config.uint_bits;
        assert_eq!(m.cell(1) & 0xFF, 10);
        assert_eq!(m.cell(1) >> uint_bits, 2, "node 1 links to node 2");
        assert_eq!(m.cell(3) >> uint_bits, 0, "last node links to null");
        // Free stack holds the remaining cells.
        assert_eq!(m.sp(), (l.memory.as_ref().unwrap().num_cells - 4) as u64);
    }

    #[test]
    fn empty_list_has_null_head() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        assert_eq!(m.build_list(&[]), 0);
    }

    #[test]
    fn clean_except_ignores_memory() {
        let l = list_program_layout();
        let mut m = Machine::new(&l);
        m.build_list(&[1]);
        m.set_var("p", 1).unwrap();
        assert!(m.clean_except(&["p"]));
        assert!(!m.clean_except(&[]));
    }
}
