//! The abstract circuit: register-level instructions with control lists.
//!
//! The Tower compiler "lowers the core IR to an abstract circuit that is
//! analogous to classical assembly, with the abstractions of word-sized
//! registers; arithmetic, logical, memory, and data movement instructions;
//! and instructions controlled by registers" (paper Section 7). [`AInstr`]
//! is that representation.
//!
//! Each instruction knows two things:
//!
//! * [`AOp::build`] / [`AInstr::emit`] — how to instantiate itself as an explicit sequence of
//!   MCX gates (the compiler's final lowering), and
//! * [`AOp::histogram`] — a *closed-form* count of those gates by control
//!   arity, parameterized by the number of enclosing `if`-controls.
//!
//! The histogram is the paper's cost model at the instruction level: it is
//! computed without materializing any gates, and the property tests assert
//! it equals the emitted circuit's histogram gate-for-gate (Theorems 5.1
//! and 5.2). Instructions distinguish *payload* gates, which must carry the
//! enclosing `if`-controls, from *conjugation* gates (temporary bit flips
//! and scratch arithmetic that is computed and uncomputed within the
//! instruction), which cancel on their own and stay uncontrolled — this is
//! why, for example, a ripple-carry adder under a quantum `if` costs only
//! its sum CNOTs in controls, not its carry network.

use qcirc::{Gate, GateHistogram, GateSink, Qubit};

use crate::layout::{MemoryLayout, Reg};

/// A register-level instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum AOp {
    /// `dst ^= value` — X gates on the set bits.
    XorConst {
        /// Destination register.
        dst: Reg,
        /// Constant (truncated to the register width).
        value: u64,
    },
    /// `dst ^= src` — bitwise CNOT copy (also used for projections, whose
    /// source is a sub-register).
    XorReg {
        /// Destination register.
        dst: Reg,
        /// Source register (same width).
        src: Reg,
    },
    /// `dst ^= ¬src` for booleans.
    XorNot {
        /// Destination (1 bit).
        dst: Reg,
        /// Source (1 bit).
        src: Reg,
    },
    /// `dst ^= (src != 0)`.
    XorTest {
        /// Destination (1 bit).
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ^= a ∧ b` for booleans.
    XorAnd {
        /// Destination (1 bit).
        dst: Reg,
        /// Left operand (1 bit).
        a: Reg,
        /// Right operand (1 bit).
        b: Reg,
    },
    /// `dst ^= a ∨ b` for booleans.
    XorOr {
        /// Destination (1 bit).
        dst: Reg,
        /// Left operand (1 bit).
        a: Reg,
        /// Right operand (1 bit).
        b: Reg,
    },
    /// `dst ^= (a + b) mod 2^w` — out-of-place ripple-carry adder; the
    /// carry network lives in `carries` and is uncomputed internally.
    XorAdd {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Scratch register for carries (width ≥ w).
        carries: Reg,
    },
    /// `dst ^= (a - b) mod 2^w` — two's-complement subtraction
    /// (X-conjugated operand, carry-in 1).
    XorSub {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Scratch register for carries (width ≥ w).
        carries: Reg,
    },
    /// `dst ^= (a * b) mod 2^w` — shift-and-add into a scratch product
    /// (conjugation), then a CNOT copy into `dst` (payload).
    XorMul {
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand (its bits control the partial-product adds).
        b: Reg,
        /// Scratch register accumulating the product (width w).
        product: Reg,
        /// Scratch qubit for the Cuccaro adder carry.
        cuccaro: Qubit,
    },
    /// Swap two registers.
    SwapReg {
        /// First register.
        a: Reg,
        /// Second register (same width).
        b: Reg,
    },
    /// qRAM swap: exchange `data` with the cell `addr` points to, by a
    /// linear scan over all cells (dereferencing null touches no cell).
    /// Each cell visit computes an address-match bit into `match_bit`
    /// (conjugation), swaps under that single control, and uncomputes it —
    /// so the per-bit swap gates stay at arity 2 regardless of the
    /// address width.
    MemSwap {
        /// Address register (`ptr_bits` wide).
        addr: Reg,
        /// Data register (width ≤ cell width).
        data: Reg,
        /// Memory geometry.
        mem: MemoryLayout,
        /// Scratch qubit for the per-cell address-match flag.
        match_bit: Qubit,
    },
    /// Allocator stack pop: decrement `sp`, then swap free-stack slot
    /// `F[sp]` with `dst` (scanning slots with a match bit, like
    /// [`AOp::MemSwap`]). Emitted with `reversed = true` this is the push
    /// (dealloc) operation.
    StackPop {
        /// Register receiving the popped address.
        dst: Reg,
        /// Memory geometry (stack base and `sp`).
        mem: MemoryLayout,
        /// Scratch qubit for the per-slot match flag.
        match_bit: Qubit,
    },
    /// Hadamard on a boolean register.
    Had {
        /// Target qubit.
        target: Qubit,
    },
}

/// An abstract instruction: an operation under a set of `if`-controls.
#[derive(Debug, Clone, PartialEq)]
pub struct AInstr {
    /// The operation.
    pub op: AOp,
    /// Control qubits contributed by enclosing quantum `if`s
    /// (duplicate-free).
    pub controls: Vec<Qubit>,
    /// Emit the operation's gates in reverse order (un-assignment /
    /// dealloc). The gate multiset — and therefore the histogram — is
    /// unchanged.
    pub reversed: bool,
}

impl AInstr {
    /// Emit this instruction's gates.
    pub fn emit<S: GateSink>(&self, sink: &mut S) {
        let mut buffer = Vec::new();
        self.emit_with(&mut buffer, sink);
    }

    /// Emit this instruction's gates through a caller-provided scratch
    /// buffer (cleared on entry), so a loop over many instructions —
    /// [`Compiled::emit_into`](crate::Compiled::emit_into) — reuses one
    /// allocation instead of building a fresh staging vector per
    /// instruction.
    pub fn emit_with<S: GateSink>(&self, buffer: &mut Vec<Gate>, sink: &mut S) {
        buffer.clear();
        self.op.build(&self.controls, buffer);
        if self.reversed {
            for gate in buffer.drain(..).rev() {
                sink.push_gate(gate);
            }
        } else {
            for gate in buffer.drain(..) {
                sink.push_gate(gate);
            }
        }
    }

    /// The instruction's gate histogram (closed form; no gates built).
    pub fn histogram(&self) -> GateHistogram {
        self.op.histogram(self.controls.len())
    }
}

/// Helper: `controls ∪ extra` as a gate control list.
fn ctrl(extra: &[Qubit], more: &[Qubit]) -> Vec<Qubit> {
    let mut v = extra.to_vec();
    v.extend_from_slice(more);
    v
}

impl AOp {
    /// Append this operation's gates (forward order) to `out`, with `k`
    /// enclosing controls applied to the payload gates.
    pub fn build(&self, k: &[Qubit], out: &mut Vec<Gate>) {
        match self {
            AOp::XorConst { dst, value } => {
                for i in 0..dst.width {
                    if (value >> i) & 1 == 1 {
                        out.push(Gate::mcx(k.to_vec(), dst.bit(i)));
                    }
                }
            }
            AOp::XorReg { dst, src } => {
                debug_assert_eq!(dst.width, src.width);
                for i in 0..dst.width {
                    out.push(Gate::mcx(ctrl(k, &[src.bit(i)]), dst.bit(i)));
                }
            }
            AOp::XorNot { dst, src } => {
                out.push(Gate::mcx(ctrl(k, &[src.bit(0)]), dst.bit(0)));
                out.push(Gate::mcx(k.to_vec(), dst.bit(0)));
            }
            AOp::XorTest { dst, src } => {
                let src_bits: Vec<Qubit> = (0..src.width).map(|i| src.bit(i)).collect();
                for &q in &src_bits {
                    out.push(Gate::x(q));
                }
                out.push(Gate::mcx(ctrl(k, &src_bits), dst.bit(0)));
                out.push(Gate::mcx(k.to_vec(), dst.bit(0)));
                for &q in &src_bits {
                    out.push(Gate::x(q));
                }
            }
            AOp::XorAnd { dst, a, b } => {
                out.push(Gate::mcx(ctrl(k, &[a.bit(0), b.bit(0)]), dst.bit(0)));
            }
            AOp::XorOr { dst, a, b } => {
                out.push(Gate::x(a.bit(0)));
                out.push(Gate::x(b.bit(0)));
                out.push(Gate::mcx(ctrl(k, &[a.bit(0), b.bit(0)]), dst.bit(0)));
                out.push(Gate::mcx(k.to_vec(), dst.bit(0)));
                out.push(Gate::x(a.bit(0)));
                out.push(Gate::x(b.bit(0)));
            }
            AOp::XorAdd { dst, a, b, carries } => {
                let w = dst.width;
                if w == 1 {
                    out.push(Gate::mcx(ctrl(k, &[a.bit(0)]), dst.bit(0)));
                    out.push(Gate::mcx(ctrl(k, &[b.bit(0)]), dst.bit(0)));
                    return;
                }
                // carries[i] holds c_{i+1}, the carry into bit i+1.
                let mut network = Vec::new();
                network.push(Gate::toffoli(a.bit(0), b.bit(0), carries.bit(0)));
                for i in 1..w - 1 {
                    network.push(Gate::toffoli(a.bit(i), b.bit(i), carries.bit(i)));
                    network.push(Gate::toffoli(a.bit(i), carries.bit(i - 1), carries.bit(i)));
                    network.push(Gate::toffoli(b.bit(i), carries.bit(i - 1), carries.bit(i)));
                }
                out.extend(network.iter().cloned());
                out.push(Gate::mcx(ctrl(k, &[a.bit(0)]), dst.bit(0)));
                out.push(Gate::mcx(ctrl(k, &[b.bit(0)]), dst.bit(0)));
                for i in 1..w {
                    out.push(Gate::mcx(ctrl(k, &[a.bit(i)]), dst.bit(i)));
                    out.push(Gate::mcx(ctrl(k, &[b.bit(i)]), dst.bit(i)));
                    out.push(Gate::mcx(ctrl(k, &[carries.bit(i - 1)]), dst.bit(i)));
                }
                out.extend(network.into_iter().rev());
            }
            AOp::XorSub { dst, a, b, carries } => {
                let w = dst.width;
                if w == 1 {
                    // a - b ≡ a ⊕ b (mod 2).
                    out.push(Gate::mcx(ctrl(k, &[a.bit(0)]), dst.bit(0)));
                    out.push(Gate::mcx(ctrl(k, &[b.bit(0)]), dst.bit(0)));
                    return;
                }
                // carries[i] holds c_i; c_0 = 1 (two's-complement carry-in).
                let mut conj = Vec::new();
                conj.push(Gate::x(carries.bit(0)));
                for i in 0..w {
                    conj.push(Gate::x(b.bit(i)));
                }
                let mut network = Vec::new();
                for i in 0..w - 1 {
                    network.push(Gate::toffoli(a.bit(i), b.bit(i), carries.bit(i + 1)));
                    network.push(Gate::toffoli(a.bit(i), carries.bit(i), carries.bit(i + 1)));
                    network.push(Gate::toffoli(b.bit(i), carries.bit(i), carries.bit(i + 1)));
                }
                out.extend(conj.iter().cloned());
                out.extend(network.iter().cloned());
                for i in 0..w {
                    out.push(Gate::mcx(ctrl(k, &[a.bit(i)]), dst.bit(i)));
                    out.push(Gate::mcx(ctrl(k, &[b.bit(i)]), dst.bit(i)));
                    out.push(Gate::mcx(ctrl(k, &[carries.bit(i)]), dst.bit(i)));
                }
                out.extend(network.into_iter().rev());
                out.extend(conj.into_iter().rev());
            }
            AOp::XorMul {
                dst,
                a,
                b,
                product,
                cuccaro,
            } => {
                let w = dst.width;
                // Phase 1 (conjugation): product += (a << i) when b_i,
                // via controlled Cuccaro ripple adds.
                let mut phase1 = Vec::new();
                for i in 0..w {
                    let m = w - i;
                    cuccaro_add_controlled(a, product, i, m, *cuccaro, b.bit(i), &mut phase1);
                }
                out.extend(phase1.iter().cloned());
                // Phase 2 (payload): dst ^= product.
                for i in 0..w {
                    out.push(Gate::mcx(ctrl(k, &[product.bit(i)]), dst.bit(i)));
                }
                // Phase 3: uncompute the product.
                out.extend(phase1.into_iter().rev());
            }
            AOp::SwapReg { a, b } => {
                debug_assert_eq!(a.width, b.width);
                for i in 0..a.width {
                    out.push(Gate::cnot(a.bit(i), b.bit(i)));
                    out.push(Gate::mcx(ctrl(k, &[b.bit(i)]), a.bit(i)));
                    out.push(Gate::cnot(a.bit(i), b.bit(i)));
                }
            }
            AOp::MemSwap {
                addr,
                data,
                mem,
                match_bit,
            } => {
                let p = addr.width;
                let addr_bits: Vec<Qubit> = (0..p).map(|i| addr.bit(i)).collect();
                for cell_addr in 1..mem.num_cells {
                    let cell = mem.cell(cell_addr);
                    let conj: Vec<Qubit> = (0..p)
                        .filter(|i| (cell_addr >> i) & 1 == 0)
                        .map(|i| addr.bit(i))
                        .collect();
                    for &q in &conj {
                        out.push(Gate::x(q));
                    }
                    // Compute the address-match flag once per cell
                    // (conjugation — no k-controls).
                    out.push(Gate::mcx(addr_bits.clone(), *match_bit));
                    for i in 0..data.width {
                        let m = cell.bit(i);
                        let d = data.bit(i);
                        out.push(Gate::cnot(m, d));
                        out.push(Gate::mcx(ctrl(k, &[*match_bit, d]), m));
                        out.push(Gate::cnot(m, d));
                    }
                    out.push(Gate::mcx(addr_bits.clone(), *match_bit));
                    for &q in &conj {
                        out.push(Gate::x(q));
                    }
                }
            }
            AOp::StackPop {
                dst,
                mem,
                match_bit,
            } => {
                let sp = mem.sp;
                let p = sp.width;
                // Decrement sp (inverse of the standard increment chain).
                out.push(Gate::mcx(k.to_vec(), sp.bit(0)));
                for i in 1..p {
                    let lower: Vec<Qubit> = (0..i).map(|j| sp.bit(j)).collect();
                    out.push(Gate::mcx(ctrl(k, &lower), sp.bit(i)));
                }
                // Swap F[sp] with dst by scanning all slots.
                let sp_bits: Vec<Qubit> = (0..p).map(|i| sp.bit(i)).collect();
                let num_slots = 1u32 << p;
                for s in 0..num_slots {
                    let slot = mem.stack_slot(s, p);
                    let conj: Vec<Qubit> = (0..p)
                        .filter(|i| (s >> i) & 1 == 0)
                        .map(|i| sp.bit(i))
                        .collect();
                    for &q in &conj {
                        out.push(Gate::x(q));
                    }
                    out.push(Gate::mcx(sp_bits.clone(), *match_bit));
                    for i in 0..p.min(dst.width) {
                        let f = slot.bit(i);
                        let d = dst.bit(i);
                        out.push(Gate::cnot(f, d));
                        out.push(Gate::mcx(ctrl(k, &[*match_bit, d]), f));
                        out.push(Gate::cnot(f, d));
                    }
                    out.push(Gate::mcx(sp_bits.clone(), *match_bit));
                    for &q in &conj {
                        out.push(Gate::x(q));
                    }
                }
            }
            AOp::Had { target } => {
                out.push(Gate::mch(k.to_vec(), *target));
            }
        }
    }

    /// Closed-form gate histogram for this operation under `k` enclosing
    /// controls. Matches [`AOp::build`] gate-for-gate (property-tested).
    pub fn histogram(&self, k: usize) -> GateHistogram {
        let mut h = GateHistogram::new();
        match self {
            AOp::XorConst { dst, value } => {
                let mask = if dst.width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << dst.width) - 1
                };
                h.add_mcx(k, (*value & mask).count_ones() as u64);
            }
            AOp::XorReg { dst, .. } => h.add_mcx(1 + k, dst.width as u64),
            AOp::XorNot { .. } => {
                h.add_mcx(1 + k, 1);
                h.add_mcx(k, 1);
            }
            AOp::XorTest { src, .. } => {
                h.add_mcx(0, 2 * src.width as u64);
                h.add_mcx(src.width as usize + k, 1);
                h.add_mcx(k, 1);
            }
            AOp::XorAnd { .. } => h.add_mcx(2 + k, 1),
            AOp::XorOr { .. } => {
                h.add_mcx(0, 4);
                h.add_mcx(2 + k, 1);
                h.add_mcx(k, 1);
            }
            AOp::XorAdd { dst, .. } => {
                let w = dst.width as u64;
                if w == 1 {
                    h.add_mcx(1 + k, 2);
                } else {
                    h.add_mcx(2, 6 * w - 10);
                    h.add_mcx(1 + k, 3 * w - 1);
                }
            }
            AOp::XorSub { dst, .. } => {
                let w = dst.width as u64;
                if w == 1 {
                    h.add_mcx(1 + k, 2);
                } else {
                    h.add_mcx(0, 2 * w + 2);
                    h.add_mcx(2, 6 * (w - 1));
                    h.add_mcx(1 + k, 3 * w);
                }
            }
            AOp::XorMul { dst, .. } => {
                let w = dst.width as u64;
                let m_sum = w * (w + 1) / 2;
                h.add_mcx(3, 4 * m_sum);
                h.add_mcx(2, 8 * m_sum);
                h.add_mcx(1 + k, w);
            }
            AOp::SwapReg { a, .. } => {
                let w = a.width as u64;
                h.add_mcx(1, 2 * w);
                h.add_mcx(1 + k, w);
            }
            AOp::MemSwap {
                addr, data, mem, ..
            } => {
                let p = addr.width;
                let cells = (mem.num_cells - 1) as u64;
                let zeros: u64 = (1..mem.num_cells)
                    .map(|v| (p - v.count_ones()) as u64)
                    .sum();
                h.add_mcx(0, 2 * zeros);
                h.add_mcx(p as usize, 2 * cells); // match compute/uncompute
                h.add_mcx(1, 2 * data.width as u64 * cells);
                h.add_mcx(2 + k, data.width as u64 * cells);
            }
            AOp::StackPop { dst, mem, .. } => {
                let p = mem.sp.width;
                // Decrement chain.
                h.add_mcx(k, 1);
                for i in 1..p {
                    h.add_mcx(i as usize + k, 1);
                }
                // Slot scan.
                let slots = 1u64 << p;
                let zeros: u64 = (0..slots)
                    .map(|s| (p - (s as u32).count_ones()) as u64)
                    .sum();
                let w = p.min(dst.width) as u64;
                h.add_mcx(0, 2 * zeros);
                h.add_mcx(p as usize, 2 * slots);
                h.add_mcx(1, 2 * w * slots);
                h.add_mcx(2 + k, w * slots);
            }
            AOp::Had { .. } => h.add_mch(k, 1),
        }
        h
    }

    /// A short mnemonic for diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            AOp::XorConst { .. } => "xorc",
            AOp::XorReg { .. } => "xorr",
            AOp::XorNot { .. } => "xornot",
            AOp::XorTest { .. } => "xortest",
            AOp::XorAnd { .. } => "xorand",
            AOp::XorOr { .. } => "xoror",
            AOp::XorAdd { .. } => "xoradd",
            AOp::XorSub { .. } => "xorsub",
            AOp::XorMul { .. } => "xormul",
            AOp::SwapReg { .. } => "swap",
            AOp::MemSwap { .. } => "memswap",
            AOp::StackPop { .. } => "stackpop",
            AOp::Had { .. } => "had",
        }
    }
}

/// Controlled Cuccaro ripple add: `y[lo..lo+m) += x[0..m)` when `control`
/// is set, using `z` as the carry ancilla. Every gate carries `control`.
fn cuccaro_add_controlled(
    x: &Reg,
    y: &Reg,
    lo: u32,
    m: u32,
    z: Qubit,
    control: Qubit,
    out: &mut Vec<Gate>,
) {
    let xb = |i: u32| x.bit(i);
    let yb = |i: u32| y.bit(lo + i);
    // MAJ(c, b, a) = CX(a,b); CX(a,c); TOF(c,b -> a), all + control.
    let maj = |c: Qubit, b: Qubit, a: Qubit, out: &mut Vec<Gate>| {
        out.push(Gate::mcx(vec![a, control], b));
        out.push(Gate::mcx(vec![a, control], c));
        out.push(Gate::mcx(vec![c, b, control], a));
    };
    let uma = |c: Qubit, b: Qubit, a: Qubit, out: &mut Vec<Gate>| {
        out.push(Gate::mcx(vec![c, b, control], a));
        out.push(Gate::mcx(vec![a, control], c));
        out.push(Gate::mcx(vec![c, control], b));
    };
    maj(z, yb(0), xb(0), out);
    for i in 1..m {
        maj(xb(i - 1), yb(i), xb(i), out);
    }
    for i in (1..m).rev() {
        uma(xb(i - 1), yb(i), xb(i), out);
    }
    uma(z, yb(0), xb(0), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemoryLayout;
    use qcirc::sim::BasisState;
    use qcirc::Circuit;

    fn reg(offset: u32, width: u32) -> Reg {
        Reg { offset, width }
    }

    fn run_op(op: &AOp, controls: &[Qubit], state: &mut BasisState) {
        let instr = AInstr {
            op: op.clone(),
            controls: controls.to_vec(),
            reversed: false,
        };
        let mut circuit = Circuit::new(state.num_qubits());
        instr.emit(&mut circuit);
        state.run(&circuit).unwrap();
    }

    /// Every op's closed-form histogram equals its emitted histogram.
    #[test]
    fn histograms_match_emission() {
        let mem = MemoryLayout {
            cell_width: 6,
            num_cells: 8,
            cells_base: 40,
            sp: reg(30, 3),
            stack_base: 33,
        };
        let ops = vec![
            AOp::XorConst {
                dst: reg(0, 8),
                value: 0xA5,
            },
            AOp::XorReg {
                dst: reg(0, 8),
                src: reg(8, 8),
            },
            AOp::XorNot {
                dst: reg(0, 1),
                src: reg(1, 1),
            },
            AOp::XorTest {
                dst: reg(0, 1),
                src: reg(8, 5),
            },
            AOp::XorAnd {
                dst: reg(0, 1),
                a: reg(1, 1),
                b: reg(2, 1),
            },
            AOp::XorOr {
                dst: reg(0, 1),
                a: reg(1, 1),
                b: reg(2, 1),
            },
            AOp::XorAdd {
                dst: reg(0, 8),
                a: reg(8, 8),
                b: reg(16, 8),
                carries: reg(24, 8),
            },
            AOp::XorAdd {
                dst: reg(0, 1),
                a: reg(8, 1),
                b: reg(16, 1),
                carries: reg(24, 1),
            },
            AOp::XorSub {
                dst: reg(0, 8),
                a: reg(8, 8),
                b: reg(16, 8),
                carries: reg(24, 8),
            },
            AOp::XorSub {
                dst: reg(0, 1),
                a: reg(8, 1),
                b: reg(16, 1),
                carries: reg(24, 1),
            },
            AOp::XorMul {
                dst: reg(0, 4),
                a: reg(8, 4),
                b: reg(16, 4),
                product: reg(24, 4),
                cuccaro: 28,
            },
            AOp::SwapReg {
                a: reg(0, 8),
                b: reg(8, 8),
            },
            AOp::MemSwap {
                addr: reg(0, 3),
                data: reg(8, 6),
                mem: mem.clone(),
                match_bit: 90,
            },
            AOp::StackPop {
                dst: reg(8, 3),
                mem,
                match_bit: 90,
            },
            AOp::Had { target: 0 },
        ];
        for op in ops {
            for k in [0usize, 1, 3] {
                let controls: Vec<Qubit> = (100..100 + k as u32).collect();
                let instr = AInstr {
                    op: op.clone(),
                    controls,
                    reversed: false,
                };
                let mut circuit = Circuit::new(0);
                instr.emit(&mut circuit);
                assert_eq!(
                    circuit.histogram(),
                    instr.histogram(),
                    "histogram mismatch for {} at k={k}",
                    op.mnemonic()
                );
            }
        }
    }

    #[test]
    fn adder_computes_sums() {
        // dst ^= a + b (mod 16) for several operand pairs.
        for (a_val, b_val) in [(3u64, 5u64), (15, 1), (9, 9), (0, 0), (7, 12)] {
            let op = AOp::XorAdd {
                dst: reg(0, 4),
                a: reg(4, 4),
                b: reg(8, 4),
                carries: reg(12, 4),
            };
            let mut state = BasisState::new(20);
            state.write_range(4, 4, a_val);
            state.write_range(8, 4, b_val);
            run_op(&op, &[], &mut state);
            assert_eq!(
                state.read_range(0, 4),
                (a_val + b_val) % 16,
                "{a_val}+{b_val}"
            );
            // Operands and scratch preserved.
            assert_eq!(state.read_range(4, 4), a_val);
            assert_eq!(state.read_range(8, 4), b_val);
            assert_eq!(state.read_range(12, 4), 0);
        }
    }

    #[test]
    fn adder_xors_into_nonzero_destination() {
        let op = AOp::XorAdd {
            dst: reg(0, 4),
            a: reg(4, 4),
            b: reg(8, 4),
            carries: reg(12, 4),
        };
        let mut state = BasisState::new(20);
        state.write_range(0, 4, 0b1010);
        state.write_range(4, 4, 3);
        state.write_range(8, 4, 4);
        run_op(&op, &[], &mut state);
        assert_eq!(state.read_range(0, 4), 0b1010 ^ 7);
    }

    #[test]
    fn subtractor_computes_differences() {
        for (a_val, b_val) in [(5u64, 3u64), (3, 5), (0, 1), (15, 15), (8, 2)] {
            let op = AOp::XorSub {
                dst: reg(0, 4),
                a: reg(4, 4),
                b: reg(8, 4),
                carries: reg(12, 4),
            };
            let mut state = BasisState::new(20);
            state.write_range(4, 4, a_val);
            state.write_range(8, 4, b_val);
            run_op(&op, &[], &mut state);
            assert_eq!(
                state.read_range(0, 4),
                a_val.wrapping_sub(b_val) % 16,
                "{a_val}-{b_val}"
            );
            assert_eq!(state.read_range(8, 4), b_val, "operand restored");
            assert_eq!(state.read_range(12, 4), 0, "carries restored");
        }
    }

    #[test]
    fn multiplier_computes_products() {
        for (a_val, b_val) in [(3u64, 5u64), (7, 7), (0, 9), (15, 15), (2, 6)] {
            let op = AOp::XorMul {
                dst: reg(0, 4),
                a: reg(4, 4),
                b: reg(8, 4),
                product: reg(12, 4),
                cuccaro: 16,
            };
            let mut state = BasisState::new(20);
            state.write_range(4, 4, a_val);
            state.write_range(8, 4, b_val);
            run_op(&op, &[], &mut state);
            assert_eq!(
                state.read_range(0, 4),
                (a_val * b_val) % 16,
                "{a_val}*{b_val}"
            );
            assert_eq!(state.read_range(12, 4), 0, "product scratch restored");
            assert!(!state.bit(16), "cuccaro ancilla restored");
        }
    }

    #[test]
    fn test_op_detects_nonzero() {
        for v in [0u64, 1, 16, 31] {
            let op = AOp::XorTest {
                dst: reg(0, 1),
                src: reg(8, 5),
            };
            let mut state = BasisState::new(16);
            state.write_range(8, 5, v);
            run_op(&op, &[], &mut state);
            assert_eq!(state.bit(0), v != 0, "test {v}");
            assert_eq!(state.read_range(8, 5), v, "source restored");
        }
    }

    #[test]
    fn controlled_ops_are_gated() {
        // With an unset control, an adder's net effect is nothing.
        let op = AOp::XorAdd {
            dst: reg(0, 4),
            a: reg(4, 4),
            b: reg(8, 4),
            carries: reg(12, 4),
        };
        let mut state = BasisState::new(20);
        state.write_range(4, 4, 5);
        state.write_range(8, 4, 6);
        run_op(&op, &[19], &mut state); // control qubit 19 is 0
        assert_eq!(state.read_range(0, 4), 0);
        // With the control set, it fires.
        state.set_bit(19, true);
        run_op(&op, &[19], &mut state);
        assert_eq!(state.read_range(0, 4), 11);
    }

    #[test]
    fn swap_exchanges_registers() {
        let op = AOp::SwapReg {
            a: reg(0, 4),
            b: reg(4, 4),
        };
        let mut state = BasisState::new(10);
        state.write_range(0, 4, 0b0110);
        state.write_range(4, 4, 0b1001);
        run_op(&op, &[], &mut state);
        assert_eq!(state.read_range(0, 4), 0b1001);
        assert_eq!(state.read_range(4, 4), 0b0110);
        // Controlled swap with control off leaves values.
        run_op(&op, &[9], &mut state);
        assert_eq!(state.read_range(0, 4), 0b1001);
    }

    #[test]
    fn memswap_exchanges_with_addressed_cell() {
        let mem = MemoryLayout {
            cell_width: 4,
            num_cells: 4,
            cells_base: 10,
            sp: reg(8, 2),
            stack_base: 8, // unused here
        };
        let op = AOp::MemSwap {
            addr: reg(0, 2),
            data: reg(4, 4),
            mem: mem.clone(),
            match_bit: 29,
        };
        let mut state = BasisState::new(30);
        // Cell 2 holds 0b1111; register holds 0b0101; address = 2.
        state.write_range(mem.cell(2).offset, 4, 0b1111);
        state.write_range(0, 2, 2);
        state.write_range(4, 4, 0b0101);
        run_op(&op, &[], &mut state);
        assert_eq!(state.read_range(4, 4), 0b1111);
        assert_eq!(state.read_range(mem.cell(2).offset, 4), 0b0101);
        // Other cells untouched.
        assert_eq!(state.read_range(mem.cell(1).offset, 4), 0);
    }

    #[test]
    fn memswap_through_null_is_noop() {
        let mem = MemoryLayout {
            cell_width: 4,
            num_cells: 4,
            cells_base: 10,
            sp: reg(8, 2),
            stack_base: 8,
        };
        let op = AOp::MemSwap {
            addr: reg(0, 2),
            data: reg(4, 4),
            mem,
            match_bit: 29,
        };
        let mut state = BasisState::new(30);
        state.write_range(4, 4, 0b0101);
        run_op(&op, &[], &mut state); // addr = 0 (null)
        assert_eq!(state.read_range(4, 4), 0b0101, "value unchanged");
    }

    #[test]
    fn stack_pop_pops_and_push_restores() {
        let mem = MemoryLayout {
            cell_width: 4,
            num_cells: 4,
            cells_base: 30,
            sp: reg(10, 2),
            stack_base: 12, // slots: 12..14,14..16,16..18,18..20
        };
        let op = AOp::StackPop {
            dst: reg(0, 2),
            mem: mem.clone(),
            match_bit: 59,
        };
        let mut state = BasisState::new(60);
        // Free stack holds addresses [3, 2, 1] (slot 0 = 3 at bottom), sp = 3.
        state.write_range(mem.stack_slot(0, 2).offset, 2, 3);
        state.write_range(mem.stack_slot(1, 2).offset, 2, 2);
        state.write_range(mem.stack_slot(2, 2).offset, 2, 1);
        state.write_range(10, 2, 3);
        run_op(&op, &[], &mut state);
        assert_eq!(state.read_range(0, 2), 1, "top of stack popped");
        assert_eq!(state.read_range(10, 2), 2, "sp decremented");
        assert_eq!(
            state.read_range(mem.stack_slot(2, 2).offset, 2),
            0,
            "slot cleared"
        );

        // Push it back (reversed pop).
        let push = AInstr {
            op: AOp::StackPop {
                dst: reg(0, 2),
                mem: mem.clone(),
                match_bit: 59,
            },
            controls: vec![],
            reversed: true,
        };
        let mut circuit = Circuit::new(state.num_qubits());
        push.emit(&mut circuit);
        state.run(&circuit).unwrap();
        assert_eq!(state.read_range(0, 2), 0, "address returned");
        assert_eq!(state.read_range(10, 2), 3, "sp restored");
        assert_eq!(state.read_range(mem.stack_slot(2, 2).offset, 2), 1);
    }

    #[test]
    fn reversed_emission_inverts_the_instruction() {
        // instr ; instr.reversed == identity, for a non-self-inverse op.
        let op = AOp::StackPop {
            dst: reg(0, 2),
            mem: MemoryLayout {
                cell_width: 4,
                num_cells: 4,
                cells_base: 30,
                sp: reg(10, 2),
                stack_base: 12,
            },
            match_bit: 39,
        };
        let fwd = AInstr {
            op: op.clone(),
            controls: vec![],
            reversed: false,
        };
        let rev = AInstr {
            op,
            controls: vec![],
            reversed: true,
        };
        let mut circuit = Circuit::new(40);
        fwd.emit(&mut circuit);
        rev.emit(&mut circuit);
        let mut state = BasisState::new(40);
        state.write_range(12, 2, 3);
        state.write_range(10, 2, 1);
        let before = state.clone();
        state.run(&circuit).unwrap();
        assert_eq!(state, before);
    }
}
