//! Single-flight request coalescing over the compile cache.
//!
//! [`CompileCache`] deliberately lets two threads racing on the same key
//! both compile (the duplicate insert is benign for a handful of batch
//! workers). A serving workload inverts that trade-off: a thundering
//! herd of identical requests — every client recompiling the same hot
//! program — would burn one full compilation *per request* during the
//! window before the first one lands in the cache. The single-flight
//! layer closes that window: concurrent requests for one [`CacheKey`]
//! coalesce onto a single *leader* that compiles, while the *followers*
//! block until the leader publishes the result, so N concurrent
//! identical requests cost exactly one compile.
//!
//! [`SingleFlight`] is the generic mechanism (any `Clone` value keyed by
//! `u128`); [`SingleFlightCache`] composes it with a [`CompileCache`]
//! into the object `spire-serve` actually uses. Failures propagate to
//! every waiter of the flight but are not cached, matching the cache's
//! errors-are-retried policy.
//!
//! # Example
//!
//! ```
//! use spire::flight::SingleFlightCache;
//! use spire::CompileOptions;
//! use tower::WordConfig;
//!
//! let compiler = SingleFlightCache::new();
//! let src = "fun inc(x: uint) -> uint { let out <- x + 1; return out; }";
//! let first = compiler.get_or_compile(
//!     src, "inc", 0, WordConfig::tiny(), &CompileOptions::spire(),
//! )?;
//! let again = compiler.get_or_compile(
//!     src, "inc", 0, WordConfig::tiny(), &CompileOptions::spire(),
//! )?;
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! assert_eq!(compiler.cache().stats().misses, 1);
//! # Ok::<(), spire::SpireError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use tower::WordConfig;

use crate::cache::{CacheKey, CompileCache};
use crate::error::SpireError;
use crate::pipeline::{CompileOptions, Compiled};

/// How a coalesced request was served (observable in `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Answered directly from the compile cache.
    CacheHit,
    /// This request led the flight: it ran the compilation itself.
    Led,
    /// This request joined an in-progress flight and waited for its
    /// leader's result.
    Coalesced,
}

/// Counters observed on a [`SingleFlight`] / [`SingleFlightCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Requests that led a flight (ran the underlying work).
    pub led: u64,
    /// Requests that waited on another request's flight.
    pub coalesced: u64,
}

impl fmt::Display for FlightStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} led / {} coalesced", self.led, self.coalesced)
    }
}

/// State of one in-progress flight.
enum FlightState<V> {
    /// The leader is still working.
    Pending,
    /// The leader finished with this value.
    Done(V),
    /// The leader panicked before publishing; waiters must retry.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }
}

/// Generic single-flight coalescing: concurrent [`SingleFlight::run`]
/// calls with the same key execute the work closure exactly once and
/// share its (cloned) result.
pub struct SingleFlight<V> {
    inflight: Mutex<HashMap<u128, Arc<Flight<V>>>>,
    stats: Mutex<FlightStats>,
}

impl<V> fmt::Debug for SingleFlight<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingleFlight")
            .field("in_flight", &self.inflight.lock().map(|m| m.len()).ok())
            .finish()
    }
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            stats: Mutex::new(FlightStats::default()),
        }
    }
}

/// Removes the flight entry when the leader exits — by completion *or*
/// by panic. On panic (publish never ran) it marks the flight abandoned
/// and wakes the waiters so they retry as leaders instead of hanging.
struct LeaderGuard<'a, V> {
    owner: &'a SingleFlight<V>,
    key: u128,
    flight: &'a Arc<Flight<V>>,
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        let mut map = self.owner.inflight.lock().expect("single-flight poisoned");
        if let Some(current) = map.get(&self.key) {
            if Arc::ptr_eq(current, self.flight) {
                map.remove(&self.key);
            }
        }
        drop(map);
        let mut state = self.flight.state.lock().expect("flight poisoned");
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Abandoned;
            self.flight.done.notify_all();
        }
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty single-flight table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Run `work` for `key`, coalescing with any in-progress call.
    ///
    /// Exactly one concurrent caller per key executes `work` (the
    /// leader); the rest block until the leader finishes and receive a
    /// clone of its value. Returns the value and this caller's
    /// [`Served`] role. If a leader panics, its waiters transparently
    /// retry (one becomes the next leader).
    pub fn run(&self, key: u128, work: impl FnOnce() -> V) -> (V, Served) {
        let mut work = Some(work);
        loop {
            let flight = {
                let mut map = self.inflight.lock().expect("single-flight poisoned");
                match map.entry(key) {
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        let flight = entry.get().clone();
                        drop(map);
                        self.stats.lock().expect("stats poisoned").coalesced += 1;
                        match self.wait(&flight) {
                            Some(value) => return (value, Served::Coalesced),
                            None => continue, // leader abandoned; retry
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        let flight = Arc::new(Flight::new());
                        entry.insert(flight.clone());
                        flight
                    }
                }
            };
            // Leader path: run the work with the entry-removal guard held
            // so a panic wakes the waiters instead of stranding them.
            self.stats.lock().expect("stats poisoned").led += 1;
            let guard = LeaderGuard {
                owner: self,
                key,
                flight: &flight,
            };
            let value = (work.take().expect("leader runs work once"))();
            {
                let mut state = flight.state.lock().expect("flight poisoned");
                *state = FlightState::Done(value.clone());
                flight.done.notify_all();
            }
            drop(guard);
            return (value, Served::Led);
        }
    }

    fn wait(&self, flight: &Arc<Flight<V>>) -> Option<V> {
        let mut state = flight.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = flight.done.wait(state).expect("flight poisoned");
                }
                FlightState::Done(value) => return Some(value.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    /// Number of flights currently in progress.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("single-flight poisoned").len()
    }

    /// Led/coalesced counters (consistent snapshot).
    pub fn stats(&self) -> FlightStats {
        *self.stats.lock().expect("stats poisoned")
    }
}

/// A [`CompileCache`] with a single-flight layer on top: the compile path
/// of `spire-serve`.
///
/// Requests check the cache first; on a miss they coalesce per
/// [`CacheKey`], so a thundering herd of identical sources costs one
/// compilation. Compile errors reach every waiter of the failing flight
/// but are never cached (the next flight retries).
#[derive(Debug, Default)]
pub struct SingleFlightCache {
    cache: CompileCache,
    flight: SingleFlight<Result<Arc<Compiled>, SpireError>>,
}

impl SingleFlightCache {
    /// A new empty cache with its single-flight layer.
    pub fn new() -> Self {
        SingleFlightCache::default()
    }

    /// A new cache bounded to ~`total_bytes`
    /// ([`CompileCache::with_budget`]) with its single-flight layer.
    pub fn with_budget(total_bytes: u64) -> Self {
        SingleFlightCache {
            cache: CompileCache::with_budget(total_bytes),
            flight: SingleFlight::new(),
        }
    }

    /// The underlying compile cache (for stats or direct lookups).
    pub fn cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Led/coalesced counters of the single-flight layer.
    pub fn flight_stats(&self) -> FlightStats {
        self.flight.stats()
    }

    /// Compile through cache + single-flight.
    ///
    /// # Errors
    ///
    /// Propagates compile errors (shared with every coalesced waiter of
    /// the same flight; never cached).
    pub fn get_or_compile(
        &self,
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> Result<Arc<Compiled>, SpireError> {
        self.get_or_compile_traced(source, entry, depth, config, options)
            .0
    }

    /// [`get_or_compile`](SingleFlightCache::get_or_compile), also
    /// reporting how the request was served and the content address it
    /// was served under (callers echo the key; computing it hashes the
    /// whole source, so it is returned rather than recomputed).
    pub fn get_or_compile_traced(
        &self,
        source: &str,
        entry: &str,
        depth: i64,
        config: WordConfig,
        options: &CompileOptions,
    ) -> (Result<Arc<Compiled>, SpireError>, Served, CacheKey) {
        let mut span = spire_trace::span("flight");
        let key = CacheKey::new(source, entry, depth, config, options);
        if let Some(found) = self.cache.lookup(key) {
            span.attr_label("served", "cache");
            return (Ok(found), Served::CacheHit, key);
        }
        let (result, served) = self.flight.run(key.value(), || {
            self.cache
                .get_or_compile(source, entry, depth, config, options)
        });
        span.attr_label(
            "served",
            match served {
                Served::CacheHit => "cache",
                Served::Led => "led",
                Served::Coalesced => "follower",
            },
        );
        (result, served, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_runs_do_not_coalesce() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        let (a, served_a) = flight.run(1, || 10);
        let (b, served_b) = flight.run(1, || 20);
        assert_eq!((a, served_a), (10, Served::Led));
        // The flight is gone after its leader returns: the second run
        // leads again (the caller's cache layer is what persists values).
        assert_eq!((b, served_b), (20, Served::Led));
        assert_eq!(flight.stats().led, 2);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn abandoned_flight_retries_instead_of_hanging() {
        let flight: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        let calls = Arc::new(AtomicU64::new(0));
        // Leader panics mid-flight.
        let leader = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flight.run(7, || -> u32 { panic!("leader dies") });
                }));
            })
        };
        leader.join().unwrap();
        // The table is clean and the next caller succeeds.
        assert_eq!(flight.in_flight(), 0);
        let calls2 = Arc::clone(&calls);
        let (value, served) = flight.run(7, move || {
            calls2.fetch_add(1, Ordering::SeqCst);
            42
        });
        assert_eq!((value, served), (42, Served::Led));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
